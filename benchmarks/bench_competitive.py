"""E-COMP — the competitive claim behind Theorem 4, on fixed thresholds."""

from repro.experiments import run_competitive


def test_competitive(bench_table):
    result = bench_table(
        run_competitive,
        n=20,
        m=6,
        profiles=("random", "point-1", "point-8", "point-16"),
        n_trials=5,
        seed=15,
    )
    rows = {row[0]: row for row in result.rows}
    # OBL must degrade sharply from small to large thresholds; SEM's
    # competitive ratio must grow far more slowly.
    sem_growth = rows["point-16"][2] / max(rows["point-1"][2], 1e-9)
    obl_growth = rows["point-16"][3] / max(rows["point-1"][3], 1e-9)
    assert obl_growth > sem_growth, (
        f"OBL (x{obl_growth:.2f}) should degrade faster than SEM "
        f"(x{sem_growth:.2f}) as thresholds grow"
    )
