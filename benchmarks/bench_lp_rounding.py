"""E-LP1 — Lemmas 1-2: LP rounding blow-up and feasibility margins."""

from repro.experiments import run_lp_rounding


def test_lp_rounding(bench_table):
    result = bench_table(
        run_lp_rounding,
        sizes=((20, 5), (40, 10)),
        models=("uniform", "specialist", "powerlaw"),
        seed=5,
    )
    for row in result.rows:
        model, n, m, t_star, load, blowup, margin = row
        assert blowup <= 6.0 + 1.0 / max(t_star, 1e-9) + 1e-6, (
            f"load blow-up {blowup} exceeds ceil(6 t*)/t* on {model} n={n}"
        )
        assert margin >= 1.0 - 1e-6, f"mass margin {margin} < 1 on {model} n={n}"
