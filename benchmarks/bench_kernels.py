"""Micro-benchmarks of the computational kernels.

Two layers:

* Conventional pytest-benchmark timings (multiple rounds) for the pieces
  everything else is built from: the LP1 solve+round pipeline, the Dinic
  max-flow, the simulation engine's step loop, and the exact
  oblivious-repeat sampler.
* Kernel-*backend* pairs at Monte Carlo scale (10k trials), gating the
  ``REPRO_KERNEL`` axis.  Naming convention (what
  ``benchmarks/check_regression.py --mode ratio`` pairs up):

  - ``test_kern_base_<key>`` / ``test_kern_jit_<key>`` — the numpy
    reference vs the numba-compiled backend on the same row.  The jit
    side *hard-asserts* bit-identical makespan samples, and (on the
    chain-heavy row, on boxes with enough cores — see
    :func:`conftest.enforce_speedup_floor`) a >= 2x wall-clock speedup;
    both skip when numba is not installed, so the committed baseline
    carries these pairs only when produced on a numba-equipped runner.
  - ``test_kern_checked_<key>`` / ``test_kern_trusted_<key>`` — the
    per-step assignment-validation knob (``validate=True`` vs the
    trusted first-step-only mode) on the numpy backend, runnable
    everywhere.  The measured delta is small (~1.0x: the numpy backend's
    checks are whole-batch array ops); the pair exists to *measure* it
    and to keep BENCH_8's ratio gate non-empty without numba.

Run the backend rows with ``make bench-kernels``; ``BENCH_8.json``
records the measured trajectory.
"""

import time

import numpy as np
import pytest

from conftest import enforce_speedup_floor
from repro.api.scenario import Scenario
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.lp1 import solve_lp1
from repro.core.phased import clear_solve_cache
from repro.core.rounding import round_assignment
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_obl import build_obl_schedule
from repro.flow import MaxFlowNetwork
from repro.instance import independent_instance
from repro.kernels import numba_available, warmup
from repro.sim import run_policy, sample_oblivious_repeat_makespans
from repro.sim.batch import run_policy_batch


def test_lp1_solve_and_round(benchmark):
    inst = independent_instance(60, 12, "specialist", rng=0)

    def pipeline():
        rel = solve_lp1(inst, target=0.5)
        return round_assignment(rel)

    rounded = benchmark(pipeline)
    assert rounded.load >= 1


def test_dinic_grid(benchmark):
    rng = np.random.default_rng(1)
    n = 120
    edges = [
        (int(rng.integers(0, n)), int(rng.integers(0, n)), int(rng.integers(1, 30)))
        for _ in range(1200)
    ]

    def flow():
        net = MaxFlowNetwork(n)
        for u, v, c in edges:
            if u != v:
                net.add_edge(u, v, c)
        return net.max_flow(0, n - 1)

    value = benchmark(flow)
    assert value >= 0


def test_engine_steps(benchmark):
    inst = independent_instance(40, 8, "uniform", rng=2)

    def run():
        return run_policy(inst, GreedyLRPolicy(), rng=3, max_steps=100_000).makespan

    makespan = benchmark(run)
    assert makespan >= 1


def test_exact_sampler(benchmark):
    inst = independent_instance(80, 10, "specialist", rng=4)
    schedule = build_obl_schedule(inst)

    def sample():
        return sample_oblivious_repeat_makespans(inst, schedule, 500, rng=5).mean

    mean = benchmark(sample)
    assert mean >= 1


# ---------------------------------------------------------------------------
# Kernel-backend pairs (REPRO_KERNEL) at Monte Carlo scale.

#: Trials per backend row — the scale where per-step kernel cost, not
#: start-up work, dominates the wall-clock.
N_TRIALS = 10_000
SEED = 11
#: Acceptance floor for the compiled backend on the chain-heavy row.
JIT_SPEEDUP_FLOOR = 2.0
#: Smallest box the jit floor is asserted on: a starved 1-core CI runner
#: can time-slice the numpy and numba rows unfairly; the floor is still
#: *recorded* there (``extra_info``), just not asserted.
JIT_FLOOR_MIN_CORES = 2

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (REPRO_KERNEL=numba "
    "falls back to numpy; nothing to pair against)"
)


def _chains_instance():
    """Chain-heavy DAG: SUU-C drives the chain cursors *and* the fused
    step kernel every superstep, so both extraction targets are hot."""
    return Scenario(shape="chains", n_jobs=36, n_machines=6,
                    model="specialist", seed=3).to_instance()


#: key -> zero-arg (instance, factory, run kwargs) builder.
KERNEL_CONFIGS = {
    "suuc_chains_10000": lambda: (
        _chains_instance(), SUUCPolicy, dict(semantics="suu", lp_reuse="subset")
    ),
    "greedy_10000": lambda: (
        independent_instance(40, 8, "uniform", rng=2), GreedyLRPolicy,
        dict(semantics="suu"),
    ),
}

#: Base-side (samples, seconds) recorded for the jit side of the same
#: pair (tests run in definition order within one process).
_BASE_SIDE: dict[str, tuple[np.ndarray, float]] = {}


def _run_row(key: str, kernel: str, validate: bool = True):
    instance, factory, kwargs = KERNEL_CONFIGS[key]()
    clear_solve_cache()
    start = time.perf_counter()
    result = run_policy_batch(
        instance, factory, N_TRIALS, rng=SEED, max_steps=100_000,
        discipline="v2", kernel=kernel, validate=validate, **kwargs,
    )
    return result.makespans, time.perf_counter() - start


def _base_side(benchmark, key: str):
    samples, seconds = benchmark.pedantic(
        lambda: _run_row(key, "numpy"), rounds=1, iterations=1
    )
    _BASE_SIDE[key] = (samples, seconds)
    assert samples.size == N_TRIALS


def _jit_side(benchmark, key: str, speedup_floor: float | None = None):
    compile_seconds = warmup("numba")  # compile outside the timed region
    samples, seconds = benchmark.pedantic(
        lambda: _run_row(key, "numba"), rounds=1, iterations=1
    )
    assert samples.size == N_TRIALS
    base = _BASE_SIDE.get(key)
    if base is None:  # jit benchmark ran solo; nothing to compare
        return
    base_samples, base_seconds = base
    assert np.array_equal(samples, base_samples), (
        f"{key}: numba samples diverged from the numpy reference"
    )
    print(f"\n{key}: numpy {base_seconds:.2f}s -> numba {seconds:.2f}s "
          f"({base_seconds / seconds:.2f}x; compile {compile_seconds:.2f}s)")
    if speedup_floor is not None:
        enforce_speedup_floor(
            benchmark, f"{key} (numba vs numpy)", base_seconds, seconds,
            speedup_floor, JIT_FLOOR_MIN_CORES,
        )


def test_kern_base_suuc_chains_10000(benchmark):
    _base_side(benchmark, "suuc_chains_10000")


@requires_numba
def test_kern_jit_suuc_chains_10000(benchmark):
    _jit_side(benchmark, "suuc_chains_10000", speedup_floor=JIT_SPEEDUP_FLOOR)


def test_kern_base_greedy_10000(benchmark):
    _base_side(benchmark, "greedy_10000")


@requires_numba
def test_kern_jit_greedy_10000(benchmark):
    _jit_side(benchmark, "greedy_10000")


def test_kern_checked_greedy_10000(benchmark):
    samples, _ = benchmark.pedantic(
        lambda: _run_row("greedy_10000", "numpy", validate=True),
        rounds=1, iterations=1,
    )
    _BASE_SIDE["greedy_checked"] = (samples, 0.0)
    assert samples.size == N_TRIALS


def test_kern_trusted_greedy_10000(benchmark):
    samples, _ = benchmark.pedantic(
        lambda: _run_row("greedy_10000", "numpy", validate=False),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS
    checked = _BASE_SIDE.get("greedy_checked")
    if checked is not None:
        # Hoisting validation must never change a sample on clean runs.
        assert np.array_equal(samples, checked[0])
