"""Micro-benchmarks of the computational kernels.

These are conventional pytest-benchmark timings (multiple rounds) for the
pieces everything else is built from: the LP1 solve+round pipeline, the
Dinic max-flow, the simulation engine's step loop, and the exact
oblivious-repeat sampler.  They exist to catch performance regressions, not
to reproduce paper artifacts.
"""

import numpy as np

from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.lp1 import solve_lp1
from repro.core.rounding import round_assignment
from repro.core.suu_i_obl import build_obl_schedule
from repro.flow import MaxFlowNetwork
from repro.instance import independent_instance
from repro.sim import run_policy, sample_oblivious_repeat_makespans


def test_lp1_solve_and_round(benchmark):
    inst = independent_instance(60, 12, "specialist", rng=0)

    def pipeline():
        rel = solve_lp1(inst, target=0.5)
        return round_assignment(rel)

    rounded = benchmark(pipeline)
    assert rounded.load >= 1


def test_dinic_grid(benchmark):
    rng = np.random.default_rng(1)
    n = 120
    edges = [
        (int(rng.integers(0, n)), int(rng.integers(0, n)), int(rng.integers(1, 30)))
        for _ in range(1200)
    ]

    def flow():
        net = MaxFlowNetwork(n)
        for u, v, c in edges:
            if u != v:
                net.add_edge(u, v, c)
        return net.max_flow(0, n - 1)

    value = benchmark(flow)
    assert value >= 0


def test_engine_steps(benchmark):
    inst = independent_instance(40, 8, "uniform", rng=2)

    def run():
        return run_policy(inst, GreedyLRPolicy(), rng=3, max_steps=100_000).makespan

    makespan = benchmark(run)
    assert makespan >= 1


def test_exact_sampler(benchmark):
    inst = independent_instance(80, 10, "specialist", rng=4)
    schedule = build_obl_schedule(inst)

    def sample():
        return sample_oblivious_repeat_makespans(inst, schedule, 500, rng=5).mean

    mean = benchmark(sample)
    assert mean >= 1
