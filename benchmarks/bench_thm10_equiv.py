"""E-EQUIV — Theorem 10: SUU and SUU* makespan distributions agree."""

from repro.experiments import run_equivalence


def test_equivalence(bench_table):
    result = bench_table(
        run_equivalence,
        n=16,
        m=5,
        n_trials=250,
        seed=11,
    )
    for row in result.rows:
        pvalue = row[4]
        assert pvalue > 1e-4, f"KS rejects SUU = SUU* on {row[0]} (p={pvalue:.2e})"
