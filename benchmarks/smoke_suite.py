#!/usr/bin/env python
"""End-to-end suite-runner smoke: run a 2-cell suite twice through the
real CLI and assert the second run is served entirely from the cell store.

Usage::

    python benchmarks/smoke_suite.py [--suite suites/smoke.json]

What it checks, in order:

1. ``repro suite run`` executes every cell of the committed smoke suite
   in a fresh output directory (``executed=N cached=0``) and writes the
   consolidated ``report.json`` / ``report.md``.
2. A second identical invocation performs **zero executions** — every
   cell is a content-address cache hit (``executed=0 cached=N``).
3. Deleting one cell artifact and re-running re-executes exactly that
   one cell (``executed=1``), leaving the rest cached.
4. ``repro suite status`` agrees that all cells are done.

Exit code 0 only if all four hold — this is the CI suite-smoke leg.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(args, env) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, cwd=REPO,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(f"repro {' '.join(args)} failed rc={proc.returncode}")
    return proc.stdout


def counts(output: str) -> tuple[int, int]:
    match = re.search(r"executed=(\d+) cached=(\d+)", output)
    if not match:
        raise SystemExit(f"no executed=/cached= summary in output:\n{output}")
    return int(match.group(1)), int(match.group(2))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--suite", default=os.path.join(REPO, "suites", "smoke.json"))
    args = ap.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="suite_smoke_") as out:
        executed, cached = counts(
            run_cli(["suite", "run", args.suite, "--out", out], env))
        if executed < 2 or cached != 0:
            failures.append(
                f"first run: expected >=2 executed, 0 cached; got "
                f"executed={executed} cached={cached}")
        n_cells = executed
        for name in ("report.json", "report.md"):
            if not os.path.exists(os.path.join(out, name)):
                failures.append(f"first run wrote no {name}")

        executed, cached = counts(
            run_cli(["suite", "run", args.suite, "--out", out], env))
        if executed != 0 or cached != n_cells:
            failures.append(
                f"second run: expected all {n_cells} cells cached; got "
                f"executed={executed} cached={cached}")

        artifacts = sorted(glob.glob(os.path.join(out, "cells", "*.json")))
        if len(artifacts) != n_cells:
            failures.append(f"{len(artifacts)} artifacts for {n_cells} cells")
        else:
            with open(artifacts[0]) as fh:
                victim = json.load(fh)["digest"]
            os.unlink(artifacts[0])
            executed, cached = counts(
                run_cli(["suite", "run", args.suite, "--out", out], env))
            if executed != 1 or cached != n_cells - 1:
                failures.append(
                    f"after deleting cell {victim[:12]}: expected exactly "
                    f"1 re-execution; got executed={executed} cached={cached}")

        status = run_cli(["suite", "status", args.suite, "--out", out], env)
        if f"{n_cells}/{n_cells} cells done" not in status:
            failures.append(f"status does not report {n_cells}/{n_cells} done")

    if failures:
        print(f"\nSUITE SMOKE FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nsuite smoke ok: {n_cells} cells executed once, rerun fully "
          "cached, single-cell delta re-executed, status consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
