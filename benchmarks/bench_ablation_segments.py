"""A-SEG — ablation: SUU-C long-job segmentation and random delays (RNG discipline v2)."""

from repro.experiments import run_segments_ablation


def test_segments_ablation(bench_table):
    result = bench_table(
        run_segments_ablation,
        n=24,
        m=4,
        n_chains=5,
        n_trials=8,
        seed=9,
        discipline="v2",
    )
    ratios = {row[0]: row[2] for row in result.rows}
    # On heavy-tailed chains, disabling segmentation serializes machines
    # behind enormous blocks; the paper variant must win clearly.
    assert ratios["segments on (paper)"] < ratios["segments off"], (
        f"segmentation failed to help: {ratios}"
    )
