"""Benchmarks for grouped batch dispatch of the adaptive policies.

PR 2's kernel vectorized the static/oblivious family; these measurements
cover the paper's headline *adaptive* algorithms (``sem``, ``layered``,
``suu-c``), which route through the :class:`~repro.schedule.base.
PhasedPolicy` grouped-dispatch path: the same Monte Carlo estimate run
through the pre-batch serial loop and through
:func:`repro.sim.batch.run_policy_batch`.  Both paths produce bit-identical
makespan samples (asserted here and in ``tests/test_phased_batch.py``), so
the timings are directly comparable.

Naming convention: scalar/batch pairs share a suffix
(``test_scalar_loop_<key>`` / ``test_batch_kernel_<key>``) — that is what
``benchmarks/check_regression.py --mode ratio`` pairs up to gate CI on
machine-independent speedup ratios.

The ``*_v2_1000`` pairs measure the RNG-discipline-v2 chain algorithms:
``suu-c``/``suu-t`` through the array-cursor path of
:mod:`repro.core.chain_batch` (one shared LP per distinct (target,
survivor set) instead of one per trial) against the same pre-batch scalar
loop.  Under discipline v1 those policies are pinned to per-trial
replicas by bit-identity and stay ~1x (the retained ``suuc_100`` pair
documents that); v2's acceptance floor is a >= 5x speedup at 1000 trials.

The newly covered v2 configurations get their own gated pairs:

* ``suuc_obl_v2_300`` — the ``inner="obl"`` ablation (was a replica-path
  decline before the obl-repeat inner cursors landed);
* ``suuc_prelude_v2_200`` — a ``t_LP2 > nm`` instance whose plan carries
  solo preludes (``unit > 1``; previously declined to replicas);
* ``suuc_wide_v2_1000`` — the chain-heavy, no-segmentation configuration
  where superstep boundaries dominate: the pair that measures
  signature-grouped boundary stepping (PR 4's per-trial boundary walk
  recorded about half this pair's speedup on the same machine).

Run with ``make bench``; the committed ``BENCH_<n>.json`` files record the
measured trajectory (the acceptance target for this round is a >= 4x mean
speedup on ``sem``/``layered`` Monte Carlo at 1000 trials).
"""

import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.layered import LayeredPolicy
from repro.core.phased import clear_solve_cache
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
    prelude_chain_instance,
)
from repro.sim.batch import run_policy_batch
from repro.sim.engine import run_policy
from repro.util.rng import ensure_rng

#: Trial count for the adaptive scalar-vs-batch comparison.
N_TRIALS = 1000
#: The v1 SUU-C pair runs fewer trials: its grouping is per-trial (random
#: chain delays), so the win is bounded by the shared LP2 solve + the
#: vectorized engine and the scalar side is expensive.
N_TRIALS_SUUC = 100
SEED = 9


@pytest.fixture(scope="module")
def sem_instance():
    return independent_instance(30, 8, "uniform", rng=2)


@pytest.fixture(scope="module")
def layered_instance_fix():
    return layered_instance([10, 10], 6, rng=4)


@pytest.fixture(scope="module")
def chains_instance():
    return chain_instance(18, 5, 4, "uniform", rng=7)


@pytest.fixture(scope="module")
def forest_instance_fix():
    return forest_instance(18, 5, 3, rng=5)


@pytest.fixture(scope="module")
def wide_chains_instance():
    """Chain-heavy: 12 chains whose supersteps dominate the runtime."""
    return chain_instance(48, 6, 12, "uniform", rng=11)


@pytest.fixture(scope="module")
def prelude_instance_fix():
    """``t_LP2 > nm``: the plan rounds to ``unit > 1`` with solo preludes
    (the shared construction also used by tests/test_discipline.py)."""
    inst = prelude_chain_instance()
    assert SUUCPolicy().prepare_plan(inst).unit > 1
    return inst


@contextmanager
def _no_solve_cache():
    """Disable the cross-batch process solve cache for the duration.

    Scalar ``start()`` now routes plan preparation through the process
    cache; the scalar baselines must pay their per-trial solves like the
    pre-batch loop did, or the recorded speedups would compare against a
    cache-warmed 'scalar' side.
    """
    old = os.environ.get("REPRO_SOLVE_CACHE")
    os.environ["REPRO_SOLVE_CACHE"] = "0"
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_SOLVE_CACHE"]
        else:
            os.environ["REPRO_SOLVE_CACHE"] = old


def scalar_loop(inst, factory, n_trials, seed):
    """The pre-batch serial Monte Carlo loop, verbatim (solve cache off)."""
    with _no_solve_cache():
        rngs = ensure_rng(seed).spawn(n_trials)
        return np.array(
            [
                run_policy(inst, factory(), r, semantics="suu_star").makespan
                for r in rngs
            ],
            dtype=np.int64,
        )


def batch_kernel(inst, factory, n_trials, seed):
    """The batch kernel under v1 (cold cross-batch cache each round, so
    the measurement includes every LP this batch actually needs — the
    within-batch RoundScheduleCache sharing is the thing being timed)."""
    clear_solve_cache()
    return run_policy_batch(
        inst, factory, n_trials, rng=seed, semantics="suu_star",
        discipline="v1",
    ).makespans


def test_scalar_loop_sem_1000(benchmark, sem_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(sem_instance, SUUISemPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_sem_1000(benchmark, sem_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel(sem_instance, SUUISemPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_scalar_loop_layered_1000(benchmark, layered_instance_fix):
    samples = benchmark.pedantic(
        lambda: scalar_loop(layered_instance_fix, LayeredPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_layered_1000(benchmark, layered_instance_fix):
    samples = benchmark.pedantic(
        lambda: batch_kernel(layered_instance_fix, LayeredPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


def batch_kernel_v2(inst, factory, n_trials, seed):
    """The batch kernel under RNG discipline v2 (cold solve cache, so the
    measured time includes every LP the batch actually needs)."""
    clear_solve_cache()
    return run_policy_batch(
        inst, factory, n_trials, rng=seed, semantics="suu_star",
        discipline="v2",
    ).makespans


def test_scalar_loop_suuc_100(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(chains_instance, SUUCPolicy, N_TRIALS_SUUC, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS_SUUC


def test_batch_kernel_suuc_100(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel(chains_instance, SUUCPolicy, N_TRIALS_SUUC, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS_SUUC


def test_scalar_loop_suuc_v2_1000(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(chains_instance, SUUCPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_suuc_v2_1000(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel_v2(chains_instance, SUUCPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_scalar_loop_suut_v2_1000(benchmark, forest_instance_fix):
    samples = benchmark.pedantic(
        lambda: scalar_loop(forest_instance_fix, SUUTPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_suut_v2_1000(benchmark, forest_instance_fix):
    samples = benchmark.pedantic(
        lambda: batch_kernel_v2(forest_instance_fix, SUUTPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


# ----------------------------------------------------------------------
# Newly covered v2 configurations (no replica fallback remains)
# ----------------------------------------------------------------------
#: Trial counts scaled so each pair's scalar side stays benchable; both
#: sides of a pair always run the same count, so the ratio is meaningful.
N_TRIALS_OBL = 300
N_TRIALS_PRELUDE = 200


def suuc_obl():
    return SUUCPolicy(inner="obl")


def suuc_noseg():
    return SUUCPolicy(enable_segments=False)


def test_scalar_loop_suuc_obl_v2_300(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(chains_instance, suuc_obl, N_TRIALS_OBL, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS_OBL


def test_batch_kernel_suuc_obl_v2_300(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel_v2(chains_instance, suuc_obl, N_TRIALS_OBL, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS_OBL


def test_scalar_loop_suuc_prelude_v2_200(benchmark, prelude_instance_fix):
    samples = benchmark.pedantic(
        lambda: scalar_loop(
            prelude_instance_fix, SUUCPolicy, N_TRIALS_PRELUDE, SEED
        ),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS_PRELUDE


def test_batch_kernel_suuc_prelude_v2_200(benchmark, prelude_instance_fix):
    samples = benchmark.pedantic(
        lambda: batch_kernel_v2(
            prelude_instance_fix, SUUCPolicy, N_TRIALS_PRELUDE, SEED
        ),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS_PRELUDE


def test_scalar_loop_suuc_wide_v2_1000(benchmark, wide_chains_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(wide_chains_instance, suuc_noseg, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_suuc_wide_v2_1000(benchmark, wide_chains_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel_v2(wide_chains_instance, suuc_noseg, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


@pytest.mark.parametrize(
    "label,fixture,factory,n",
    [
        ("suu-c inner=obl", "chains_instance", suuc_obl, N_TRIALS_OBL),
        ("suu-c prelude", "prelude_instance_fix", SUUCPolicy, N_TRIALS_PRELUDE),
        ("suu-c wide noseg", "wide_chains_instance", suuc_noseg, N_TRIALS),
    ],
)
def test_v2_full_coverage_speedup_and_equivalence(label, fixture, factory, n, request):
    """Acceptance for the newly covered configurations: the array-cursor
    path beats the pre-batch scalar loop with matched makespan statistics
    (loose floors so a loaded CI box cannot flake the suite; the committed
    BENCH json records the precise ratios)."""
    inst = request.getfixturevalue(fixture)
    n_scalar = max(50, n // 4)  # the scalar loop is the expensive side

    t0 = time.perf_counter()
    expect = scalar_loop(inst, factory, n_scalar, SEED)
    t1 = time.perf_counter()
    clear_solve_cache()
    batch = run_policy_batch(
        inst, factory, n, rng=SEED, semantics="suu_star", discipline="v2",
        max_steps=2_000_000,
    )
    t2 = time.perf_counter()

    assert batch.vectorized and batch.discipline == "v2"
    scalar_per_trial = (t1 - t0) / n_scalar
    batch_per_trial = max(t2 - t1, 1e-9) / n
    speedup = scalar_per_trial / batch_per_trial
    print(f"\nv2 coverage speedup ({label}, per-trial, {n} batch trials): "
          f"{speedup:.1f}x")
    assert speedup >= 1.5
    mean_scalar = expect.mean()
    mean_v2 = batch.makespans.mean()
    hw = 2 * 1.96 * expect.std(ddof=1) / np.sqrt(n_scalar)
    assert abs(mean_scalar - mean_v2) <= hw, (mean_scalar, mean_v2, hw)


@pytest.mark.parametrize(
    "label,fixture,factory,floor",
    [
        ("sem", "sem_instance", SUUISemPolicy, 4.0),
        ("layered", "layered_instance_fix", LayeredPolicy, 4.0),
    ],
)
def test_phased_speedup_and_equivalence(label, fixture, factory, floor, request):
    """One-shot timed comparison: identical samples, >= 4x speedup.

    The committed BENCH json records the precise ratio (well above 10x on
    the reference machine at 1000 trials); the assertion floor is the
    acceptance criterion and is deliberately looser so a loaded CI box
    cannot flake the suite.
    """
    inst = request.getfixturevalue(fixture)

    t0 = time.perf_counter()
    expect = scalar_loop(inst, factory, N_TRIALS, SEED)
    t1 = time.perf_counter()
    clear_solve_cache()
    batch = run_policy_batch(inst, factory, N_TRIALS, rng=SEED,
                             semantics="suu_star", discipline="v1")
    t2 = time.perf_counter()

    assert batch.vectorized
    assert np.array_equal(expect, batch.makespans)
    speedup = (t1 - t0) / max(t2 - t1, 1e-9)
    print(f"\ngrouped dispatch speedup ({label}, {N_TRIALS} trials): {speedup:.1f}x")
    assert speedup >= floor


@pytest.mark.parametrize(
    "label,fixture,factory",
    [
        ("suu-c", "chains_instance", SUUCPolicy),
        ("suu-t", "forest_instance_fix", SUUTPolicy),
    ],
)
def test_v2_chain_speedup_and_equivalence(label, fixture, factory, request):
    """The discipline-v2 acceptance criterion: the chain algorithms gain
    >= 5x over the pre-batch scalar loop at 1000 trials, with matched
    makespan statistics (v2 is a different stream, not bit-identical —
    the array/object cursor bit-level cross-check lives in
    tests/test_discipline.py).  The committed BENCH json records the
    precise ratio (well above the floor on the reference machine); the
    floor is loose so a loaded CI box cannot flake the suite.
    """
    inst = request.getfixturevalue(fixture)
    n_scalar = 200  # the scalar loop is the expensive side; scale its time

    t0 = time.perf_counter()
    expect = scalar_loop(inst, factory, n_scalar, SEED)
    t1 = time.perf_counter()
    clear_solve_cache()
    batch = run_policy_batch(
        inst, factory, N_TRIALS, rng=SEED, semantics="suu_star",
        discipline="v2",
    )
    t2 = time.perf_counter()

    assert batch.vectorized and batch.discipline == "v2"
    scalar_per_trial = (t1 - t0) / n_scalar
    batch_per_trial = max(t2 - t1, 1e-9) / N_TRIALS
    speedup = scalar_per_trial / batch_per_trial
    print(f"\nv2 chain speedup ({label}, per-trial, {N_TRIALS} batch trials): "
          f"{speedup:.1f}x")
    assert speedup >= 5.0
    # Statistical equivalence: matched means within generous CI bounds.
    mean_scalar = expect.mean()
    mean_v2 = batch.makespans.mean()
    hw = 2 * 1.96 * expect.std(ddof=1) / np.sqrt(n_scalar)
    assert abs(mean_scalar - mean_v2) <= hw, (mean_scalar, mean_v2, hw)
