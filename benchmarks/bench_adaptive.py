"""Benchmarks for grouped batch dispatch of the adaptive policies.

PR 2's kernel vectorized the static/oblivious family; these measurements
cover the paper's headline *adaptive* algorithms (``sem``, ``layered``,
``suu-c``), which route through the :class:`~repro.schedule.base.
PhasedPolicy` grouped-dispatch path: the same Monte Carlo estimate run
through the pre-batch serial loop and through
:func:`repro.sim.batch.run_policy_batch`.  Both paths produce bit-identical
makespan samples (asserted here and in ``tests/test_phased_batch.py``), so
the timings are directly comparable.

Naming convention: scalar/batch pairs share a suffix
(``test_scalar_loop_<key>`` / ``test_batch_kernel_<key>``) — that is what
``benchmarks/check_regression.py --mode ratio`` pairs up to gate CI on
machine-independent speedup ratios.

Run with ``make bench``; the committed ``BENCH_<n>.json`` files record the
measured trajectory (the acceptance target for this round is a >= 4x mean
speedup on ``sem``/``layered`` Monte Carlo at 1000 trials).
"""

import time

import numpy as np
import pytest

from repro.core.layered import LayeredPolicy
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.instance import chain_instance, independent_instance, layered_instance
from repro.sim.batch import run_policy_batch
from repro.sim.engine import run_policy
from repro.util.rng import ensure_rng

#: Trial count for the adaptive scalar-vs-batch comparison.
N_TRIALS = 1000
#: SUU-C pairs run fewer trials: its grouping is per-trial (random chain
#: delays), so the win is bounded by the shared LP2 solve + vectorized
#: engine and the scalar side is expensive.
N_TRIALS_SUUC = 100
SEED = 9


@pytest.fixture(scope="module")
def sem_instance():
    return independent_instance(30, 8, "uniform", rng=2)


@pytest.fixture(scope="module")
def layered_instance_fix():
    return layered_instance([10, 10], 6, rng=4)


@pytest.fixture(scope="module")
def chains_instance():
    return chain_instance(18, 5, 4, "uniform", rng=7)


def scalar_loop(inst, factory, n_trials, seed):
    """The pre-batch serial Monte Carlo loop, verbatim."""
    rngs = ensure_rng(seed).spawn(n_trials)
    return np.array(
        [
            run_policy(inst, factory(), r, semantics="suu_star").makespan
            for r in rngs
        ],
        dtype=np.int64,
    )


def batch_kernel(inst, factory, n_trials, seed):
    return run_policy_batch(
        inst, factory, n_trials, rng=seed, semantics="suu_star"
    ).makespans


def test_scalar_loop_sem_1000(benchmark, sem_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(sem_instance, SUUISemPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_sem_1000(benchmark, sem_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel(sem_instance, SUUISemPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_scalar_loop_layered_1000(benchmark, layered_instance_fix):
    samples = benchmark.pedantic(
        lambda: scalar_loop(layered_instance_fix, LayeredPolicy, N_TRIALS, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_batch_kernel_layered_1000(benchmark, layered_instance_fix):
    samples = benchmark.pedantic(
        lambda: batch_kernel(layered_instance_fix, LayeredPolicy, N_TRIALS, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS


def test_scalar_loop_suuc_100(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: scalar_loop(chains_instance, SUUCPolicy, N_TRIALS_SUUC, SEED),
        rounds=1, iterations=1,
    )
    assert samples.size == N_TRIALS_SUUC


def test_batch_kernel_suuc_100(benchmark, chains_instance):
    samples = benchmark.pedantic(
        lambda: batch_kernel(chains_instance, SUUCPolicy, N_TRIALS_SUUC, SEED),
        rounds=3, iterations=1,
    )
    assert samples.size == N_TRIALS_SUUC


@pytest.mark.parametrize(
    "label,fixture,factory,floor",
    [
        ("sem", "sem_instance", SUUISemPolicy, 4.0),
        ("layered", "layered_instance_fix", LayeredPolicy, 4.0),
    ],
)
def test_phased_speedup_and_equivalence(label, fixture, factory, floor, request):
    """One-shot timed comparison: identical samples, >= 4x speedup.

    The committed BENCH json records the precise ratio (well above 10x on
    the reference machine at 1000 trials); the assertion floor is the
    acceptance criterion and is deliberately looser so a loaded CI box
    cannot flake the suite.
    """
    inst = request.getfixturevalue(fixture)

    t0 = time.perf_counter()
    expect = scalar_loop(inst, factory, N_TRIALS, SEED)
    t1 = time.perf_counter()
    batch = run_policy_batch(inst, factory, N_TRIALS, rng=SEED, semantics="suu_star")
    t2 = time.perf_counter()

    assert batch.vectorized
    assert np.array_equal(expect, batch.makespans)
    speedup = (t1 - t0) / max(t2 - t1, 1e-9)
    print(f"\ngrouped dispatch speedup ({label}, {N_TRIALS} trials): {speedup:.1f}x")
    assert speedup >= floor
