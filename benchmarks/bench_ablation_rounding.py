"""A-ROUND — ablation: the Lemma 2 rounding constant."""

from repro.experiments import run_rounding_ablation


def test_rounding_ablation(bench_table):
    result = bench_table(
        run_rounding_ablation,
        scales=(2, 3, 6, 9),
        n_instances=10,
        n=30,
        m=6,
        seed=14,
    )
    for row in result.rows:
        scale, _, ok, bad = row[0], row[1], row[2], row[3]
        if scale >= 6:
            assert bad == 0, f"scale {scale} produced infeasible roundings"
