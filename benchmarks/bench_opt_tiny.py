"""E-OPT — exact optimum on tiny instances: LB tightness, true ratios."""

from repro.experiments import run_opt_tiny


def test_opt_tiny(bench_table):
    result = bench_table(
        run_opt_tiny,
        configs=(("independent", 5, 2), ("chains", 5, 2)),
        n_trials=250,
        seed=13,
    )
    for row in result.rows:
        opt_over_lb = row[5]
        assert opt_over_lb >= 1.0 - 1e-6, "lower bound exceeded the DP optimum"
        true_ratio_paper, true_ratio_greedy = row[6], row[7]
        assert true_ratio_paper >= 1.0 - 0.05  # MC noise guard
        assert true_ratio_greedy >= 1.0 - 0.05
