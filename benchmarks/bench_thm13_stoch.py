"""E-STOCH — Theorem 13: STC-I for exponential job lengths."""

from repro.experiments import run_stochastic


def test_stochastic(bench_table):
    result = bench_table(
        run_stochastic,
        sizes=((10, 4), (20, 6)),
        n_trials=8,
        seed=12,
    )
    for row in result.rows:
        serial_ratio, stc_ratio = row[4], row[6]
        assert stc_ratio <= serial_ratio * 1.1, (
            f"STC-I ({stc_ratio:.2f}) lost to serial-fastest ({serial_ratio:.2f})"
        )
        assert stc_ratio >= 1.0 - 1e-6  # sound lower bound
