"""A-ADAPT — the conclusion's conjecture: fully adaptive LP vs SEM (RNG discipline v2)."""

from repro.experiments import run_adaptive


def test_adaptive(bench_table):
    result = bench_table(
        run_adaptive,
        ns=(15, 30),
        m=6,
        n_trials=8,
        seed=16,
        discipline="v2",
    )
    for row in result.rows:
        sem_ratio, adapt_ratio = row[4], row[5]
        # The conjecture's candidate should at least track SEM.
        assert adapt_ratio <= sem_ratio * 1.4, (
            f"adaptive ratio {adapt_ratio:.2f} far above SEM {sem_ratio:.2f}"
        )
