"""A-ROUNDS — ablation: the SEM round budget K (RNG discipline v2)."""

from repro.experiments import run_rounds_ablation


def test_rounds_ablation(bench_table):
    result = bench_table(
        run_rounds_ablation,
        n=40,
        m=8,
        k_values=(1, 2, 3, 4, 5),
        n_trials=10,
        seed=6,
        discipline="v2",
    )
    ratios = {row[0]: row[3] for row in result.rows}
    # One round (then fallback) must not beat the paper's budget by much;
    # mostly this documents the curve, so only sanity-check positivity.
    assert all(r > 0 for r in ratios.values())
