"""Benchmark the batched simulation service's backends.

Times :func:`repro.api.simulate` on one mid-sized scenario under the serial
backend and under the process backend, asserting along the way that both
produce identical samples (the service's core contract).  The process
backend pays a pool-startup cost, so its advantage only shows once per-trial
work dominates — this bench makes that crossover visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Scenario, SimConfig, simulate

SCENARIO = Scenario(shape="independent", n_jobs=30, n_machines=8,
                    model="specialist", seed=5)
CONFIG = SimConfig(n_trials=16, seed=9)


@pytest.mark.benchmark(group="service")
def test_simulate_serial_backend(benchmark):
    report = benchmark.pedantic(
        lambda: simulate(SCENARIO, "greedy", CONFIG, backend="serial"),
        rounds=1, iterations=1,
    )
    assert report.stats.n_trials == CONFIG.n_trials


@pytest.mark.benchmark(group="service")
def test_simulate_process_backend(benchmark):
    report = benchmark.pedantic(
        lambda: simulate(SCENARIO, "greedy", CONFIG, backend="process",
                         n_workers=4),
        rounds=1, iterations=1,
    )
    serial = simulate(SCENARIO, "greedy", CONFIG, backend="serial")
    assert np.array_equal(report.stats.samples, serial.stats.samples)
