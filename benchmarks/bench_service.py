"""Benchmark scheduling-as-a-service: executor lifecycles and request latency.

The unit of performance here is the *request*, not the batch call.  Three
ways of serving the same sequence of ``POST /simulate``-sized requests
are timed:

* ``serve_base_pool_lifecycle`` — the historical process backend: every
  request spins up (and tears down) its own ``spawn``-method worker
  pool, paying worker start-up + numpy/scipy import per request.
* ``serve_warm_*`` — the same requests through one prewarmed
  :class:`~repro.server.executors.WarmPoolExecutor` reused across
  requests (the request server's configuration).
* ``serve_base_serial`` — everything in-process, the zero-IPC floor.

``check_regression.py --mode ratio`` pairs ``test_serve_base_<key>``
with ``test_serve_warm_<key>`` and gates on the throughput ratio
``base_mean / warm_mean`` — both sides of each ratio are measured in the
same run on the same machine, so the gate transfers across runners.
The warm pool beats the per-request pool lifecycle by roughly the
pool-spawn-to-compute ratio (~10x here); against the serial floor it
trades a small IPC tax for parallelism, so that ratio is below 1 on a
single-core box and above it on multi-core runners — the committed
baseline records the measured value, whatever the machine.

``test_server_loadgen_p99`` measures the full stack — asyncio HTTP
server, warm-pool executor, wrk2-style open-loop driver — and lands
p50/p99 and achieved throughput in the benchmark json's ``extra_info``
(the BENCH_6 latency columns).

Both backends are also asserted bit-identical along the way, request
transport never changes samples — the service's core contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Scenario, SimConfig, simulate
from repro.loadgen import default_simulate_spec, run_open_loop
from repro.server import WarmPoolExecutor, serve_background

SCENARIO = Scenario(shape="independent", n_jobs=30, n_machines=8,
                    model="specialist", seed=5)

#: Per-request trial count: above the serial-batch fast-path threshold,
#: so the process paths genuinely dispatch chunks to workers.
REQ_CONFIG = SimConfig(n_trials=600, seed=9)

#: Requests per timed region.  The base/pool-lifecycle side pays one
#: pool spin-up per request; the warm side reuses one pool for all of
#: them.
N_REQUESTS = 2

#: Pool width for both process-backed sides (identical, so lifecycle —
#: not parallelism — is what the pool_lifecycle pair isolates).
N_WORKERS = 2


def _serve_requests(**simulate_kwargs):
    """One request sequence: the workload every lifecycle bench repeats."""
    return [
        simulate(SCENARIO, "greedy", REQ_CONFIG, **simulate_kwargs)
        for _ in range(N_REQUESTS)
    ]


def _assert_matches_serial(reports) -> None:
    serial = simulate(SCENARIO, "greedy", REQ_CONFIG)
    for report in reports:
        assert np.array_equal(report.stats.samples, serial.stats.samples)


@pytest.mark.benchmark(group="service")
def test_serve_base_pool_lifecycle_2x600(benchmark):
    """Per-request pool spin-up (the pre-executor process backend)."""
    reports = benchmark.pedantic(
        lambda: _serve_requests(backend="process", n_workers=N_WORKERS),
        rounds=1, iterations=1,
    )
    _assert_matches_serial(reports)


@pytest.mark.benchmark(group="service")
def test_serve_warm_pool_lifecycle_2x600(benchmark):
    """The same requests through one prewarmed, reused warm pool."""
    with WarmPoolExecutor(n_workers=N_WORKERS) as ex:
        ex.prewarm()  # spawn cost paid here, outside the timed region
        reports = benchmark.pedantic(
            lambda: _serve_requests(executor=ex), rounds=1, iterations=1,
        )
    _assert_matches_serial(reports)


@pytest.mark.benchmark(group="service")
def test_serve_base_serial_2x600(benchmark):
    """The in-process floor for the same request sequence."""
    reports = benchmark.pedantic(
        lambda: _serve_requests(), rounds=1, iterations=1,
    )
    _assert_matches_serial(reports)


@pytest.mark.benchmark(group="service")
def test_serve_warm_serial_2x600(benchmark):
    """Warm pool again, paired against the serial floor this time."""
    with WarmPoolExecutor(n_workers=N_WORKERS) as ex:
        ex.prewarm()
        reports = benchmark.pedantic(
            lambda: _serve_requests(executor=ex), rounds=1, iterations=1,
        )
    _assert_matches_serial(reports)


@pytest.mark.benchmark(group="service")
def test_server_loadgen_p99(benchmark):
    """Full stack under constant-rate load; latency columns to extra_info."""
    import asyncio

    rps, duration = 20.0, 3.0
    with WarmPoolExecutor(n_workers=1) as ex:
        ex.prewarm()
        with serve_background(ex) as handle:
            spec = default_simulate_spec(n_trials=16)

            def run():
                return asyncio.run(
                    run_open_loop(handle.host, handle.port, spec,
                                  rps=rps, duration=duration)
                )

            report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.errors == 0, report.status_counts
    assert report.completed == report.offered
    latency = report.histogram.summary()
    benchmark.extra_info.update(
        target_rps=rps,
        achieved_rps=round(report.achieved_rps, 2),
        p50_ms=round(latency["p50"] * 1e3, 2),
        p90_ms=round(latency["p90"] * 1e3, 2),
        p99_ms=round(latency["p99"] * 1e3, 2),
        max_ms=round(latency["max"] * 1e3, 2),
    )
