#!/usr/bin/env python
"""End-to-end service smoke: boot `repro serve`, drive constant-RPS load,
assert p99 sanity and zero errors, shut down gracefully.

Usage::

    python benchmarks/smoke_service.py [--rps 10] [--duration 5] \
        [--p99-budget 2.0] [--workers 2]

What it checks, in order:

1. ``repro serve`` boots as a real subprocess (warm-pool executor,
   prewarmed) and answers ``GET /healthz`` within the boot budget.
2. ``repro.loadgen`` sustains an open-loop constant-RPS run against
   ``POST /simulate`` with **zero errors** and a p99 (measured from
   scheduled arrival, wrk2-style) under the budget.
3. ``/healthz`` afterwards reports every request served and the warm
   pool still on its first built pool (no respawn churn under load).
4. SIGTERM produces a graceful drain and exit code 0.

Exit code 0 only if all four hold — this is the CI smoke leg.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.loadgen import default_simulate_spec, format_report, run_load  # noqa: E402

BOOT_BUDGET_S = 90.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(url: str, proc, budget: float) -> dict:
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server exited early with rc={proc.returncode}")
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2) as resp:
                return json.load(resp)
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.25)
    raise SystemExit(f"server not healthy within {budget:.0f}s")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rps", type=float, default=10.0)
    ap.add_argument("--duration", type=float, default=5.0)
    ap.add_argument("--p99-budget", type=float, default=2.0,
                    help="max acceptable p99 latency in seconds")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--trials", type=int, default=16,
                    help="trials per /simulate request")
    args = ap.parse_args(argv)

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--executor", "warm-pool", "--workers", str(args.workers)],
        env=env,
    )
    failures: list[str] = []
    try:
        health = wait_healthy(url, proc, BOOT_BUDGET_S)
        print(f"server healthy on {url}: executor="
              f"{health['executor']['kind']} warm={health['executor']['warm']}")

        report = run_load(url, default_simulate_spec(n_trials=args.trials),
                          rps=args.rps, duration=args.duration)
        print(format_report(report))
        p99 = report.histogram.p99
        if report.errors != 0:
            failures.append(f"{report.errors} request errors "
                            f"({report.status_counts})")
        if report.completed != report.offered:
            failures.append(f"only {report.completed}/{report.offered} "
                            "requests completed")
        if p99 > args.p99_budget:
            failures.append(f"p99 {p99:.3f}s exceeds budget "
                            f"{args.p99_budget:.3f}s")

        health = wait_healthy(url, proc, 10.0)
        if health["served"] < report.offered:
            failures.append(f"healthz served={health['served']} < "
                            f"offered={report.offered}")
        if health["executor"].get("pools_built") != 1:
            failures.append("warm pool was rebuilt under load "
                            f"(pools_built={health['executor'].get('pools_built')})")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            failures.append("server did not shut down within 30s of SIGTERM")
            rc = None
        if rc not in (0, None):
            failures.append(f"server exited rc={rc} on SIGTERM")

    if failures:
        print(f"\nSMOKE FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nsmoke ok: constant-RPS load served with zero errors, "
          "p99 within budget, graceful shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
