"""E-CHAIN — Theorem 9: SUU-C on disjoint chains."""

from repro.experiments import run_chains


def test_chains(bench_table):
    result = bench_table(
        run_chains,
        sizes=((20, 5), (40, 8)),
        n_trials=8,
        seed=7,
    )
    for row in result.rows:
        serial_ratio, suuc_ratio = row[4], row[6]
        # SUU-C must beat the serial O(n) floor (with slack for MC noise).
        assert suuc_ratio <= serial_ratio * 1.25, (
            f"SUU-C ({suuc_ratio:.2f}) lost to serial ({serial_ratio:.2f})"
        )
