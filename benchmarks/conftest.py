"""Benchmark configuration.

Each benchmark wraps one experiment runner from ``repro.experiments`` at a
reduced (bench-sized) configuration: pytest-benchmark times it, and the
resulting table — the same rows EXPERIMENTS.md records at full size — is
printed so ``pytest benchmarks/bench_*.py --benchmark-only`` regenerates
every table/figure of the reproduction in one command (the explicit glob
matters: ``bench_*.py`` does not match pytest's auto-discovery pattern).
"""

from __future__ import annotations

import pytest


def run_and_print(benchmark, runner, **kwargs):
    """Benchmark ``runner(**kwargs)`` and print its table once."""
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result


@pytest.fixture
def bench_table(benchmark):
    """Fixture exposing :func:`run_and_print` with the benchmark bound."""

    def _run(runner, **kwargs):
        return run_and_print(benchmark, runner, **kwargs)

    return _run
