"""Benchmark configuration.

Each benchmark wraps one experiment runner from ``repro.experiments`` at a
reduced (bench-sized) configuration: pytest-benchmark times it, and the
resulting table — the same rows EXPERIMENTS.md records at full size — is
printed so ``pytest benchmarks/bench_*.py --benchmark-only`` regenerates
every table/figure of the reproduction in one command (the explicit glob
matters: ``bench_*.py`` does not match pytest's auto-discovery pattern).
"""

from __future__ import annotations

import os

import pytest


def enforce_speedup_floor(benchmark, label, base_seconds, seconds,
                          floor, min_cores):
    """Assert a wall-clock speedup floor — on hardware that can meet it.

    Records ``cpu_count`` and the measured speedup in
    ``benchmark.extra_info`` (so the committed baseline JSON carries
    them), then hard-asserts ``base_seconds >= floor * seconds`` only
    when the box has at least ``min_cores`` cores.  On smaller runners
    the floor is *recorded as skipped* with the reason instead of
    asserted or ``pytest.skip``-ped: a 1-core box cannot make a
    parallel kernel 2x faster, and skipping after the timing ran would
    silently drop the test from its ``check_regression.py`` ratio pair.
    """
    cores = os.cpu_count() or 1
    benchmark.extra_info["cpu_count"] = cores
    if seconds > 0:
        benchmark.extra_info["speedup"] = round(base_seconds / seconds, 3)
    if cores < min_cores:
        reason = (f"{label}: {floor}x floor needs >= {min_cores} cores, "
                  f"this box has {cores} — recorded, not asserted")
        benchmark.extra_info["floor_skipped"] = reason
        print(f"\n{reason}")
        return
    assert base_seconds >= floor * seconds, (
        f"{label}: {seconds:.2f}s vs base {base_seconds:.2f}s — "
        f"below the {floor}x floor on a {cores}-core box"
    )


def run_and_print(benchmark, runner, **kwargs):
    """Benchmark ``runner(**kwargs)`` and print its table once."""
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result


@pytest.fixture
def bench_table(benchmark):
    """Fixture exposing :func:`run_and_print` with the benchmark bound."""

    def _run(runner, **kwargs):
        return run_and_print(benchmark, runner, **kwargs)

    return _run
