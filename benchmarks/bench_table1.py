"""T1 — the paper's Table 1, empirically (bench-sized)."""

from repro.experiments import run_table1


def test_table1(bench_table):
    result = bench_table(
        run_table1,
        sizes=((16, 4), (32, 8)),
        n_trials=8,
        seed=2008,
    )
    # Reproduction shape: on chains and forests the paper's algorithm must
    # not lose to the LR-style comparator on average.
    by_class = {}
    for row in result.rows:
        by_class.setdefault(row[0], []).append(row[6])  # improvement col
    for cls in ("chains", "forests"):
        improvements = by_class[cls]
        assert sum(improvements) / len(improvements) > 0.85, (
            f"{cls}: paper algorithm lost badly: {improvements}"
        )
