"""E-TREE — Theorem 12: forests via chain-block decomposition."""

from repro.experiments import run_trees


def test_trees(bench_table):
    result = bench_table(
        run_trees,
        sizes=((20, 5), (40, 8)),
        n_trials=6,
        seed=10,
    )
    for row in result.rows:
        blocks, bound = row[3], row[4]
        assert blocks <= bound, f"{blocks} blocks exceeds log bound {bound}"
