"""E-DELAY — Theorem 7: random delays collapse pseudoschedule congestion."""

from repro.experiments import run_delay


def test_delay(bench_table):
    result = bench_table(
        run_delay,
        configs=((40, 4, 10), (80, 4, 20), (160, 4, 40)),
        n_seeds=8,
        seed=8,
    )
    for row in result.rows:
        no_delay, delayed = row[3], row[4]
        assert delayed <= no_delay + 1e-9, (
            f"delays increased congestion: {delayed} > {no_delay}"
        )
    # At the largest size the reduction must be strict.
    big = result.rows[-1]
    assert big[4] < big[3], f"no congestion reduction at scale: {big}"
