#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.25] [--only bench_kernels]

Benchmarks are matched by fully-qualified test name; a benchmark present
in the baseline but missing from the current run is an error (a silently
dropped kernel looks like a speedup).  A current mean more than
``tolerance`` above the baseline mean fails the check.  New benchmarks
(present only in the current run) are reported but never fail — that is
how the perf trajectory grows.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    with open(path) as fh:
        data = json.load(fh)
    return {b["fullname"]: b["stats"]["mean"] for b in data["benchmarks"]}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_<n>.json baseline")
    ap.add_argument("current", help="freshly produced benchmark json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional mean regression (default 0.25 = +25%%)",
    )
    ap.add_argument(
        "--only",
        default=None,
        help="restrict the comparison to fullnames containing this substring",
    )
    args = ap.parse_args(argv)

    base = load_means(args.baseline)
    cur = load_means(args.current)
    if args.only:
        base = {k: v for k, v in base.items() if args.only in k}
        cur_scope = {k: v for k, v in cur.items() if args.only in k}
    else:
        cur_scope = cur

    failures: list[str] = []
    for name, old in sorted(base.items()):
        new = cur.get(name)
        if new is None:
            failures.append(f"MISSING  {name} (in baseline, not in current run)")
            continue
        ratio = new / old if old > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSED"
            failures.append(
                f"{status}  {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
                f"({ratio:.2f}x, tolerance {1.0 + args.tolerance:.2f}x)"
            )
        print(f"{status:9s} {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
              f"({ratio:.2f}x)")
    for name in sorted(set(cur_scope) - set(base)):
        print(f"new       {name}: {cur_scope[name] * 1e3:.2f} ms (no baseline)")

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
