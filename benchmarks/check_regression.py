#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--mode mean|ratio] [--tolerance 0.25] [--only bench_kernels]

Two modes:

``--mode mean`` (default)
    Benchmarks are matched by fully-qualified test name; a current mean
    more than ``tolerance`` above the baseline mean fails.  Machine-
    *dependent*: the baseline's absolute timings only transfer between
    identical runners.

``--mode ratio``
    Machine-*independent* gate for CI on heterogeneous/shared runners.
    Slow-side/fast-side benchmark pairs are discovered by naming
    convention — ``test_scalar_loop_<key>`` paired with
    ``test_batch_kernel_<key>`` (kernel speedups), and
    ``test_serve_base_<key>`` paired with ``test_serve_warm_<key>``
    (service request-throughput ratios) — and reduced to speedup ratios
    ``slow_mean / fast_mean``.  Both sides of a ratio come from the
    *same* run on the *same* machine, so a slow runner rescales
    numerator and denominator together.  A current speedup more than
    ``tolerance`` below the baseline's speedup fails.

In both modes, a benchmark (or pair) present in the baseline but missing
from the current run is an error (a silently dropped kernel looks like a
speedup), and new entries are reported but never fail — that is how the
perf trajectory grows.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

_SCALAR_MARK = "test_scalar_loop_"
_BATCH_MARK = "test_batch_kernel_"

#: (slow-side mark, fast-side mark) families reduced to speedup ratios.
#: scalar/batch gates the kernel speedups; serve_base/serve_warm gates
#: the request server's executor-lifecycle throughput ratios (BENCH_6);
#: lpwall_exact/lpwall_subset gates the LP-wall collapse under survivor
#: reuse (BENCH_7); kern_base/kern_jit gates the numpy-vs-numba backend
#: speedups and kern_checked/kern_trusted the per-step validation hoist
#: (BENCH_8 — the jit pairs appear only in baselines produced with numba
#: installed; the checked/trusted pair keeps the gate non-empty without
#: it); par_serial/par_threads gates the kernel_threads axis — serial vs
#: trial-parallel (prange or shard) runs of the same workload (BENCH_9 —
#: the prange pairs appear only in numba-equipped baselines, the shard
#: pairs run everywhere).
_RATIO_MARKS = (
    (_SCALAR_MARK, _BATCH_MARK),
    ("test_serve_base_", "test_serve_warm_"),
    ("test_lpwall_exact_", "test_lpwall_subset_"),
    ("test_kern_base_", "test_kern_jit_"),
    ("test_kern_checked_", "test_kern_trusted_"),
    ("test_par_serial_", "test_par_threads_"),
)


def load_means(path: str) -> dict[str, float]:
    with open(path) as fh:
        data = json.load(fh)
    return {b["fullname"]: b["stats"]["mean"] for b in data["benchmarks"]}


def speedup_pairs(means: dict[str, float]) -> dict[str, float]:
    """Reduce slow/fast benchmark pairs to speedup ratios.

    Keys are ``<file>::<suffix>`` (e.g. ``bench_adaptive.py::sem_1000``);
    values are ``slow_mean / fast_mean`` for every :data:`_RATIO_MARKS`
    family (a suffix pairs only within its own family — the marks are
    disjoint by construction).
    """
    sides: dict[str, dict[str, float]] = {}
    for fullname, mean in means.items():
        for slow_mark, fast_mark in _RATIO_MARKS:
            for mark, side in ((slow_mark, "slow"), (fast_mark, "fast")):
                if mark in fullname:
                    prefix, suffix = fullname.split(mark, 1)
                    prefix = re.sub(r"::.*$", "", prefix.rstrip(":"))
                    sides.setdefault(f"{prefix}::{suffix}", {})[side] = mean
    return {
        key: pair["slow"] / pair["fast"]
        for key, pair in sorted(sides.items())
        if "slow" in pair and "fast" in pair and pair["fast"] > 0
    }


def check_means(base, cur, cur_scope, tolerance) -> list[str]:
    """Absolute-mean gate (original behavior)."""
    failures: list[str] = []
    for name, old in sorted(base.items()):
        new = cur.get(name)
        if new is None:
            failures.append(f"MISSING  {name} (in baseline, not in current run)")
            continue
        ratio = new / old if old > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSED"
            failures.append(
                f"{status}  {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
                f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)"
            )
        print(f"{status:9s} {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
              f"({ratio:.2f}x)")
    for name in sorted(set(cur_scope) - set(base)):
        print(f"new       {name}: {cur_scope[name] * 1e3:.2f} ms (no baseline)")
    return failures


def check_ratios(base, cur, cur_scope, tolerance) -> list[str]:
    """Machine-independent scalar-vs-batch speedup gate."""
    base_ratios = speedup_pairs(base)
    cur_ratios = speedup_pairs(cur)
    cur_scope_ratios = speedup_pairs(cur_scope)
    failures: list[str] = []
    # Presence is still gated by *name* for every baseline benchmark, paired
    # or not — a silently dropped kernel looks like a speedup, and the check
    # is machine-independent.  Only the timing gate is ratio-based.
    for name in sorted(set(base) - set(cur)):
        failures.append(f"MISSING  {name} (in baseline, not in current run)")
    for key, old in sorted(base_ratios.items()):
        new = cur_ratios.get(key)
        if new is None:
            failures.append(f"MISSING  {key} (pair in baseline, not in current run)")
            continue
        floor = old * (1.0 - tolerance)
        status = "ok"
        if new < floor:
            status = "REGRESSED"
            failures.append(
                f"{status}  {key}: speedup {old:.1f}x -> {new:.1f}x "
                f"(floor {floor:.1f}x at tolerance {tolerance:.0%})"
            )
        print(f"{status:9s} {key}: speedup {old:.1f}x -> {new:.1f}x")
    for key in sorted(set(cur_scope_ratios) - set(base_ratios)):
        print(f"new       {key}: speedup {cur_scope_ratios[key]:.1f}x (no baseline)")
    if not base_ratios:
        marks = ", ".join(f"{s}*/{f}*" for s, f in _RATIO_MARKS)
        failures.append(
            f"MISSING  baseline contains no slow/fast pairs ({marks})"
        )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_<n>.json baseline")
    ap.add_argument("current", help="freshly produced benchmark json")
    ap.add_argument(
        "--mode",
        choices=("mean", "ratio"),
        default="mean",
        help="'mean' compares absolute means (same-machine baselines); "
        "'ratio' compares paired slow/fast speedups (machine-independent)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default 0.25: +25%% mean, "
        "or -25%% speedup in ratio mode)",
    )
    ap.add_argument(
        "--only",
        default=None,
        help="restrict the comparison to fullnames containing this substring",
    )
    args = ap.parse_args(argv)

    base = load_means(args.baseline)
    cur = load_means(args.current)
    if args.only:
        base = {k: v for k, v in base.items() if args.only in k}
        cur_scope = {k: v for k, v in cur.items() if args.only in k}
    else:
        cur_scope = cur

    if args.mode == "ratio":
        failures = check_ratios(base, cur, cur_scope, args.tolerance)
    else:
        failures = check_means(base, cur, cur_scope, args.tolerance)

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
