"""Benchmarks for the trial-vectorized batch kernel vs the scalar loop.

These are the measurements behind the repo's batch-kernel speedup claim:
the same oblivious-policy Monte Carlo estimate (1000 trials, SUU*
semantics) run through the pre-batch serial loop and through
:func:`repro.sim.batch.run_policy_batch`.  Both paths produce bit-identical
makespan samples (asserted here and in ``tests/test_batch_engine.py``), so
the timings are directly comparable.

Run with ``make bench`` (or ``pytest benchmarks/bench_batch.py
--benchmark-only``); the committed ``BENCH_<n>.json`` files record the
measured trajectory.
"""

import time

import numpy as np
import pytest

from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.suu_i_obl import build_obl_schedule
from repro.instance import independent_instance
from repro.schedule.oblivious import RepeatingObliviousPolicy
from repro.sim.batch import run_policy_batch
from repro.sim.engine import run_policy
from repro.util.rng import ensure_rng

#: Trial count for the scalar-vs-batch comparison (the acceptance target
#: is a >= 10x speedup for oblivious-policy Monte Carlo at >= 1000 trials).
N_TRIALS = 1000
SEED = 9


@pytest.fixture(scope="module")
def obl_setup():
    inst = independent_instance(40, 8, "uniform", rng=2)
    schedule = build_obl_schedule(inst)
    return inst, schedule


def scalar_loop(inst, factory, n_trials, seed):
    """The pre-batch serial Monte Carlo loop, verbatim."""
    rngs = ensure_rng(seed).spawn(n_trials)
    return np.array(
        [
            run_policy(inst, factory(), r, semantics="suu_star").makespan
            for r in rngs
        ],
        dtype=np.int64,
    )


def test_scalar_loop_oblivious_1000(benchmark, obl_setup):
    inst, schedule = obl_setup

    def run():
        return scalar_loop(
            inst, lambda: RepeatingObliviousPolicy(schedule), N_TRIALS, SEED
        )

    samples = benchmark.pedantic(run, rounds=3, iterations=1)
    assert samples.size == N_TRIALS


def test_batch_kernel_oblivious_1000(benchmark, obl_setup):
    inst, schedule = obl_setup

    def run():
        return run_policy_batch(
            inst,
            lambda: RepeatingObliviousPolicy(schedule),
            N_TRIALS,
            rng=SEED,
            semantics="suu_star",
        ).makespans

    samples = benchmark.pedantic(run, rounds=3, iterations=1)
    assert samples.size == N_TRIALS


def test_batch_kernel_greedy_1000(benchmark, obl_setup):
    inst, _ = obl_setup

    def run():
        return run_policy_batch(
            inst, GreedyLRPolicy, N_TRIALS, rng=SEED, semantics="suu_star"
        ).makespans

    samples = benchmark.pedantic(run, rounds=3, iterations=1)
    assert samples.size == N_TRIALS


def test_batch_speedup_and_equivalence(obl_setup):
    """One-shot timed comparison: identical samples, large speedup.

    The committed BENCH json records the precise ratio (>= 10x on the
    reference machine); the assertion floor is deliberately looser so a
    loaded CI box cannot flake the suite.
    """
    inst, schedule = obl_setup
    factory = lambda: RepeatingObliviousPolicy(schedule)  # noqa: E731

    t0 = time.perf_counter()
    expect = scalar_loop(inst, factory, N_TRIALS, SEED)
    t1 = time.perf_counter()
    batch = run_policy_batch(
        inst, factory, N_TRIALS, rng=SEED, semantics="suu_star"
    )
    t2 = time.perf_counter()

    assert np.array_equal(expect, batch.makespans)
    speedup = (t1 - t0) / max(t2 - t1, 1e-9)
    print(f"\nbatch kernel speedup (oblivious, {N_TRIALS} trials): {speedup:.1f}x")
    assert speedup >= 5.0
