"""E-OBL — Theorem 3: oblivious repeat scaling (bench-sized)."""

from repro.experiments import run_obl_scaling


def test_obl_scaling(bench_table):
    result = bench_table(
        run_obl_scaling,
        ns=(10, 20, 40, 80),
        m=8,
        n_trials=150,
        n_instances=2,
        seed=3,
    )
    ratios = [row[4] for row in result.rows]
    # Shape: the O(log n) algorithm's ratio must grow with n overall.
    assert ratios[-1] > ratios[0], f"OBL ratio failed to grow: {ratios}"
