"""E-SEM — Theorem 4: semioblivious rounds vs O(log n) baselines."""

from repro.experiments import run_sem_scaling


def test_sem_scaling(bench_table):
    result = bench_table(
        run_sem_scaling,
        ns=(10, 20, 40),
        m=8,
        n_trials=10,
        n_trials_obl=100,
        n_instances=2,
        seed=4,
    )
    # Shape: SEM's ratio curve must grow more slowly than OBL's.
    first, last = result.rows[0], result.rows[-1]
    obl_growth = last[4] / max(first[4], 1e-9)
    sem_growth = last[5] / max(first[5], 1e-9)
    assert sem_growth <= obl_growth * 1.5, (
        f"SEM grew faster than OBL (sem x{sem_growth:.2f}, obl x{obl_growth:.2f})"
    )
