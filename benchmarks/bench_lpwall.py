"""The LP wall at Monte Carlo scale, and its collapse under survivor reuse.

On a long-job-heavy :func:`~repro.instance.generators.lpwall_instance`,
every trial entering SEM round ``k >= 2`` carries its own random survivor
set, so ``lp_reuse="exact"`` pays one full LP1 pipeline per (trial, round)
— at 10 000 trials that is tens of thousands of solves, and the solver
dominates the run.  ``lp_reuse="subset"`` derives those near-identical
sets from shared anchor solves (see ``repro.core.phased``), collapsing
the solve count by 25-1000x and the wall-clock by ~1.5-2x while the
makespan distribution stays statistically indistinguishable.

Naming convention: exact/subset pairs share a suffix
(``test_lpwall_exact_<key>`` / ``test_lpwall_subset_<key>``) — that is
what ``benchmarks/check_regression.py --mode ratio`` pairs up to gate CI
on the machine-independent exact-over-subset wall-clock ratio.  On top of
the timing ratio, each subset benchmark *hard-asserts* the solve-count
budget (>= ``SOLVE_COLLAPSE_FLOOR``x fewer distinct LP1 solves than the
exact side of the same pair) and mean-makespan proximity, so a regression
in the reuse machinery fails the bench run itself, not just the ratio
gate.

Run with ``make bench-lpwall``; ``BENCH_7.json`` records the measured
trajectory.
"""

import numpy as np
import pytest

from repro.core.phased import clear_solve_cache
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import lpwall_instance
from repro.lp.stats import lp_stats_snapshot, reset_lp_stats
from repro.sim.batch import run_policy_batch

#: Monte Carlo scale for every row ("proof at scale": the wall only
#: dominates when trials are numerous enough that distinct survivor sets
#: outnumber distinct rounds by orders of magnitude).
N_TRIALS = 10_000
SEED = 11
#: Acceptance floor: subset mode must cut distinct LP1 solves >= 5x.
SOLVE_COLLAPSE_FLOOR = 5.0
#: Mean-makespan proximity bound between the modes (the derived schedules
#: are rebalanced restrictions; empirically the shift is well under 2%).
MEAN_TOLERANCE = 0.03

#: (policy factory, semantics, instance kwargs) per pair suffix.
CONFIGS = {
    "suuc_10000": (SUUCPolicy, "suu", dict(n_jobs=36, n_machines=3, chain_length=6)),
    "suut_10000": (SUUTPolicy, "suu_star", dict(n_jobs=36, n_machines=3, chain_length=6)),
    "sem_10000": (SUUISemPolicy, "suu", dict(n_jobs=48, n_machines=2)),
}

#: Exact-side (solve count, mean makespan) recorded for the subset side
#: of the same pair (tests run in definition order within one process).
_EXACT_SIDE: dict[str, tuple[int, float]] = {}


def _run(key: str, lp_reuse: str):
    factory, semantics, kwargs = CONFIGS[key]
    instance = lpwall_instance(**kwargs)
    clear_solve_cache()
    reset_lp_stats()
    result = run_policy_batch(
        instance,
        factory,
        N_TRIALS,
        rng=SEED,
        semantics=semantics,
        max_steps=100_000,
        discipline="v2",
        lp_reuse=lp_reuse,
    )
    solves = int(lp_stats_snapshot()["lp_solves"])
    return result.makespans, solves


def _exact_side(benchmark, key: str):
    samples, solves = benchmark.pedantic(
        lambda: _run(key, "exact"), rounds=1, iterations=1
    )
    _EXACT_SIDE[key] = (solves, float(samples.mean()))
    assert samples.size == N_TRIALS
    # The wall: nearly one distinct solve per trial (a few trials finish
    # in round 1 or happen to share a survivor set; measured ~0.93-2.0
    # solves per trial across the three configs).
    assert solves >= 0.8 * N_TRIALS


def _subset_side(benchmark, key: str):
    samples, solves = benchmark.pedantic(
        lambda: _run(key, "subset"), rounds=1, iterations=1
    )
    assert samples.size == N_TRIALS
    exact = _EXACT_SIDE.get(key)
    if exact is None:  # subset benchmark ran solo; nothing to compare
        return
    exact_solves, exact_mean = exact
    assert solves * SOLVE_COLLAPSE_FLOOR <= exact_solves, (
        f"{key}: {exact_solves} exact solves -> {solves} subset solves "
        f"(floor {SOLVE_COLLAPSE_FLOOR}x)"
    )
    mean = float(np.mean(samples))
    assert abs(mean - exact_mean) <= MEAN_TOLERANCE * exact_mean, (
        f"{key}: subset mean {mean:.1f} vs exact {exact_mean:.1f} "
        f"(tolerance {MEAN_TOLERANCE:.0%})"
    )


def test_lpwall_exact_suuc_10000(benchmark):
    _exact_side(benchmark, "suuc_10000")


def test_lpwall_subset_suuc_10000(benchmark):
    _subset_side(benchmark, "suuc_10000")


def test_lpwall_exact_suut_10000(benchmark):
    _exact_side(benchmark, "suut_10000")


def test_lpwall_subset_suut_10000(benchmark):
    _subset_side(benchmark, "suut_10000")


def test_lpwall_exact_sem_10000(benchmark):
    _exact_side(benchmark, "sem_10000")


def test_lpwall_subset_sem_10000(benchmark):
    _subset_side(benchmark, "sem_10000")
