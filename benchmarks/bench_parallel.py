"""Trial-parallelism benchmarks: serial vs threaded kernels (PR 9).

Gates the ``REPRO_KERNEL_THREADS`` axis with serial-vs-threaded pairs at
Monte Carlo scale.  Naming convention (what ``benchmarks/
check_regression.py --mode ratio`` pairs up):

- ``test_par_serial_<key>`` / ``test_par_threads_<key>`` — the same
  workload on the same backend with ``kernel_threads=1`` vs
  ``kernel_threads=THREADS``.  The threaded side *hard-asserts*
  bit-identical makespan samples (threads never change results, only
  wall-clock time).

Two mechanisms are measured:

- ``shard_*`` rows (numpy backend, runnable everywhere): the batch is
  split into contiguous trial shards executed on a thread pool
  (:func:`repro.sim.batch.run_policy_batch`'s shard layer).  Python-level
  policy stepping holds the GIL, so the expected speedup is modest —
  these rows *record* their speedup and ``cpu_count`` in ``extra_info``
  without asserting a floor.
- the ``prange_*`` row (numba backend, skipped without numba): the
  compiled steppers run ``prange`` over trials in-kernel, outside the
  GIL.  On boxes with at least :data:`PARALLEL_FLOOR_MIN_CORES` cores
  the pair hard-asserts a >= :data:`PARALLEL_SPEEDUP_FLOOR` x speedup;
  smaller boxes record the skip reason instead (see
  :func:`conftest.enforce_speedup_floor`) so the committed baseline
  stays honest about the hardware it was produced on.

Run with ``make bench-parallel``; ``BENCH_9.json`` records the measured
trajectory.
"""

import os
import time

import numpy as np
import pytest

from conftest import enforce_speedup_floor
from repro.api.scenario import Scenario
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.phased import clear_solve_cache
from repro.core.suu_c import SUUCPolicy
from repro.instance import independent_instance
from repro.kernels import numba_available, warmup
from repro.sim.batch import run_policy_batch

#: Trials per row — the scale where per-step kernel cost dominates.
N_TRIALS = 10_000
SEED = 11
#: Acceptance floor for the in-kernel (prange) threaded row.
PARALLEL_SPEEDUP_FLOOR = 2.0
#: Smallest box the parallel floor is asserted on.  Below this the floor
#: is recorded in ``extra_info`` instead (a 1-core runner cannot go 2x
#: faster by threading, and skipping would break the ratio pair).
PARALLEL_FLOOR_MIN_CORES = 4
#: Threaded-side worker count: at least 2 so the shard/prange machinery
#: is always exercised (even on 1-core boxes, where it is timed honestly
#: and the floor is recorded as skipped), at most 4 so the committed
#: baseline is comparable across runners.
THREADS = max(2, min(4, os.cpu_count() or 1))

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (prange rows need "
    "the compiled backend; the shard rows cover threads without it)"
)


def _chains_instance():
    return Scenario(shape="chains", n_jobs=36, n_machines=6,
                    model="specialist", seed=3).to_instance()


#: key -> zero-arg (instance, factory, run kwargs) builder.
PARALLEL_CONFIGS = {
    "shard_greedy_10000": lambda: (
        independent_instance(40, 8, "uniform", rng=2), GreedyLRPolicy,
        dict(semantics="suu"),
    ),
    # Exact LP reuse on the shard row: subset reuse declines to shard
    # (donor selection reads the shared solve cache, whose fill order
    # under concurrent shards is scheduling-dependent), so a subset row
    # here would time two identical serial runs.  Exact reuse is
    # key-deterministic — any shard interleaving caches the same values
    # — hence shard-safe and bit-identical.
    "shard_suuc_10000": lambda: (
        _chains_instance(), SUUCPolicy, dict(semantics="suu",
                                             lp_reuse="exact"),
    ),
    # Subset reuse is fine under prange: the batch is never split, so
    # driver-level LP solves run in the exact serial order.
    "prange_suuc_10000": lambda: (
        _chains_instance(), SUUCPolicy, dict(semantics="suu",
                                             lp_reuse="subset"),
    ),
}

#: Serial-side (samples, seconds) recorded for the threaded side of the
#: same pair (tests run in definition order within one process).
_SERIAL_SIDE: dict[str, tuple[np.ndarray, float]] = {}


def _run_row(key: str, kernel: str, threads: int):
    instance, factory, kwargs = PARALLEL_CONFIGS[key]()
    clear_solve_cache()
    start = time.perf_counter()
    result = run_policy_batch(
        instance, factory, N_TRIALS, rng=SEED, max_steps=100_000,
        discipline="v2", kernel=kernel, kernel_threads=threads, **kwargs,
    )
    return result.makespans, time.perf_counter() - start


def _serial_side(benchmark, key: str, kernel: str):
    warmup(kernel)  # compile (numba) outside the timed region
    samples, seconds = benchmark.pedantic(
        lambda: _run_row(key, kernel, 1), rounds=1, iterations=1
    )
    _SERIAL_SIDE[key] = (samples, seconds)
    assert samples.size == N_TRIALS


def _threaded_side(benchmark, key: str, kernel: str,
                   speedup_floor: float | None = None):
    warmup(kernel, THREADS)  # compile parallel flavors outside the timing
    samples, seconds = benchmark.pedantic(
        lambda: _run_row(key, kernel, THREADS), rounds=1, iterations=1
    )
    assert samples.size == N_TRIALS
    benchmark.extra_info["threads"] = THREADS
    base = _SERIAL_SIDE.get(key)
    if base is None:  # threaded benchmark ran solo; nothing to compare
        return
    base_samples, base_seconds = base
    assert np.array_equal(samples, base_samples), (
        f"{key}: kernel_threads={THREADS} samples diverged from serial"
    )
    print(f"\n{key}: serial {base_seconds:.2f}s -> {THREADS} threads "
          f"{seconds:.2f}s ({base_seconds / seconds:.2f}x)")
    if speedup_floor is not None:
        enforce_speedup_floor(
            benchmark, f"{key} ({THREADS} threads vs serial)",
            base_seconds, seconds, speedup_floor, PARALLEL_FLOOR_MIN_CORES,
        )
    else:
        # No floor on shard rows (GIL-bound): record the measurement only.
        benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
        if seconds > 0:
            benchmark.extra_info["speedup"] = round(base_seconds / seconds, 3)


def test_par_serial_shard_greedy_10000(benchmark):
    _serial_side(benchmark, "shard_greedy_10000", "numpy")


def test_par_threads_shard_greedy_10000(benchmark):
    _threaded_side(benchmark, "shard_greedy_10000", "numpy")


def test_par_serial_shard_suuc_10000(benchmark):
    _serial_side(benchmark, "shard_suuc_10000", "numpy")


def test_par_threads_shard_suuc_10000(benchmark):
    _threaded_side(benchmark, "shard_suuc_10000", "numpy")


@requires_numba
def test_par_serial_prange_suuc_10000(benchmark):
    _serial_side(benchmark, "prange_suuc_10000", "numba")


@requires_numba
def test_par_threads_prange_suuc_10000(benchmark):
    _threaded_side(benchmark, "prange_suuc_10000", "numba",
                   speedup_floor=PARALLEL_SPEEDUP_FLOOR)
