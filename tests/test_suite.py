"""Tests for the declarative suite runner (repro.suite)."""

import dataclasses
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.api.scenario import Scenario, ScenarioGrid, SimConfig
from repro.errors import InvalidScenarioError
from repro.suite import (
    ExperimentCell,
    SimulateCell,
    SuiteError,
    SuiteRunner,
    cell_digest,
    load_suite,
    suite_from_dict,
)

REPO = pathlib.Path(__file__).resolve().parents[1]
DEMO = REPO / "suites" / "demo.json"

SMALL = {
    "name": "tiny",
    "grid": {"base": {"shape": "independent", "n_jobs": 6, "n_machines": 2,
                      "model": "uniform", "seed": 3}},
    "policies": ["obl"],
    "config": {"n_trials": 4, "max_steps": 5000},
}


def small_spec(**overrides):
    data = {**SMALL, **overrides}
    return suite_from_dict(data)


def demo_cell() -> SimulateCell:
    return SimulateCell(
        Scenario(shape="independent", n_jobs=12, n_machines=4,
                 model="specialist", seed=0),
        "obl",
        SimConfig(n_trials=40, max_steps=40000, discipline="v1", seed=0),
    )


class TestSpecLoading:
    def test_demo_loads_and_expands(self):
        spec = load_suite(DEMO)
        cells = spec.cells()
        # 1 scenario x 2 policies x (2 disciplines x 2 seeds)
        assert len(cells) == 8
        assert len({cell_digest(c) for c in cells}) == 8

    def test_unknown_top_level_key(self):
        with pytest.raises(SuiteError, match="polices"):
            small_spec(polices=["obl"])

    def test_unknown_policy(self):
        with pytest.raises(SuiteError, match="not-a-policy"):
            small_spec(policies=["not-a-policy"])

    def test_unknown_sweep_field(self):
        with pytest.raises(SuiteError, match="dicipline"):
            small_spec(sweep={"dicipline": ["v1"]})

    def test_bad_sweep_value(self):
        with pytest.raises(SuiteError, match="sweep value"):
            small_spec(sweep={"discipline": ["v9"]}).configs()

    def test_unknown_experiment(self):
        with pytest.raises(SuiteError, match="E-NOPE"):
            small_spec(experiments=["E-NOPE"])

    def test_unknown_scenario_field_in_grid(self):
        bad = dict(SMALL)
        bad["grid"] = {"base": {"shape": "independent", "n_job": 6}}
        with pytest.raises(SuiteError, match="n_job"):
            suite_from_dict(bad)

    def test_unknown_config_field(self):
        with pytest.raises(SuiteError, match="trials"):
            small_spec(config={"trials": 4})

    def test_grid_and_experiments_both_absent(self):
        with pytest.raises(SuiteError, match="no grid"):
            suite_from_dict({"name": "empty"})

    def test_toml_loading_is_gated(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text(
            'name = "t"\npolicies = ["obl"]\n'
            '[grid.base]\nshape = "independent"\nn_jobs = 6\nn_machines = 2\n'
        )
        if sys.version_info >= (3, 11):
            spec = load_suite(path)
            assert spec.name == "t" and len(spec.cells()) == 1
        else:
            with pytest.raises(SuiteError, match="tomllib"):
                load_suite(path)


class TestStrictRoundTrip:
    """Scenario / ScenarioGrid / SimConfig reject unknown keys on load."""

    def test_scenario_rejects_unknown(self):
        with pytest.raises(InvalidScenarioError, match="n_jbos"):
            Scenario.from_dict({"shape": "independent", "n_jbos": 4})

    def test_simconfig_rejects_unknown(self):
        with pytest.raises(InvalidScenarioError, match="trials"):
            SimConfig.from_dict({"trials": 10})

    def test_grid_rejects_unknown_top_level(self):
        grid = ScenarioGrid(Scenario(), n_jobs=[4, 8])
        data = grid.to_dict()
        assert ScenarioGrid.from_dict(data).axes == grid.axes
        data["axis"] = {"n_jobs": [2]}
        with pytest.raises(InvalidScenarioError, match="axis"):
            ScenarioGrid.from_dict(data)

    def test_grid_requires_base(self):
        with pytest.raises(InvalidScenarioError, match="base"):
            ScenarioGrid.from_dict({"axes": {"n_jobs": [2]}})


class TestDigest:
    def test_stable_across_processes(self):
        cell = demo_cell()
        script = (
            "from tests.test_suite import demo_cell\n"
            "from repro.suite import cell_digest\n"
            "print(cell_digest(demo_cell()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(REPO / "src"), str(REPO)])
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env=env, check=True, cwd=str(REPO),
        )
        assert out.stdout.strip() == cell_digest(cell)

    @pytest.mark.parametrize("field,value", [
        ("n_trials", 41), ("seed", 5), ("semantics", "suu_star"),
        ("max_steps", 39999), ("discipline", "v2"), ("kernel", "python"),
        ("kernel_threads", 2), ("lp_reuse", "subset"),
        ("substreams", "per-policy"),
    ])
    def test_config_field_changes_digest(self, field, value):
        cell = demo_cell()
        changed = dataclasses.replace(cell, config=dataclasses.replace(
            cell.config, **{field: value}))
        assert cell_digest(changed) != cell_digest(cell)

    @pytest.mark.parametrize("field,value", [
        ("n_jobs", 13), ("n_machines", 5), ("seed", 9), ("model", "uniform"),
        ("shape", "chains"),
    ])
    def test_instance_field_changes_digest(self, field, value):
        cell = demo_cell()
        changed = dataclasses.replace(cell, scenario=dataclasses.replace(
            cell.scenario, **{field: value}))
        assert cell_digest(changed) != cell_digest(cell)

    def test_policy_changes_digest(self):
        cell = demo_cell()
        assert cell_digest(dataclasses.replace(cell, policy="greedy")) != (
            cell_digest(cell))

    def test_env_knob_changes_digest(self, monkeypatch):
        cell = demo_cell()
        base = cell_digest(cell)
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert cell_digest(cell) != base

    def test_experiment_digest_insensitive_to_arg_order(self):
        a = ExperimentCell("E-LP1", json.dumps({"n": 1, "m": 2}, sort_keys=True))
        b = ExperimentCell("E-LP1", json.dumps({"m": 2, "n": 1}, sort_keys=True))
        assert cell_digest(a) == cell_digest(b)
        c = ExperimentCell("E-LP1", json.dumps({"n": 1, "m": 3}, sort_keys=True))
        assert cell_digest(c) != cell_digest(a)


class TestRunner:
    def test_run_resume_and_delta(self, tmp_path, monkeypatch):
        import repro.suite.runner as runner_mod

        spec = small_spec(policies=["obl", "greedy"])
        out = tmp_path / "results"

        calls = []
        real = runner_mod.execute_cell

        def spy(cell, executor=None):
            calls.append(cell)
            return real(cell, executor=executor)

        monkeypatch.setattr(runner_mod, "execute_cell", spy)

        first = SuiteRunner(spec, out).run()
        assert (first.executed, first.cached) == (2, 0)
        assert len(calls) == 2

        # Rerun: zero executions, everything served from the cell store.
        calls.clear()
        second = SuiteRunner(spec, out).run()
        assert (second.executed, second.cached) == (0, 2)
        assert calls == []
        # Cached artifacts carry the same results.
        assert [o.artifact["result"] for o in second.outcomes] == (
            [o.artifact["result"] for o in first.outcomes])

        # Deleting one cell's artifact re-executes exactly that cell.
        victim = first.outcomes[1]
        os.unlink(out / "cells" / f"{victim.digest}.json")
        calls.clear()
        third = SuiteRunner(spec, out).run()
        assert (third.executed, third.cached) == (1, 1)
        assert len(calls) == 1
        assert cell_digest(calls[0]) == victim.digest

    def test_force_reexecutes(self, tmp_path):
        spec = small_spec()
        out = tmp_path / "r"
        assert SuiteRunner(spec, out).run().executed == 1
        assert SuiteRunner(spec, out, force=True).run().executed == 1

    def test_report_written(self, tmp_path):
        spec = small_spec()
        out = tmp_path / "r"
        outcome = SuiteRunner(spec, out).run()
        report = json.loads((out / "report.json").read_text())
        assert report["suite"] == "tiny"
        assert report["executed"] == 1 and report["cached"] == 0
        assert len(report["cells"]) == 1
        md = (out / "report.md").read_text()
        assert "| obl |" in md and outcome.outcomes[0].digest[:12] in md

    def test_artifact_contents(self, tmp_path):
        spec = small_spec()
        out = tmp_path / "r"
        outcome = SuiteRunner(spec, out).run()
        record = outcome.outcomes[0]
        stored = json.loads(
            (out / "cells" / f"{record.digest}.json").read_text())
        assert stored["digest"] == record.digest
        assert stored["kind"] == "simulate"
        assert stored["cell"]["knobs"]["discipline"] == "v1"
        assert stored["result"]["n_trials"] == 4
        assert stored["result"]["mean"] > 0

    def test_sweep_seed_axis_changes_results_independently(self, tmp_path):
        spec = small_spec(sweep={"seed": [0, 1]})
        outcome = SuiteRunner(spec, tmp_path / "r").run()
        assert outcome.executed == 2
        digests = [o.digest for o in outcome.outcomes]
        assert len(set(digests)) == 2

    def test_experiment_cells_cached(self, tmp_path):
        spec = small_spec(experiments=[
            {"id": "E-LP1", "args": {"sizes": [[8, 3]], "models": ["uniform"]}},
        ])
        out = tmp_path / "r"
        first = SuiteRunner(spec, out).run()
        assert first.executed == 2
        kinds = [o.artifact["kind"] for o in first.outcomes]
        assert kinds == ["simulate", "experiment"]
        assert SuiteRunner(spec, out).run().executed == 0

    def test_jobs_match_serial_results(self, tmp_path):
        spec = small_spec(config={"n_trials": 24, "max_steps": 5000})
        serial = SuiteRunner(spec, tmp_path / "a").run()
        pooled = SuiteRunner(spec, tmp_path / "b", jobs=2).run()
        assert pooled.executed == 1
        assert (pooled.outcomes[0].artifact["result"]["mean"]
                == serial.outcomes[0].artifact["result"]["mean"])
        # Same cells, same addresses: the two stores are interchangeable.
        assert pooled.outcomes[0].digest == serial.outcomes[0].digest


class TestCli:
    def test_suite_run_and_status(self, tmp_path, capsys):
        from repro.__main__ import main

        suite = tmp_path / "s.json"
        suite.write_text(json.dumps(SMALL))
        out = tmp_path / "results"
        assert main(["suite", "run", str(suite), "--out", str(out)]) == 0
        assert "executed=1 cached=0" in capsys.readouterr().out
        assert main(["suite", "run", str(suite), "--out", str(out),
                     "--quiet"]) == 0
        assert "executed=0 cached=1" in capsys.readouterr().out
        assert main(["suite", "status", str(suite), "--out", str(out)]) == 0
        assert "1/1 cells done" in capsys.readouterr().out

    def test_suite_run_rejects_bad_file(self, tmp_path, capsys):
        from repro.__main__ import main

        suite = tmp_path / "bad.json"
        suite.write_text(json.dumps({**SMALL, "polices": ["obl"]}))
        assert main(["suite", "run", str(suite), "--out",
                     str(tmp_path / "o")]) == 2
        assert "polices" in capsys.readouterr().err
