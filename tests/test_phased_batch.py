"""Tests for phase-grouped batch dispatch of the adaptive policies.

The load-bearing property is the same *serial equivalence* the vectorized
kernel guarantees: for every policy implementing the
:class:`~repro.schedule.base.PhasedPolicy` protocol, grouped dispatch must
produce makespans trial-for-trial identical to the scalar engine loop,
under both semantics, because the kernel replays the serial RNG tree
(including each trial's policy generator — SUU-C's random chain delays
must come out bit-identical).

On top of equivalence, the grouping invariants: each step the phase groups
partition exactly the live trials, every trial in a group receives the
group's shared row, and a policy supporting neither protocol still takes
the per-trial fallback unchanged.
"""

import numpy as np
import pytest

from repro.analysis.perjob import PerJobStats, per_job_stats
from repro.api import SimConfig, simulate
from repro.api.registry import policy_info
from repro.api.service import (
    MIN_CHUNK_TRIALS,
    SERIAL_BATCH_THRESHOLD,
    _chunk_bounds,
)
from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.layered import LayeredPolicy
from repro.core.phased import RoundScheduleCache
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
)
from repro.instance.generators import random_dag_instance
from repro.schedule.base import (
    IDLE,
    PhasedPolicy,
    Policy,
    supports_batch,
    supports_phased,
)
from repro.sim import compare_policies, run_policy, run_policy_batch
from repro.util.rng import ensure_rng

@pytest.fixture(autouse=True)
def _serial_replay_discipline(monkeypatch):
    """This module is (part of) the v1 serial-replay bit-identity
    regression suite: scalar-vs-batch equality only holds under
    discipline v1, so pin it regardless of the environment's
    REPRO_DISCIPLINE (the v2 CI leg exercises v2 through the service,
    montecarlo, and test_discipline suites)."""
    monkeypatch.delenv("REPRO_DISCIPLINE", raising=False)


ADAPTIVE_CASES = [
    # (policy factory, instance the policy is built for)
    pytest.param(SUUISemPolicy, "independent", id="sem"),
    pytest.param(SUUIAdaptiveLPPolicy, "independent", id="adapt"),
    pytest.param(SUUCPolicy, "chains", id="suu-c"),
    pytest.param(SUUTPolicy, "forest", id="suu-t"),
    pytest.param(LayeredPolicy, "random_dag", id="layered"),
]


def make_instance(kind):
    if kind == "independent":
        return independent_instance(14, 4, "uniform", rng=3)
    if kind == "chains":
        return chain_instance(12, 4, 3, "uniform", rng=7)
    if kind == "forest":
        return forest_instance(12, 4, 2, rng=5)
    if kind == "layered":
        return layered_instance([5, 5], 4, rng=6)
    if kind == "random_dag":
        return random_dag_instance(12, 4, rng=11)
    raise ValueError(kind)


def scalar_samples(instance, factory, n_trials, seed, semantics):
    """The pre-batch serial Monte Carlo loop, verbatim."""
    rngs = ensure_rng(seed).spawn(n_trials)
    return np.array(
        [
            run_policy(instance, factory(), r, semantics=semantics).makespan
            for r in rngs
        ],
        dtype=np.int64,
    )


class TestPhasedSerialEquivalence:
    @pytest.mark.parametrize("factory,kind", ADAPTIVE_CASES)
    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_bit_identical_to_scalar(self, factory, kind, semantics):
        inst = make_instance(kind)
        expect = scalar_samples(inst, factory, 12, 23, semantics)
        got = run_policy_batch(inst, factory, 12, rng=23, semantics=semantics)
        assert got.vectorized
        assert np.array_equal(expect, got.makespans)

    def test_layered_on_layered_dag(self):
        """The MapReduce-shaped case the layered policy exists for."""
        inst = make_instance("layered")
        for semantics in ("suu", "suu_star"):
            expect = scalar_samples(inst, LayeredPolicy, 10, 5, semantics)
            got = run_policy_batch(inst, LayeredPolicy, 10, rng=5,
                                   semantics=semantics)
            assert np.array_equal(expect, got.makespans)

    def test_completion_times_match_scalar(self):
        inst = make_instance("independent")
        rngs = ensure_rng(31).spawn(8)
        batch = run_policy_batch(
            inst, SUUISemPolicy, trial_rngs=rngs, semantics="suu_star"
        )
        rngs = ensure_rng(31).spawn(8)
        for k in range(8):
            res = run_policy(inst, SUUISemPolicy(), rngs[k], semantics="suu_star")
            assert np.array_equal(res.completion_times, batch.completion_times[k])
            assert res.busy_machine_steps == batch.busy_machine_steps[k]

    def test_compare_policies_pairs_adaptive_with_itself(self):
        """Common-random-number pairing survives grouped dispatch."""
        inst = make_instance("independent")
        out = compare_policies(
            inst,
            {"a": SUUISemPolicy, "b": SUUISemPolicy, "adapt": SUUIAdaptiveLPPolicy},
            10,
            rng=2,
        )
        assert np.array_equal(out["a"].samples, out["b"].samples)
        assert out["adapt"].n_trials == 10

    def test_suu_c_delays_replayed_per_trial(self):
        """SUU-C's random chain delays must be drawn from each trial's own
        policy generator: a batch of B trials matches B scalar runs even
        though the LP2 plan is solved once and shared."""
        inst = make_instance("chains")
        factory = lambda: SUUCPolicy(enable_delays=True)  # noqa: E731
        expect = scalar_samples(inst, factory, 10, 41, "suu_star")
        got = run_policy_batch(inst, factory, 10, rng=41, semantics="suu_star")
        assert np.array_equal(expect, got.makespans)

    def test_policy_kwargs_respected(self):
        """Cloned replicas must inherit the configured ablation flags."""
        inst = make_instance("chains")
        factory = lambda: SUUCPolicy(enable_delays=False, inner="obl")  # noqa: E731
        expect = scalar_samples(inst, factory, 8, 17, "suu")
        got = run_policy_batch(inst, factory, 8, rng=17, semantics="suu")
        assert np.array_equal(expect, got.makespans)


class RecordingSem(SUUISemPolicy):
    """SEM with instrumented grouped dispatch (for invariant checks)."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self.step_groups = []  # one {trial: key} dict per engine step
        self._current = None

    def phase_key(self, trial, state):
        if self._current is None or self._current["t"] != state.t:
            self._current = {"t": state.t, "keys": {}, "groups": []}
            self.step_groups.append(self._current)
        key = super().phase_key(trial, state)
        self._current["keys"][trial] = key
        return key

    def assign_group(self, state, trials):
        self._current["groups"].append(list(map(int, trials)))
        return super().assign_group(state, trials)


class TestGroupingInvariants:
    def test_groups_partition_live_trials(self):
        """Each step: every live trial is in exactly one dispatch group."""
        inst = make_instance("independent")
        policy = RecordingSem()
        run_policy_batch(inst, policy, 16, rng=3, semantics="suu_star")
        assert policy.step_groups
        for record in policy.step_groups:
            queried = sorted(record["keys"])
            dispatched = sorted(t for g in record["groups"] for t in g)
            # Partition: same trials, no duplicates, no omissions.
            assert dispatched == queried
            # Same-key trials land in the same group, and groups are
            # key-homogeneous.
            for group in record["groups"]:
                keys = {record["keys"][t] for t in group}
                assert len(keys) == 1
        # Grouping must actually group: round 1 runs every trial through
        # one shared schedule, so some step has a multi-trial group.
        assert any(
            len(g) > 1 for r in policy.step_groups for g in r["groups"]
        )

    def test_group_members_share_lp_solves(self):
        """The memoized round cache is the point: far fewer LP solves than
        the scalar loop's one-per-(trial, round)."""
        inst = make_instance("independent")
        policy = RecordingSem()
        run_policy_batch(inst, policy, 16, rng=3, semantics="suu_star")
        total_rounds = sum(c.round for c in policy._cursors)
        assert policy._cache.solves < total_rounds
        assert policy._cache.solves + policy._cache.hits == total_rounds

    def test_round_cache_reuses_equal_survivor_sets(self):
        inst = make_instance("independent")
        cache = RoundScheduleCache(inst, scale=6)
        jobs = np.arange(inst.n_jobs, dtype=np.int64)
        a = cache.schedule_id(0.5, jobs)
        b = cache.schedule_id(0.5, jobs)
        assert a == b and cache.solves == 1 and cache.hits == 1
        c = cache.schedule_id(1.0, jobs)
        assert c != a and cache.solves == 2


class UnphasedAdaptive(Policy):
    """Adaptive-looking policy with neither batch nor phased support."""

    name = "unphased-dummy"

    def start(self, instance, rng):
        self._m = instance.n_machines
        self._order = rng.permutation(instance.n_jobs)

    def assign(self, state):
        row = np.full(self._m, IDLE, dtype=np.int64)
        eligible = [j for j in self._order if state.eligible[j]]
        if eligible:
            row[:] = eligible[0]
        return row


class TestFallbackEquivalence:
    def test_unphased_policy_takes_fallback(self):
        inst = make_instance("independent")
        probe = UnphasedAdaptive()
        assert not supports_batch(probe) and not supports_phased(probe)
        batch = run_policy_batch(inst, UnphasedAdaptive, 10, rng=9)
        assert not batch.vectorized
        expect = scalar_samples(inst, UnphasedAdaptive, 10, 9, "suu")
        assert np.array_equal(batch.makespans, expect)

    def test_protocol_detection(self):
        for factory, _ in [(c.values[0], c.values[1]) for c in ADAPTIVE_CASES]:
            assert supports_phased(factory())
            assert not supports_batch(factory())
        assert issubclass(SUUISemPolicy, PhasedPolicy)

    def test_registry_capability_flags(self):
        assert policy_info("sem").phased
        assert policy_info("suu-c").phased
        assert not policy_info("sem").vectorized
        assert policy_info("sem").batch_dispatch == "phased"
        assert policy_info("obl").batch_dispatch == "vectorized"
        assert policy_info("random").batch_dispatch == "fallback"


class TestServiceRouting:
    def test_simulate_routes_adaptive_through_grouped_dispatch(self):
        """simulate() must hand adaptive policies to the batch kernel and
        still match the scalar loop sample-for-sample."""
        inst = make_instance("independent")
        config = SimConfig(n_trials=10, seed=4)
        report = simulate(inst, "sem", config)
        expect = scalar_samples(inst, SUUISemPolicy, 10, 4, "suu")
        assert np.array_equal(report.stats.samples, expect)

    def test_process_backend_bit_identical_for_phased(self):
        inst = make_instance("independent")
        config = SimConfig(n_trials=12, seed=6)
        serial = simulate(inst, "adapt", config, backend="serial")
        process = simulate(inst, "adapt", config, backend="process")
        assert np.array_equal(serial.stats.samples, process.stats.samples)

    def test_chunk_bounds_auto_heuristic(self):
        # Chunks never smaller than MIN_CHUNK_TRIALS (except a lone chunk).
        for n_items in (1, 10, MIN_CHUNK_TRIALS, 300, 1000, 1001):
            for n_workers in (1, 2, 7, 32):
                bounds = _chunk_bounds(n_items, n_workers)
                flat = [k for lo, hi in bounds for k in range(lo, hi)]
                assert flat == list(range(n_items))  # no drop, no reorder
                if len(bounds) > 1:
                    assert all(hi - lo >= MIN_CHUNK_TRIALS for lo, hi in bounds)
                assert len(bounds) <= n_workers

    def test_small_batches_skip_the_pool(self):
        """Below the threshold the process backend runs in-process (same
        samples; this asserts the bit-identity half of the contract)."""
        assert SERIAL_BATCH_THRESHOLD > 1
        inst = make_instance("independent")
        config = SimConfig(n_trials=8, seed=5)
        serial = simulate(inst, "greedy", config, backend="serial")
        process = simulate(inst, "greedy", config, backend="process")
        assert np.array_equal(serial.stats.samples, process.stats.samples)

    def test_fast_path_eligibility(self):
        """An explicit process request stands for fallback-dispatch
        policies (in-process batching is the scalar loop for them) and for
        replica-phased ones (suu-c/suu-t share only start-up work); the
        fast path is for vectorized and keyed-phased policies."""
        from repro.api.service import _fast_path_eligible, _spec_fast_path_eligible
        from repro.baselines.greedy_lr import GreedyLRPolicy
        from repro.baselines.naive import RandomAssignmentPolicy

        assert _fast_path_eligible(SUUISemPolicy)
        assert _fast_path_eligible(LayeredPolicy)
        assert _fast_path_eligible(GreedyLRPolicy)
        assert not _fast_path_eligible(SUUCPolicy)
        assert not _fast_path_eligible(SUUTPolicy)
        assert not _fast_path_eligible(RandomAssignmentPolicy)
        assert _spec_fast_path_eligible("sem")
        assert not _spec_fast_path_eligible("suu-c")
        assert not _spec_fast_path_eligible("auto")  # may resolve to suu-c

    def test_pool_path_exercised_end_to_end(self):
        """A fallback-dispatch policy below the threshold must still use
        the worker pool (explicit process request), covering _map_chunks,
        the run_trial_batch pickling contract, and the want_completions
        tuple reassembly."""
        inst = make_instance("independent")
        config = SimConfig(n_trials=6, seed=7)
        serial = simulate(inst, "random", config, backend="serial",
                          per_job=True)
        process = simulate(inst, "random", config, backend="process",
                           n_workers=2, per_job=True)
        assert np.array_equal(serial.stats.samples, process.stats.samples)
        assert np.array_equal(
            serial.per_job.completion_times, process.per_job.completion_times
        )


class TestPerJobStats:
    def test_matches_completion_matrix(self):
        inst = make_instance("independent")
        batch = run_policy_batch(inst, SUUISemPolicy, 15, rng=2)
        stats = per_job_stats(batch)
        assert isinstance(stats, PerJobStats)
        assert stats.n_trials == 15 and stats.n_jobs == inst.n_jobs
        assert np.allclose(stats.mean, batch.completion_times.mean(axis=0))
        assert np.allclose(
            stats.quantile(0.9), np.quantile(batch.completion_times, 0.9, axis=0)
        )
        # The per-trial max over jobs is the makespan.
        assert np.array_equal(
            batch.completion_times.max(axis=1), batch.makespans
        )

    def test_critical_fraction_partitions_mass(self):
        stats = PerJobStats(np.array([[3, 1, 3], [2, 5, 1]]))
        # Trial 0: jobs 0 and 2 tie (0.5 each); trial 1: job 1 alone.
        assert np.allclose(stats.critical_fraction, [0.25, 0.5, 0.25])
        assert np.isclose(stats.critical_fraction.sum(), 1.0)

    def test_slowest_jobs_ordering(self):
        stats = PerJobStats(np.array([[1, 9, 5], [1, 7, 5]]))
        top = stats.slowest_jobs(2, q=0.5)
        assert [j for j, _ in top] == [1, 2]

    def test_simulate_surfaces_per_job(self):
        inst = make_instance("independent")
        report = simulate(inst, "sem", SimConfig(n_trials=10, seed=1),
                          per_job=True)
        assert report.per_job is not None
        assert report.per_job.n_jobs == inst.n_jobs
        d = report.to_dict()
        assert d["per_job"]["n_trials"] == 10
        # Off by default (the matrix is n_trials x n_jobs — opt-in only).
        assert simulate(inst, "sem", SimConfig(n_trials=5, seed=1)).per_job is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PerJobStats(np.arange(4))
        with pytest.raises(ValueError):
            per_job_stats(np.ones((2, 3))).quantile(1.5)
