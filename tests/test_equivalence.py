"""Statistical tests of Theorem 10: SUU and SUU* induce the same law.

These run the same policy under both semantics with independent seeds and
compare makespan distributions.  Sample sizes and thresholds are chosen so
the false-failure probability is far below one in a million per test, yet
a genuinely broken engine (e.g. mass accounted once instead of per step)
fails decisively.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.suu_i_obl import SUUIOblPolicy
from repro.instance import SUUInstance, chain_instance, independent_instance
from repro.sim import estimate_expected_makespan


def _samples(inst, factory, semantics, n, seed):
    return estimate_expected_makespan(
        inst, factory, n, rng=seed, semantics=semantics, max_steps=200_000
    ).samples


class TestSingleJobLaw:
    def test_geometric_under_both(self):
        """One machine, q=1/2: both semantics must give Geometric(1/2)."""
        inst = SUUInstance(np.array([[0.5]]))
        for semantics in ("suu", "suu_star"):
            s = _samples(inst, SUUIOblPolicy, semantics, 3000, 1)
            assert s.mean() == pytest.approx(2.0, rel=0.07)
            # P(T = 1) = 1/2.
            assert (s == 1).mean() == pytest.approx(0.5, abs=0.03)

    def test_two_machine_mass_addition(self):
        """Masses add across machines: success prob 1 - q1 q2."""
        inst = SUUInstance(np.array([[0.5], [0.25]]))
        for semantics in ("suu", "suu_star"):
            s = _samples(inst, SUUIOblPolicy, semantics, 3000, 2)
            assert s.mean() == pytest.approx(1.0 / (1 - 0.125), rel=0.07)


class TestDistributionalEquality:
    @pytest.mark.parametrize(
        "make_inst,factory",
        [
            (lambda: independent_instance(10, 4, "specialist", rng=21), SUUIOblPolicy),
            (lambda: independent_instance(8, 3, "uniform", rng=22), GreedyLRPolicy),
            (lambda: chain_instance(10, 3, 3, "uniform", rng=23), GreedyLRPolicy),
        ],
    )
    def test_ks_no_rejection(self, make_inst, factory):
        inst = make_inst()
        a = _samples(inst, factory, "suu", 500, 31)
        b = _samples(inst, factory, "suu_star", 500, 32)
        ks = scipy_stats.ks_2samp(a, b)
        assert ks.pvalue > 1e-4, (
            f"SUU vs SUU* distributions differ (p={ks.pvalue:.2e}); "
            "Theorem 10 violated by the engine"
        )

    def test_means_close(self):
        inst = independent_instance(12, 4, "uniform", rng=24)
        a = _samples(inst, SUUIOblPolicy, "suu", 600, 41)
        b = _samples(inst, SUUIOblPolicy, "suu_star", 600, 42)
        pooled_sem = np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
        assert abs(a.mean() - b.mean()) <= 5 * pooled_sem + 0.2
