"""Load harness: histogram accuracy and open-loop driver discipline."""

import asyncio
import json
import math

import numpy as np
import pytest

from repro.loadgen import (
    LatencyHistogram,
    RequestSpec,
    default_simulate_spec,
    format_report,
    run_open_loop,
)


class TestLatencyHistogram:
    def test_percentiles_track_order_statistics_within_precision(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(mean=-4.0, sigma=1.0, size=5000)  # ~ms scale
        hist = LatencyHistogram(precision=1.01)
        for v in values:
            hist.record(float(v))
        ordered = np.sort(values)
        for p in (50, 90, 99, 99.9):
            # Same rank rule as the histogram (ceil-rank order statistic):
            # the comparison isolates bucketing error from rank-definition
            # differences (numpy interpolates, which diverges in a sparse
            # tail where adjacent order statistics are far apart).
            exact = float(ordered[math.ceil(p / 100.0 * len(ordered)) - 1])
            approx = hist.percentile(p)
            # Geometric buckets at 1.01 growth bound relative error ~1%.
            assert abs(approx - exact) / exact < 0.02, (p, exact, approx)

    def test_exact_extremes_and_mean(self):
        hist = LatencyHistogram()
        for v in (0.010, 0.020, 0.030):
            hist.record(v)
        assert hist.min == 0.010
        assert hist.max == 0.030
        assert hist.mean == pytest.approx(0.020)
        assert hist.count == 3

    def test_percentiles_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        # A single observation: every quantile is that observation.
        for p in (0, 50, 100):
            assert hist.percentile(p) == pytest.approx(0.5, rel=0.02)
        assert hist.percentile(100) <= hist.max

    def test_out_of_range_values_saturate_not_raise(self):
        hist = LatencyHistogram(min_value=1e-3, max_value=1.0)
        hist.record(1e-6)  # below min: first bucket
        hist.record(50.0)  # above max: last bucket, exact max kept
        assert hist.count == 2
        assert hist.max == 50.0

    def test_empty_and_invalid_inputs(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0
        assert hist.summary()["count"] == 0
        with pytest.raises(ValueError):
            hist.record(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(precision=1.0)

    def test_merge_adds_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (0.01, 0.02):
            a.record(v)
        for v in (0.03, 0.04):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.max == 0.04
        assert a.min == 0.01
        assert a.mean == pytest.approx(0.025)

    def test_merge_rejects_different_geometry(self):
        a = LatencyHistogram(precision=1.01)
        b = LatencyHistogram(precision=1.05)
        with pytest.raises(ValueError, match="geometry"):
            a.merge(b)

    def test_summary_columns(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        assert set(hist.summary()) == {
            "count", "mean", "p50", "p90", "p99", "p999", "max"
        }


class TestRequestSpec:
    def test_json_constructor_round_trips(self):
        spec = RequestSpec.json("POST", "/simulate", {"a": 1})
        assert spec.method == "POST"
        assert json.loads(spec.body) == {"a": 1}

    def test_default_simulate_spec_is_a_valid_request(self):
        spec = default_simulate_spec(n_jobs=5, n_machines=2, n_trials=7)
        body = json.loads(spec.body)
        assert body["scenario"]["n_jobs"] == 5
        assert body["config"]["n_trials"] == 7
        assert spec.path == "/simulate"


def _stub_server(handler):
    """A one-endpoint asyncio HTTP stub; returns (server, port) awaitable."""

    async def client_connected(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                length = 0
                while True:
                    raw = await reader.readline()
                    if raw in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = raw.decode().partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value)
                if length:
                    await reader.readexactly(length)
                await handler()
                writer.write(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n"
                    b"Connection: keep-alive\r\n\r\n{}"
                )
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    return asyncio.start_server(client_connected, "127.0.0.1", 0)


class TestOpenLoopDriver:
    def test_rejects_non_positive_rate_or_duration(self):
        async def main():
            with pytest.raises(ValueError):
                await run_open_loop("127.0.0.1", 1, RequestSpec(),
                                    rps=0, duration=1)
            with pytest.raises(ValueError):
                await run_open_loop("127.0.0.1", 1, RequestSpec(),
                                    rps=10, duration=0)

        asyncio.run(main())

    def test_offered_load_is_rate_times_duration(self):
        async def main():
            server = await _stub_server(lambda: asyncio.sleep(0))
            port = server.sockets[0].getsockname()[1]
            try:
                return await run_open_loop(
                    "127.0.0.1", port, RequestSpec(), rps=40, duration=0.5
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(main())
        assert report.offered == 20  # exactly rate x duration, never shed
        assert report.completed == 20
        assert report.errors == 0
        assert report.status_counts == {"200": 20}
        assert report.histogram.count == 20
        assert report.achieved_rps > 0

    def test_latency_measured_from_scheduled_arrival(self):
        """A stalling server is charged for the backlog it causes.

        The stub serializes requests behind a lock and takes 80ms each;
        arrivals come every 20ms.  A closed-loop (or send-time-measured)
        driver would report ~80ms for every request; the open loop charges
        request i its queueing delay, so the tail grows ~60ms per queued
        request — the anti-coordinated-omission contract.
        """
        lock = asyncio.Lock()

        async def slow_handler():
            async with lock:
                await asyncio.sleep(0.08)

        async def main():
            server = await _stub_server(slow_handler)
            port = server.sockets[0].getsockname()[1]
            try:
                return await run_open_loop(
                    "127.0.0.1", port, RequestSpec(), rps=50, duration=0.08
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(main())
        assert report.offered == 4
        assert report.completed == 4
        # Last arrival (t=60ms) waits for three 80ms services: its latency
        # from scheduled arrival is ~4*80-60 = 260ms, far above one service
        # time.  Under coordinated omission it would have been ~80ms.
        assert report.histogram.max > 0.18
        assert report.histogram.min < 0.12  # first request: just service
        assert report.max_in_flight >= 3  # arrivals did not wait in line

    def test_error_statuses_counted_not_recorded(self):
        async def main():
            async def client_connected(reader, writer):
                await reader.readline()
                while (await reader.readline()) not in (b"\r\n", b"\n", b""):
                    pass
                writer.write(
                    b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n"
                    b"Connection: close\r\n\r\n{}"
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                client_connected, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                return await run_open_loop(
                    "127.0.0.1", port, RequestSpec(), rps=20, duration=0.2
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(main())
        assert report.completed == 0
        assert report.errors == report.offered
        assert report.status_counts.get("404") == report.offered
        assert report.histogram.count == 0  # errors never pollute latency
        assert report.error_rate == 1.0

    def test_format_report_mentions_the_columns(self):
        async def main():
            server = await _stub_server(lambda: asyncio.sleep(0))
            port = server.sockets[0].getsockname()[1]
            try:
                return await run_open_loop(
                    "127.0.0.1", port, RequestSpec(), rps=20, duration=0.1
                )
            finally:
                server.close()
                await server.wait_closed()

        text = format_report(asyncio.run(main()))
        for needle in ("open-loop run", "p50", "p99", "scheduled arrival",
                       "responses by status"):
            assert needle in text
