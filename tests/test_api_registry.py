"""Policy registry: lookup, aliases, defaults, factories, deprecation shims."""

import pickle

import pytest

import repro
from repro.api import registry
from repro.api.registry import (
    PolicyInfo,
    default_policy_for,
    get_policy,
    list_policies,
    make_policy,
    policy_factory,
    policy_info,
    policy_names,
    register_policy,
)
from repro.errors import ReproError, UnknownPolicyError
from repro.instance.precedence import PrecedenceClass
from repro.schedule.base import Policy

EXPECTED_CANONICAL = {
    "adapt", "best-machine", "greedy", "layered", "obl", "random",
    "round-robin", "sem", "serial", "suu-c", "suu-t",
}


class TestLookup:
    def test_canonical_names(self):
        assert set(policy_names()) == EXPECTED_CANONICAL

    def test_get_by_name_and_alias(self):
        assert get_policy("sem") is repro.SUUISemPolicy
        assert get_policy("suu-i-sem") is repro.SUUISemPolicy
        assert get_policy("lr") is repro.GreedyLRPolicy
        assert get_policy("rr") is repro.RoundRobinPolicy

    def test_aliases_resolve_to_canonical_info(self):
        assert policy_info("suu-i-obl").name == "obl"
        assert policy_info("random-assignment").name == "random"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPolicyError) as exc:
            get_policy("nope")
        # The error is catchable as KeyError (mapping semantics) and as the
        # library base error, and names what *is* available.
        assert isinstance(exc.value, KeyError)
        assert isinstance(exc.value, ReproError)
        assert "sem" in str(exc.value)

    def test_list_policies_sorted_and_complete(self):
        infos = list_policies()
        assert [i.name for i in infos] == sorted(i.name for i in infos)
        assert {i.name for i in infos} == EXPECTED_CANONICAL
        assert all(isinstance(i, PolicyInfo) for i in infos)
        assert all(issubclass(i.cls, Policy) for i in infos)

    def test_summaries_and_display_names(self):
        for info in list_policies():
            assert info.summary, f"{info.name} has no docstring summary"
            assert info.display_name != Policy.name

    def test_names_with_aliases_superset(self):
        assert set(policy_names()) < set(policy_names(include_aliases=True))


class TestDefaults:
    @pytest.mark.parametrize(
        "pc,expected",
        [
            ("independent", "sem"),
            ("chains", "suu-c"),
            ("out_forest", "suu-t"),
            ("in_forest", "suu-t"),
            ("mixed_forest", "suu-t"),
            ("general", "layered"),
        ],
    )
    def test_every_precedence_class_has_a_default(self, pc, expected):
        assert default_policy_for(pc) == expected
        assert default_policy_for(PrecedenceClass(pc)) == expected

    def test_default_from_instance(self, small_chains):
        assert default_policy_for(small_chains) == "suu-c"

    def test_unknown_class_raises(self):
        with pytest.raises(UnknownPolicyError):
            default_policy_for("triangular")


class TestConstruction:
    def test_make_policy_from_name_with_kwargs(self):
        p = make_policy("suu-c", inner="obl")
        assert isinstance(p, repro.SUUCPolicy)
        assert p.inner == "obl"

    def test_make_policy_from_class_and_instance(self):
        assert isinstance(make_policy(repro.GreedyLRPolicy), repro.GreedyLRPolicy)
        inst = repro.GreedyLRPolicy()
        assert make_policy(inst) is inst
        with pytest.raises(TypeError):
            make_policy(inst, inner="obl")

    def test_policy_factory_fresh_instances(self):
        factory = policy_factory("sem", n_rounds=2)
        a, b = factory(), factory()
        assert a is not b
        assert isinstance(a, repro.SUUISemPolicy)

    def test_policy_factory_unknown_fails_fast(self):
        with pytest.raises(UnknownPolicyError):
            policy_factory("nope")

    def test_policy_factory_pickles(self):
        factory = pickle.loads(pickle.dumps(policy_factory("suu-c", inner="obl")))
        p = factory()
        assert isinstance(p, repro.SUUCPolicy) and p.inner == "obl"


class TestRegistration:
    def _cleanup(self, name):
        registry._REGISTRY.pop(name, None)
        registry._ALIASES = {
            a: c for a, c in registry._ALIASES.items() if c != name
        }
        registry._DEFAULTS = {
            pc: c for pc, c in registry._DEFAULTS.items() if c != name
        }

    def test_register_and_resolve_custom_policy(self):
        try:
            @register_policy("_test-policy", aliases=("_tp",))
            class _TestPolicy(repro.SerialAllMachinesPolicy):
                """Test-only policy."""

            assert get_policy("_tp") is _TestPolicy
        finally:
            self._cleanup("_test-policy")

    def test_name_collision_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_policy("sem")
            class _Clash(repro.SerialAllMachinesPolicy):
                """Clashing name."""

    def test_canonical_name_shadowed_by_existing_alias_raises(self):
        # "lr" is an alias of "greedy"; a canonical registration under it
        # would be listed but unreachable (aliases win during resolution).
        with pytest.raises(ValueError, match="collides with an alias"):
            @register_policy("lr")
            class _Clash(repro.SerialAllMachinesPolicy):
                """Shadowed canonical name."""

    def test_alias_collision_raises(self):
        try:
            with pytest.raises(ValueError, match="collides"):
                @register_policy("_test-policy2", aliases=("sem",))
                class _Clash(repro.SerialAllMachinesPolicy):
                    """Clashing alias."""
        finally:
            self._cleanup("_test-policy2")

    def test_duplicate_default_raises(self):
        try:
            with pytest.raises(ValueError, match="already defaults"):
                @register_policy("_test-policy3", default_for=("chains",))
                class _Clash(repro.SerialAllMachinesPolicy):
                    """Clashing default."""
        finally:
            self._cleanup("_test-policy3")

    def test_reregistering_same_class_is_noop(self):
        cls = get_policy("sem")
        assert register_policy("sem")(cls) is cls
        assert get_policy("sem") is cls


class TestDeprecationShims:
    def test_main_policies_dict_removed_with_pointer(self):
        """The PR-1 POLICIES shim is gone; the error must say where the
        table lives now (and `from ... import POLICIES` raises too)."""
        import repro.__main__ as cli

        with pytest.raises(AttributeError, match="repro.api.registry"):
            cli.POLICIES
        with pytest.raises(ImportError):
            from repro.__main__ import POLICIES  # noqa: F401

    def test_default_policy_helper_warns(self, small_independent):
        import repro.__main__ as cli

        with pytest.warns(DeprecationWarning, match="default_policy_for"):
            assert cli._default_policy_for(small_independent) == "sem"

    def test_unknown_main_attribute_raises(self):
        import repro.__main__ as cli

        with pytest.raises(AttributeError):
            cli.NOT_A_THING


class TestPoliciesCLI:
    def test_lists_full_registry(self, capsys):
        from repro.__main__ import main

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_CANONICAL:
            assert name in out
        assert "SUUISemPolicy" in out
