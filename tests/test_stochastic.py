"""Tests for the stochastic-scheduling substrate and STC-I (Appendix C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stoch import (
    serial_fastest_trial,
    static_mean_trial,
    stc_i_trial,
    stochastic_round_count,
    estimate_stochastic,
    realized_preemptive_optimum,
)
from repro.errors import ReproError
from repro.instance import StochasticInstance, stochastic_instance
from repro.stochastic import (
    decompose_timetable,
    execute_timetable,
    lst_feasible_assignment,
    solve_r_cmax_lst,
    solve_r_pmtn_cmax,
)


class TestLawlerLabetoulleLP:
    def test_single_job(self):
        # speed 2, length 4 -> C* = 2.
        c, X = solve_r_pmtn_cmax(np.array([[2.0]]), np.array([4.0]))
        assert c == pytest.approx(2.0)
        assert X[0, 0] == pytest.approx(2.0)

    def test_job_parallelism_forbidden(self):
        # One job, two fast machines: the job still can't run on both at
        # once, so C* = p / v = 1, not 1/2.
        c, _ = solve_r_pmtn_cmax(np.full((2, 1), 4.0), np.array([4.0]))
        assert c == pytest.approx(1.0)

    def test_machine_load_bound(self):
        # Two unit jobs, one unit machine: C* = 2.
        c, _ = solve_r_pmtn_cmax(np.ones((1, 2)), np.ones(2))
        assert c == pytest.approx(2.0)

    def test_preemption_helps(self):
        # Classic: 2 machines with complementary speeds.
        speeds = np.array([[2.0, 1.0], [1.0, 2.0]])
        lengths = np.array([3.0, 3.0])
        c, X = solve_r_pmtn_cmax(speeds, lengths)
        assert c <= 1.5 + 1e-9

    def test_zero_length_jobs_skipped(self):
        c, X = solve_r_pmtn_cmax(np.ones((1, 2)), np.array([0.0, 1.0]))
        assert c == pytest.approx(1.0)
        assert X[0, 0] == 0.0

    def test_rejects_unusable_job(self):
        with pytest.raises(ReproError):
            solve_r_pmtn_cmax(np.zeros((1, 1)), np.array([1.0]))

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            solve_r_pmtn_cmax(np.ones((1, 1)), np.array([-1.0]))


class TestDecomposition:
    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_valid_timetable(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 5))
        n = int(rng.integers(1, 7))
        inst = stochastic_instance(n, m, rng=rng)
        lengths = inst.sample_lengths(rng)
        c, X = solve_r_pmtn_cmax(inst.speeds, lengths)
        tt = decompose_timetable(X, c)
        tt.validate()
        # Makespan preserved and all work delivered.
        assert tt.makespan == pytest.approx(c)
        delivered = tt.work_delivered(inst.speeds)
        target = (X * inst.speeds).sum(axis=0)
        assert np.allclose(delivered, target, rtol=1e-6, atol=1e-6)

    def test_no_job_on_two_machines(self):
        speeds = np.ones((3, 3))
        lengths = np.ones(3)
        c, X = solve_r_pmtn_cmax(speeds, lengths)
        tt = decompose_timetable(X, c)
        tt.validate()  # raises if a job is doubled in a segment

    def test_empty(self):
        tt = decompose_timetable(np.zeros((2, 2)), 0.0)
        assert tt.makespan == 0.0
        assert tt.segments == ()

    def test_rejects_oversized_matrix(self):
        with pytest.raises(ReproError, match="exceed"):
            decompose_timetable(np.array([[5.0]]), 1.0)


class TestExecuteTimetable:
    def test_exact_completion_time(self):
        from repro.stochastic.lawler_labetoulle import PreemptiveTimetable

        tt = PreemptiveTimetable(segments=((2.0, (0,)),), makespan=2.0)
        speeds = np.array([[1.5]])
        out = execute_timetable(tt, speeds, np.array([1.5]))
        assert out.completion_offsets[0] == pytest.approx(1.0)
        assert out.remaining_work[0] == 0.0
        assert out.elapsed == pytest.approx(1.0)

    def test_unfinished_work_carries(self):
        from repro.stochastic.lawler_labetoulle import PreemptiveTimetable

        tt = PreemptiveTimetable(segments=((1.0, (0,)),), makespan=1.0)
        out = execute_timetable(tt, np.array([[1.0]]), np.array([3.0]))
        assert np.isinf(out.completion_offsets[0])
        assert out.remaining_work[0] == pytest.approx(2.0)
        assert out.elapsed == pytest.approx(1.0)

    def test_completed_jobs_skipped(self):
        from repro.stochastic.lawler_labetoulle import PreemptiveTimetable

        tt = PreemptiveTimetable(segments=((1.0, (0,)),), makespan=1.0)
        out = execute_timetable(tt, np.array([[1.0]]), np.array([0.0]))
        assert out.elapsed == 0.0


class TestLST:
    def test_assignment_valid(self):
        inst = stochastic_instance(12, 4, rng=0)
        lengths = inst.mean_lengths()
        assignment, makespan = solve_r_cmax_lst(inst.speeds, lengths)
        assert assignment.shape == (12,)
        assert (assignment >= 0).all() and (assignment < 4).all()
        # Recompute loads; makespan must match.
        ptimes = lengths[None, :] / inst.speeds
        loads = np.zeros(4)
        for j in range(12):
            loads[assignment[j]] += ptimes[assignment[j], j]
        assert loads.max() == pytest.approx(makespan)

    def test_two_approx_bound(self):
        inst = stochastic_instance(15, 4, rng=1)
        lengths = inst.mean_lengths()
        _, makespan = solve_r_cmax_lst(inst.speeds, lengths)
        c_pmtn, _ = solve_r_pmtn_cmax(inst.speeds, lengths)
        # Preemptive optimum lower-bounds R||Cmax optimum; LST <= 2(1+eps) OPT.
        assert makespan <= 2.05 * max(
            c_pmtn, (lengths / inst.speeds.max(axis=0)).max()
        ) * 1.5 + 1e-9

    def test_feasible_assignment_threshold(self):
        speeds = np.array([[1.0, 1.0]])
        ptimes = np.array([[1.0, 1.0]])
        out = lst_feasible_assignment(ptimes, 2.0)
        assert out is not None
        assert out.tolist() == [0, 0]

    def test_infeasible_threshold(self):
        ptimes = np.array([[1.0, 1.0]])
        assert lst_feasible_assignment(ptimes, 0.5) is None


class TestSTCITrials:
    def test_round_count(self):
        assert stochastic_round_count(2) == 3
        assert stochastic_round_count(4) == 4
        assert stochastic_round_count(16) == 5

    def test_completes_all_work(self):
        inst = stochastic_instance(8, 3, rng=2)
        p = inst.sample_lengths(np.random.default_rng(0))
        tr = stc_i_trial(inst, p)
        assert tr.makespan > 0
        assert tr.rounds_used >= 1

    def test_restart_variant(self):
        inst = stochastic_instance(8, 3, rng=3)
        p = inst.sample_lengths(np.random.default_rng(1))
        tr = stc_i_trial(inst, p, variant="restart")
        assert tr.makespan > 0

    def test_rejects_bad_variant(self):
        inst = stochastic_instance(3, 2, rng=4)
        with pytest.raises(ValueError):
            stc_i_trial(inst, inst.mean_lengths(), variant="teleport")

    def test_fallback_on_tiny_round_budget(self):
        inst = stochastic_instance(6, 2, rng=5)
        p = inst.sample_lengths(np.random.default_rng(2)) * 10
        tr = stc_i_trial(inst, p, n_rounds=1)
        assert tr.fallback or tr.makespan > 0

    def test_makespan_at_least_realized_optimum(self):
        inst = stochastic_instance(6, 3, rng=6)
        rng = np.random.default_rng(3)
        for _ in range(5):
            p = inst.sample_lengths(rng)
            tr = stc_i_trial(inst, p)
            assert tr.makespan >= realized_preemptive_optimum(inst, p) * (1 - 1e-6)

    def test_serial_baseline(self):
        inst = StochasticInstance(np.array([1.0, 1.0]), np.array([[1.0, 2.0]]))
        tr = serial_fastest_trial(inst, np.array([2.0, 4.0]))
        assert tr.makespan == pytest.approx(2.0 + 2.0)

    def test_static_mean_baseline(self):
        inst = stochastic_instance(6, 3, rng=7)
        p = inst.sample_lengths(np.random.default_rng(4))
        tr = static_mean_trial(inst, p)
        assert tr.makespan > 0

    def test_estimator_shapes(self):
        inst = stochastic_instance(5, 2, rng=8)
        stats, lbs = estimate_stochastic(inst, stc_i_trial, 6, rng=9)
        assert stats.n_trials == 6
        assert lbs.n_trials == 6
        assert (stats.samples >= lbs.samples * (1 - 1e-6)).all()
