"""The request server: routing, HTTP loopback, concurrency, shutdown."""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import Scenario, SimConfig, list_policies, simulate
from repro.loadgen import default_simulate_spec
from repro.server import (
    HttpError,
    SchedulingService,
    SerialExecutor,
    WarmPoolExecutor,
    serve_background,
)

SCENARIO = {"shape": "independent", "n_jobs": 8, "n_machines": 3,
            "model": "uniform", "seed": 7}
CONFIG = {"n_trials": 8, "seed": 3}


def _simulate_body(**overrides) -> dict:
    body = {"scenario": dict(SCENARIO), "policy": "greedy",
            "config": dict(CONFIG)}
    body.update(overrides)
    return body


class TestSchedulingServiceRouting:
    """Transport-independent handlers, exercised without any sockets."""

    @pytest.fixture()
    def service(self):
        return SchedulingService(SerialExecutor())

    def test_healthz_counters_and_executor_stats(self, service):
        status, payload = service.handle("GET", "/healthz", None)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["served"] == 0
        assert payload["executor"]["kind"] == "serial"
        assert "solve_cache" in payload["executor"]

    def test_policies_lists_the_registry(self, service):
        status, payload = service.handle("GET", "/policies", None)
        assert status == 200
        assert payload["n"] == len(list_policies())
        names = {row["name"] for row in payload["policies"]}
        assert "greedy" in names

    def test_simulate_round_trip_matches_in_process(self, service):
        status, payload = service.handle(
            "POST", "/simulate", _simulate_body(include_samples=True)
        )
        assert status == 200
        direct = simulate(Scenario.from_dict(SCENARIO), "greedy",
                          SimConfig.from_dict(CONFIG))
        assert payload["policy"] == "greedy"
        assert payload["mean"] == direct.mean
        assert payload["samples"] == direct.stats.samples.tolist()
        assert payload["n_trials"] == 8
        assert payload["ratio"] >= 1.0 - 1e-12

    def test_simulate_response_is_summary_sized_by_default(self, service):
        _status, payload = service.handle("POST", "/simulate", _simulate_body())
        assert "samples" not in payload
        assert "per_job" not in payload

    def test_simulate_per_job_statistics(self, service):
        _status, payload = service.handle(
            "POST", "/simulate", _simulate_body(per_job=True)
        )
        assert payload["per_job"]["n_jobs"] == SCENARIO["n_jobs"]

    def test_grid_with_scenario_list(self, service):
        body = {
            "scenarios": [SCENARIO, dict(SCENARIO, seed=8)],
            "policies": ["greedy", "random"],
            "config": CONFIG,
        }
        status, payload = service.handle("POST", "/grid", body)
        assert status == 200
        assert payload["n"] == 4  # scenario-major: 2 scenarios x 2 policies
        assert [r["policy"] for r in payload["reports"]] == [
            "greedy", "random", "greedy", "random"
        ]

    def test_grid_with_declarative_grid(self, service):
        body = {
            "grid": {
                "base": {"shape": "independent", "n_machines": 2,
                         "model": "uniform", "seed": 1},
                "axes": {"n_jobs": [5, 6]},
            },
            "policies": "greedy",
            "config": CONFIG,
        }
        status, payload = service.handle("POST", "/grid", body)
        assert status == 200
        assert payload["n"] == 2
        assert {r["scenario"]["n_jobs"] for r in payload["reports"]} == {5, 6}

    @pytest.mark.parametrize(
        "method, path, body, fragment",
        [
            ("GET", "/nope", None, "no such endpoint"),
            ("POST", "/healthz", None, "expects GET"),
            ("GET", "/simulate", None, "expects POST"),
            ("POST", "/simulate", {}, "missing required field 'scenario'"),
            ("POST", "/simulate", {"scenario": 3}, "must be a JSON object"),
            ("POST", "/simulate", {"scenario": {"shape": "klein-bottle"}},
             "invalid scenario"),
            ("POST", "/simulate", _simulate_body(policy=7),
             "policy must be a registry name"),
            ("POST", "/simulate", _simulate_body(policy="not-a-policy"),
             "not-a-policy"),
            ("POST", "/simulate", _simulate_body(config={"n_trials": -2}),
             "invalid config"),
            ("POST", "/grid", {}, "missing required field 'grid'"),
            ("POST", "/grid", {"scenarios": []}, "non-empty list"),
            ("POST", "/grid", {"scenarios": [SCENARIO], "policies": [1]},
             "policies must be a list"),
        ],
    )
    def test_client_errors_are_400s(self, service, method, path, body,
                                    fragment):
        with pytest.raises(HttpError) as err:
            service.handle(method, path, body)
        assert err.value.status in (400, 404, 405)
        assert fragment in err.value.message


class _Client:
    """Minimal synchronous HTTP client against a ServerHandle."""

    def __init__(self, handle):
        self.handle = handle

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection(
            self.handle.host, self.handle.port, timeout=30
        )
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read() or b"{}")
        finally:
            conn.close()


class TestHttpLoopback:
    @pytest.fixture(scope="class")
    def handle(self):
        with SerialExecutor() as ex, serve_background(ex) as handle:
            yield handle

    @pytest.fixture()
    def client(self, handle):
        return _Client(handle)

    def test_healthz_over_http(self, client):
        status, payload = client.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_simulate_over_http_matches_in_process(self, client):
        status, payload = client.request(
            "POST", "/simulate", _simulate_body(include_samples=True)
        )
        assert status == 200
        direct = simulate(Scenario.from_dict(SCENARIO), "greedy",
                          SimConfig.from_dict(CONFIG))
        assert payload["samples"] == direct.stats.samples.tolist()

    def test_unknown_path_is_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_bad_json_body_is_400(self, handle):
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        try:
            conn.request("POST", "/simulate", body="{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert "not JSON" in json.loads(resp.read())["error"]
        finally:
            conn.close()

    def test_malformed_request_line_is_400(self, handle):
        with socket.create_connection((handle.host, handle.port),
                                      timeout=10) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_is_413(self, handle):
        with socket.create_connection((handle.host, handle.port),
                                      timeout=10) as sock:
            sock.sendall(
                b"POST /simulate HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
            response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.1 413 ")

    def test_keep_alive_serves_multiple_requests(self, handle):
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()

    def test_concurrent_requests_interleave(self, handle):
        spec = json.loads(default_simulate_spec(n_trials=8).body)
        results = []
        client = _Client(handle)

        def worker():
            results.append(client.request("POST", "/simulate", spec))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(status == 200 for status, _ in results)
        means = {payload["mean"] for _, payload in results}
        assert len(means) == 1  # identical requests, identical answers

    def test_healthz_reflects_traffic(self, client, handle):
        client.request("GET", "/healthz")
        _status, payload = client.request("GET", "/healthz")
        assert payload["served"] >= 2
        assert payload["errors"] >= 2  # the 4xx probes above were counted


class TestWarmPoolOverHttp:
    def test_warm_pool_reuse_is_visible_in_healthz(self):
        with WarmPoolExecutor(n_workers=1, solve_cache_entries=64) as ex:
            ex.prewarm()
            with serve_background(ex) as handle:
                client = _Client(handle)
                # "sem" solves LP round schedules, so the repeat request
                # can hit the warm worker's solve cache.
                body = _simulate_body(policy="sem")
                first = client.request("POST", "/simulate", body)
                _status, health = client.request("GET", "/healthz")
                before = health["executor"]["worker_solve_cache"]
                second = client.request("POST", "/simulate", body)
                _status, health = client.request("GET", "/healthz")
                after = health["executor"]["worker_solve_cache"]
        assert first[0] == 200 and second[0] == 200
        assert first[1]["mean"] == second[1]["mean"]
        # The repeat request hit the warm worker's solve cache, and the
        # pool survived the whole conversation without a respawn.
        assert after["hits"] > before["hits"]
        assert health["executor"]["pools_built"] == 1
        assert health["executor"]["warm"] is True
        # Transport never changes samples: the pool-served answer is the
        # serial answer.
        direct = simulate(Scenario.from_dict(SCENARIO), "sem",
                          SimConfig.from_dict(CONFIG))
        assert first[1]["mean"] == direct.mean


class TestGracefulShutdown:
    def test_stop_drains_in_flight_requests(self):
        with SerialExecutor() as ex:
            handle = serve_background(ex, drain_timeout=30.0)
            slow_body = _simulate_body(config={"n_trials": 200, "seed": 3})
            outcome = {}

            def slow_request():
                client = _Client(handle)
                t0 = time.monotonic()
                outcome["response"] = client.request(
                    "POST", "/simulate", slow_body
                )
                outcome["elapsed"] = time.monotonic() - t0

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.15)  # let the request reach the handler
            handle.stop()
            thread.join(timeout=30)
            assert not thread.is_alive()
        status, payload = outcome["response"]
        assert status == 200  # drained, not dropped
        assert payload["n_trials"] == 200

    def test_stopped_server_refuses_new_connections(self):
        with SerialExecutor() as ex:
            handle = serve_background(ex)
            host, port = handle.host, handle.port
            handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()

    def test_stop_is_idempotent(self):
        with SerialExecutor() as ex:
            handle = serve_background(ex)
            handle.stop()
            handle.stop()  # second stop: clean no-op
