"""Tests for baseline policies and the exact optimal DP."""

import numpy as np
import pytest

from repro.baselines import (
    BestMachinePolicy,
    GreedyLRPolicy,
    RandomAssignmentPolicy,
    RoundRobinPolicy,
    SerialAllMachinesPolicy,
    enumerate_remaining_sets,
    exact_policy_expected_makespan,
    optimal_expected_makespan,
)
from repro.errors import ReproError
from repro.instance import PrecedenceGraph, SUUInstance, chain_instance, independent_instance
from repro.sim import estimate_expected_makespan, run_policy

ALL_BASELINES = [
    GreedyLRPolicy,
    SerialAllMachinesPolicy,
    RoundRobinPolicy,
    BestMachinePolicy,
    RandomAssignmentPolicy,
]


class TestBaselinePolicies:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_complete_independent(self, factory, small_independent):
        res = run_policy(small_independent, factory(), rng=1, max_steps=200_000)
        assert res.makespan >= 1

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_complete_chains(self, factory, small_chains):
        res = run_policy(small_chains, factory(), rng=2, max_steps=200_000)
        for u, v in small_chains.graph.edges:
            assert res.completion_times[u] < res.completion_times[v]

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_complete_tree(self, factory, small_tree):
        res = run_policy(small_tree, factory(), rng=3, max_steps=200_000)
        assert res.makespan >= 1

    def test_serial_runs_one_job_at_a_time(self):
        inst = SUUInstance(np.zeros((3, 4)))
        res = run_policy(inst, SerialAllMachinesPolicy(), rng=0)
        assert res.makespan == 4  # deterministic completion, one per step

    def test_greedy_prefers_better_machine_assignment(self):
        # One job; two machines with very different quality: greedy gain
        # rule must assign both (any mass helps), job completes fast.
        inst = SUUInstance(np.array([[0.1], [0.9]]))
        res = run_policy(inst, GreedyLRPolicy(), rng=1)
        assert res.makespan <= 5

    def test_greedy_spreads_over_jobs(self):
        # Two identical jobs, two identical machines: after machine 0 takes
        # job 0, machine 1's marginal gain is higher on job 1.
        inst = SUUInstance(np.full((2, 2), 0.5))
        pol = GreedyLRPolicy()
        pol.start(inst, np.random.default_rng(0))
        from repro.schedule.base import SimulationState

        state = SimulationState(
            t=0,
            remaining=np.ones(2, dtype=bool),
            eligible=np.ones(2, dtype=bool),
            mass_accrued=np.zeros(2),
        )
        row = pol.assign(state)
        assert sorted(row.tolist()) == [0, 1]

    def test_best_machine_ignores_coordination(self):
        # All machines share the same best job -> they pile on.
        q = np.array([[0.1, 0.8], [0.1, 0.8]])
        inst = SUUInstance(q)
        pol = BestMachinePolicy()
        pol.start(inst, np.random.default_rng(0))
        from repro.schedule.base import SimulationState

        state = SimulationState(
            t=0,
            remaining=np.ones(2, dtype=bool),
            eligible=np.ones(2, dtype=bool),
            mass_accrued=np.zeros(2),
        )
        assert pol.assign(state).tolist() == [0, 0]

    def test_round_robin_rotates(self):
        inst = SUUInstance(np.full((2, 4), 0.5))
        pol = RoundRobinPolicy()
        pol.start(inst, np.random.default_rng(0))
        from repro.schedule.base import SimulationState

        s0 = SimulationState(
            t=0, remaining=np.ones(4, bool), eligible=np.ones(4, bool),
            mass_accrued=np.zeros(4),
        )
        s1 = SimulationState(
            t=1, remaining=np.ones(4, bool), eligible=np.ones(4, bool),
            mass_accrued=np.zeros(4),
        )
        assert pol.assign(s0).tolist() == [0, 1]
        assert pol.assign(s1).tolist() == [1, 2]


class TestEnumerateRemainingSets:
    def test_independent_all_subsets(self):
        inst = independent_instance(4, 2, rng=0)
        assert len(enumerate_remaining_sets(inst)) == 16

    def test_chain_linear_states(self):
        # Chain 0 -> 1 -> 2: remaining sets are suffixes: {}, {2}, {1,2}, {0,1,2}.
        graph = PrecedenceGraph(3, [(0, 1), (1, 2)])
        inst = SUUInstance(np.full((1, 3), 0.5), graph)
        states = enumerate_remaining_sets(inst)
        assert sorted(states) == [0b000, 0b100, 0b110, 0b111]

    def test_job_cap(self):
        inst = independent_instance(17, 2, rng=1)
        with pytest.raises(ReproError, match="at most"):
            enumerate_remaining_sets(inst)


class TestOptimalDP:
    def test_single_job_geometric(self):
        inst = SUUInstance(np.array([[0.5]]))
        assert optimal_expected_makespan(inst).value == pytest.approx(2.0)

    def test_two_machines_one_job(self):
        inst = SUUInstance(np.array([[0.5], [0.5]]))
        assert optimal_expected_makespan(inst).value == pytest.approx(4.0 / 3.0)

    def test_two_jobs_one_machine(self):
        # Serial geometrics: E = 2 + 2.
        inst = SUUInstance(np.array([[0.5, 0.5]]))
        assert optimal_expected_makespan(inst).value == pytest.approx(4.0)

    def test_chain_of_two(self):
        graph = PrecedenceGraph(2, [(0, 1)])
        inst = SUUInstance(np.array([[0.5, 0.5]]), graph)
        assert optimal_expected_makespan(inst).value == pytest.approx(4.0)

    def test_deterministic_jobs(self):
        inst = SUUInstance(np.zeros((1, 3)))
        assert optimal_expected_makespan(inst).value == pytest.approx(3.0)

    def test_parallel_better_than_serial(self):
        # Two jobs, two machines: running them in parallel beats serial.
        inst = SUUInstance(np.full((2, 2), 0.5))
        opt = optimal_expected_makespan(inst).value
        serial = SerialAllMachinesPolicy()
        serial.start(inst, np.random.default_rng(0))
        serial_val = exact_policy_expected_makespan(inst, serial)
        assert opt <= serial_val + 1e-9

    def test_optimal_leq_all_baselines_exact(self):
        inst = independent_instance(5, 2, "uniform", rng=2)
        opt = optimal_expected_makespan(inst).value
        for factory in (GreedyLRPolicy, SerialAllMachinesPolicy, BestMachinePolicy):
            pol = factory()
            pol.start(inst, np.random.default_rng(0))
            assert opt <= exact_policy_expected_makespan(inst, pol) + 1e-9

    def test_policy_table_covers_states(self):
        inst = independent_instance(4, 2, "uniform", rng=3)
        result = optimal_expected_makespan(inst)
        assert len(result.policy) == result.n_states - 1  # all but empty

    def test_matches_monte_carlo_greedy(self):
        inst = independent_instance(5, 2, "uniform", rng=4)
        pol = GreedyLRPolicy()
        pol.start(inst, np.random.default_rng(0))
        exact = exact_policy_expected_makespan(inst, pol)
        mc = estimate_expected_makespan(inst, GreedyLRPolicy, 1200, rng=5)
        lo, hi = mc.ci95
        assert lo - 0.2 <= exact <= hi + 0.2

    def test_exact_policy_detects_no_progress(self):
        from repro.schedule.base import IDLE, Policy

        class Idler(Policy):
            name = "idler"

            def assign(self, state):
                return np.full(1, IDLE, dtype=np.int64)

        inst = SUUInstance(np.array([[0.5]]))
        with pytest.raises(ReproError, match="progress"):
            exact_policy_expected_makespan(inst, Idler())

    def test_chain_instance_dp(self):
        inst = chain_instance(5, 2, 2, "uniform", rng=6)
        result = optimal_expected_makespan(inst)
        assert result.value > 0
        assert result.n_states < 32  # precedence prunes the lattice
