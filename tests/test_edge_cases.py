"""Edge-case and stress tests across modules.

Degenerate shapes (1 job, 1 machine, m >> n, n >> m), extreme probabilities
(q = 0, q -> 1), the non-polynomial-t_LP2 unit trick, and fallback paths
that ordinary workloads rarely reach.
"""

import numpy as np

from repro.analysis.bounds import lower_bound
from repro.core.lp1 import solve_lp1
from repro.core.lp2 import round_lp2, solve_lp2
from repro.core.rounding import round_assignment
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_obl import SUUIOblPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.errors import SimulationHorizonError
from repro.instance import PrecedenceGraph, SUUInstance
from repro.instance.chains import extract_chains
from repro.sim import run_policy
from repro.util.logmass import LOGMASS_CAP


class TestDegenerateShapes:
    def test_one_job_one_machine(self):
        inst = SUUInstance(np.array([[0.5]]))
        for factory in (SUUIOblPolicy, SUUISemPolicy, SUUCPolicy):
            res = run_policy(inst, factory(), rng=0, max_steps=100_000)
            assert res.makespan >= 1

    def test_many_machines_one_job(self):
        inst = SUUInstance(np.full((12, 1), 0.9))
        res = run_policy(inst, SUUISemPolicy(), rng=1, max_steps=100_000)
        assert res.makespan >= 1

    def test_many_jobs_one_machine(self):
        inst = SUUInstance(np.full((1, 12), 0.3))
        res = run_policy(inst, SUUISemPolicy(), rng=2, max_steps=100_000)
        assert res.makespan >= 12  # one machine, one job per step at best

    def test_single_long_chain(self):
        n = 15
        graph = PrecedenceGraph(n, [(k, k + 1) for k in range(n - 1)])
        inst = SUUInstance(np.full((3, n), 0.5), graph)
        res = run_policy(inst, SUUCPolicy(), rng=3, max_steps=200_000)
        assert res.makespan >= n


class TestExtremeProbabilities:
    def test_all_deterministic(self):
        inst = SUUInstance(np.zeros((2, 6)))
        res = run_policy(inst, SUUISemPolicy(), rng=4, max_steps=10_000)
        # Every job completes at its first scheduled step, so one pass of
        # the round-1 schedule (length <= ceil(6 t*) = 18) suffices.
        assert res.makespan <= 19
        assert res.busy_machine_steps == 6  # exactly one real step per job

    def test_mixed_zero_and_one(self):
        # One perfect machine, one useless machine.
        q = np.vstack([np.zeros(4), np.ones(4)])
        inst = SUUInstance(q)
        res = run_policy(inst, SUUISemPolicy(), rng=5, max_steps=10_000)
        assert res.makespan <= 20

    def test_logmass_cap_respected_in_lp(self):
        inst = SUUInstance(np.array([[0.0, 0.5]]))
        assert inst.ell[0, 0] == LOGMASS_CAP
        rel = solve_lp1(inst, target=0.5)
        rounded = round_assignment(rel)
        assert rounded.load >= 1

    def test_near_one_probabilities(self):
        # Every machine terrible: LP masses tiny, assignments huge but finite.
        inst = SUUInstance(np.full((2, 3), 0.99))
        rel = solve_lp1(inst, target=0.5)
        assert np.isfinite(rel.t_star)
        rounded = round_assignment(rel)
        mass = rounded.mass_per_job(rel.ell_capped)
        assert (mass[list(rel.jobs)] >= 0.5 * (1 - 1e-6)).all()


class TestSemFallbackPaths:
    def test_serial_fallback_completes_exactly(self):
        # Deterministic machines + zero rounds: pure serial fallback.
        inst = SUUInstance(np.zeros((5, 3)))
        pol = SUUISemPolicy(n_rounds=0)
        res = run_policy(inst, pol, rng=6, max_steps=1_000)
        assert pol._mode == "serial"
        assert res.makespan == 3

    def test_repeat_fallback_mode_entered(self):
        # m < n and jobs that essentially never complete in round 1's
        # budget: with n_rounds=1 the policy must enter repeat_last.
        inst = SUUInstance(np.full((2, 8), 0.97))
        pol = SUUISemPolicy(n_rounds=1)
        try:
            run_policy(inst, pol, rng=7, max_steps=3_000)
        except SimulationHorizonError:
            pass  # completion not required; mode entry is the point
        assert pol._mode in ("repeat_last", "rounds")


class TestNonPolynomialUnitTrick:
    def _hard_chain_instance(self):
        # Two jobs in a chain, one machine with q ~ 1: t* >> n*m forces the
        # Delta-unit rounding path in SUU-C.
        graph = PrecedenceGraph(2, [(0, 1)])
        return SUUInstance(np.full((1, 2), 0.999), graph)

    def test_unit_exceeds_one(self):
        inst = self._hard_chain_instance()
        pol = SUUCPolicy()
        pol.start(inst, np.random.default_rng(0))
        assert pol.stats["unit"] > 1
        assert pol.stats["t_star"] > inst.n_jobs * inst.n_machines

    def test_delays_are_unit_multiples(self):
        inst = self._hard_chain_instance()
        pol = SUUCPolicy()
        pol.start(inst, np.random.default_rng(1))
        unit = pol.stats["unit"]
        assert (pol._delays % unit == 0).all()

    def test_execution_emits_solo_preludes(self):
        inst = self._hard_chain_instance()
        pol = SUUCPolicy(enable_delays=False, enable_segments=False)
        pol.start(inst, np.random.default_rng(2))
        from repro.schedule.pseudo import JobBlock

        blocks = [
            item
            for prog in pol._programs
            for item in prog.items
            if isinstance(item, JobBlock)
        ]
        # Preludes exist iff some step count wasn't a unit multiple.
        has_prelude = any(b.prelude for b in blocks)
        from repro.core.lp2 import round_lp2, solve_lp2

        rel = solve_lp2(inst, extract_chains(inst.graph))
        rounded = round_lp2(rel)
        odd = ((rounded.x % pol.stats["unit"]) > 0) & (rounded.x > 0)
        assert has_prelude == bool(odd.any())


class TestChainLengthDominatedLP2:
    def test_long_chain_many_machines(self):
        # 1 chain, lots of machines: chain-length constraint dominates.
        graph = PrecedenceGraph(6, [(k, k + 1) for k in range(5)])
        inst = SUUInstance(np.full((10, 6), 0.5), graph)
        rel = solve_lp2(inst, extract_chains(inst.graph))
        assert rel.t_star >= 6 - 1e-6
        rounded = round_lp2(rel)
        assert rounded.load >= 1

    def test_bound_uses_lp2_for_chains(self):
        graph = PrecedenceGraph(6, [(k, k + 1) for k in range(5)])
        inst = SUUInstance(np.full((10, 6), 0.5), graph)
        # Critical path: 6 jobs x E[geom] each with all 10 machines ~ 6.
        assert lower_bound(inst) >= 6.0 - 1e-6
