"""Coverage for stochastic-instance serialization and pseudoschedule helpers."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.instance import StochasticInstance, stochastic_instance
from repro.instance.io import stochastic_from_dict, stochastic_to_dict
from repro.schedule import IntegralAssignment, build_chain_programs, flattened_length
from repro.schedule.pseudo import congestion_profile


class TestStochasticIO:
    def test_roundtrip(self):
        inst = stochastic_instance(6, 3, rng=0)
        back = stochastic_from_dict(stochastic_to_dict(inst))
        assert np.array_equal(back.rates, inst.rates)
        assert np.array_equal(back.speeds, inst.speeds)

    def test_rejects_bad_format(self):
        with pytest.raises(InvalidInstanceError):
            stochastic_from_dict({"format": "nope"})


class TestStochasticValidation:
    def test_rejects_2d_rates(self):
        with pytest.raises(InvalidInstanceError):
            StochasticInstance(np.ones((2, 2)), np.ones((2, 2)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            StochasticInstance(np.ones(3), np.ones((2, 4)))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(InvalidInstanceError):
            StochasticInstance(np.array([0.0]), np.ones((1, 1)))

    def test_rejects_negative_speed(self):
        with pytest.raises(InvalidInstanceError):
            StochasticInstance(np.array([1.0]), np.array([[-1.0]]))

    def test_rejects_speedless_job(self):
        with pytest.raises(InvalidInstanceError):
            StochasticInstance(np.array([1.0, 1.0]), np.array([[1.0, 0.0]]))

    def test_arrays_readonly(self):
        inst = stochastic_instance(3, 2, rng=1)
        with pytest.raises(ValueError):
            inst.rates[0] = 5.0
        with pytest.raises(ValueError):
            inst.speeds[0, 0] = 5.0


class TestPseudoHelpers:
    def test_flattened_length_zero(self):
        assert flattened_length(np.zeros(0, dtype=np.int64)) == 0

    def test_flattened_length_sums(self):
        assert flattened_length(np.array([2, 0, 3])) == 5

    def test_empty_program_congestion(self):
        x = np.zeros((2, 1), dtype=np.int64)
        x[0, 0] = 1
        a = IntegralAssignment(x=x, jobs=(0,), target=1.0)
        programs = build_chain_programs([[0]], a)
        prof = congestion_profile(programs, np.array([0]), 2)
        assert prof.tolist() == [1]

    def test_gamma_none_means_no_pauses(self):
        x = np.zeros((1, 2), dtype=np.int64)
        x[0, 0] = 100
        x[0, 1] = 1
        a = IntegralAssignment(x=x, jobs=(0, 1), target=1.0)
        programs = build_chain_programs([[0, 1]], a, gamma=None)
        from repro.schedule.pseudo import JobBlock

        assert all(isinstance(item, JobBlock) for item in programs[0].items)
