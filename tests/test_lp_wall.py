"""Collapsing the LP wall: assembly identity, survivor reuse, coalescing.

Four layers of the LP-wall work are pinned here:

* the vectorized CSR assembly of (LP1)/(LP2) is *byte-identical* to the
  per-coefficient dict builders it replaced (inline oracles below);
* ``lp_reuse="exact"`` (and the default) stays bit-identical to a cold
  cache, even after a ``"subset"`` run has populated the shared cache;
* ``lp_reuse="subset"`` collapses the distinct-solve count >= 5x on an
  LP-wall instance while the makespan distribution stays statistically
  indistinguishable, and its derived schedules preserve per-job capped
  mass exactly while respecting the (1 + eps) length gate;
* the counters (``lp_solves`` / ``reuse_hits`` / ``coalesced_batches``)
  surface through ``simulate()`` reports and ``GET /healthz``.
"""

import numpy as np
import pytest

from repro.api import SimConfig, simulate
from repro.core.lp1 import MASS_EPS, cached_capped_logmass, solve_lp1
from repro.core.lp2 import solve_lp2
from repro.core.phased import (
    RoundScheduleCache,
    clear_solve_cache,
    lp_reuse_context,
    lp_reuse_eps,
    resolve_lp_reuse,
    solve_cache_stats,
)
from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.rounding import PAPER_SCALE
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.errors import InvalidScenarioError
from repro.instance import lpwall_instance
from repro.lp.model import LinearProgram
from repro.lp.stats import lp_stats_snapshot, reset_lp_stats
from repro.schedule.base import IDLE
from repro.sim.batch import run_policy_batch

#: Counter names the LP-wall instrumentation must surface everywhere.
LP_COUNTER_KEYS = (
    "lp_solves",
    "assembly_seconds",
    "reuse_hits",
    "coalesced_batches",
    "coalesced_solves",
)


# ---------------------------------------------------------------------------
# Vectorized assembly is byte-identical to the per-coefficient dict builders.


def _oracle_lp1(instance, jobs, target):
    """(LP1) via the per-row dict API — the pre-vectorization builder.

    Same variable numbering as :func:`solve_lp1`: ``t`` first, then one
    ``x_ij`` per usable (machine, job) pair, jobs ascending and machines
    ascending within each job.
    """
    m = instance.n_machines
    ell = cached_capped_logmass(instance, target)
    lp = LinearProgram()
    t = lp.add_variable(objective=1.0)
    x_vars: dict[tuple[int, int], int] = {}
    for j in jobs:
        for i in range(m):
            if ell[i, j] > MASS_EPS:
                x_vars[(i, j)] = lp.add_variable()
    for j in jobs:
        lp.add_ge(
            {x_vars[(i, j)]: ell[i, j] for i in range(m) if (i, j) in x_vars},
            float(target),
        )
    for i in range(m):
        row = {x_vars[(i, j)]: 1.0 for j in jobs if (i, j) in x_vars}
        if row:
            row[t] = -1.0
            lp.add_le(row, 0.0)
    sol = lp.solve()
    x = np.zeros((m, instance.n_jobs))
    for (i, j), v in x_vars.items():
        x[i, j] = max(0.0, sol.x[v]) + 0.0
    return x, float(sol.value)


def _oracle_lp2(instance, chains):
    """(LP2) via the per-row dict API, numbering as :func:`solve_lp2`."""
    m, n = instance.n_machines, instance.n_jobs
    covered = [j for chain in chains for j in chain]
    ell = cached_capped_logmass(instance, 1.0)
    lp = LinearProgram()
    t = lp.add_variable(objective=1.0)
    d_vars = {j: lp.add_variable(lb=1.0) for j in covered}
    x_vars: dict[tuple[int, int], int] = {}
    for j in covered:
        for i in range(m):
            if ell[i, j] > MASS_EPS:
                x_vars[(i, j)] = lp.add_variable()
    for j in covered:
        lp.add_ge(
            {x_vars[(i, j)]: ell[i, j] for i in range(m) if (i, j) in x_vars}, 1.0
        )
    for i in range(m):
        row = {x_vars[(i, j)]: 1.0 for j in covered if (i, j) in x_vars}
        if row:
            row[t] = -1.0
            lp.add_le(row, 0.0)
    for chain in chains:
        row = {d_vars[j]: 1.0 for j in chain}
        row[t] = -1.0
        lp.add_le(row, 0.0)
    for (i, j), v in x_vars.items():
        lp.add_le({v: 1.0, d_vars[j]: -1.0}, 0.0)
    sol = lp.solve()
    x = np.zeros((m, n))
    for (i, j), v in x_vars.items():
        x[i, j] = max(0.0, sol.x[v]) + 0.0
    d = np.zeros(n)
    for j, v in d_vars.items():
        d[j] = max(1.0, sol.x[v])
    return x, d, float(sol.value)


class TestVectorizedAssemblyIdentity:
    def test_lp1_matches_dict_builder_byte_for_byte(self):
        instance = lpwall_instance(n_jobs=18, n_machines=3, rng=2)
        for jobs, target in [
            (list(range(18)), 1.0),
            ([0, 3, 4, 7, 11, 16], 2.0),
            ([2, 5], 0.5),
        ]:
            fast = solve_lp1(instance, jobs=jobs, target=target)
            x, t_star = _oracle_lp1(instance, sorted(jobs), target)
            assert fast.x.tobytes() == x.tobytes()
            assert fast.t_star == t_star

    def test_lp2_matches_dict_builder_byte_for_byte(self):
        instance = lpwall_instance(n_jobs=18, n_machines=3, chain_length=3, rng=2)
        chains = [tuple(range(k, k + 3)) for k in range(0, 18, 3)]
        fast = solve_lp2(instance, chains)
        x, d, t_star = _oracle_lp2(instance, chains)
        assert fast.x.tobytes() == x.tobytes()
        assert fast.d.tobytes() == d.tobytes()
        assert fast.t_star == t_star


# ---------------------------------------------------------------------------
# Mode plumbing and validation.


class TestReuseModeResolution:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="lp_reuse"):
            resolve_lp_reuse("bogus")

    def test_env_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_REUSE", raising=False)
        assert resolve_lp_reuse() == "exact"
        monkeypatch.setenv("REPRO_LP_REUSE", "subset")
        assert resolve_lp_reuse() == "subset"
        assert resolve_lp_reuse("exact") == "exact"  # explicit beats env
        monkeypatch.setenv("REPRO_LP_REUSE", "bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve_lp_reuse()

    def test_eps_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_REUSE_EPS", "0.1")
        assert lp_reuse_eps() == 0.1
        for bad in ("-0.1", "1.0", "1.5"):
            monkeypatch.setenv("REPRO_LP_REUSE_EPS", bad)
            with pytest.raises(ValueError, match="eps"):
                lp_reuse_eps()

    def test_context_scopes_the_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_REUSE", raising=False)
        with lp_reuse_context("subset"):
            assert resolve_lp_reuse(None) == "exact"  # env untouched
            from repro.core.phased import active_lp_reuse

            assert active_lp_reuse() == "subset"
        assert resolve_lp_reuse(None) == "exact"

    def test_sim_config_validates_and_resolves(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_REUSE", raising=False)
        with pytest.raises(InvalidScenarioError, match="lp_reuse"):
            SimConfig(lp_reuse="bogus")
        assert SimConfig().resolved_lp_reuse() == "exact"
        assert SimConfig(lp_reuse="subset").resolved_lp_reuse() == "subset"
        monkeypatch.setenv("REPRO_LP_REUSE", "subset")
        assert SimConfig().resolved_lp_reuse() == "subset"


# ---------------------------------------------------------------------------
# Exact mode stays bit-identical; subset mode collapses the solve count.


def _sem_batch(instance, n_trials, **kwargs):
    return run_policy_batch(
        instance,
        SUUISemPolicy,
        n_trials,
        rng=11,
        semantics="suu",
        max_steps=50_000,
        discipline="v2",
        **kwargs,
    )


class TestExactModeBitIdentity:
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    @pytest.mark.parametrize(
        "policy, chain_length, semantics",
        [
            (SUUISemPolicy, None, "suu"),
            (SUUIAdaptiveLPPolicy, None, "suu"),
            (SUUCPolicy, 3, "suu"),
            (SUUTPolicy, 3, "suu_star"),
        ],
    )
    def test_exact_equals_default_byte_for_byte(
        self, policy, chain_length, semantics, discipline
    ):
        instance = lpwall_instance(
            n_jobs=18, n_machines=2, chain_length=chain_length, rng=4
        )

        def run(**kwargs):
            clear_solve_cache()
            return run_policy_batch(
                instance,
                policy,
                24,
                rng=11,
                semantics=semantics,
                max_steps=50_000,
                discipline=discipline,
                **kwargs,
            )

        base = run()
        exact = run(lp_reuse="exact")
        assert base.makespans.tobytes() == exact.makespans.tobytes()

    def test_subset_entries_never_serve_exact_lookups(self):
        # A subset run populates the shared cache with derived schedules
        # (under their own "lp1-round-sub" key prefix) and donor anchors;
        # an exact run on the *same warm cache* must still be bit-identical
        # to a cold-cache run.
        instance = lpwall_instance(n_jobs=24, n_machines=2)
        clear_solve_cache()
        cold = _sem_batch(instance, 64)
        clear_solve_cache()
        _sem_batch(instance, 64, lp_reuse="subset")
        warm = _sem_batch(instance, 64)
        assert warm.makespans.tobytes() == cold.makespans.tobytes()


class TestSubsetReuseCollapse:
    def test_solve_budget_and_statistical_equivalence(self):
        instance = lpwall_instance(n_jobs=48, n_machines=2)
        clear_solve_cache()
        reset_lp_stats()
        exact = _sem_batch(instance, 200, lp_reuse="exact")
        exact_solves = lp_stats_snapshot()["lp_solves"]
        clear_solve_cache()
        reset_lp_stats()
        subset = _sem_batch(instance, 200, lp_reuse="subset")
        stats = lp_stats_snapshot()
        # The wall: exact pays >= one solve per trial entering round 2;
        # subset derives those survivor sets from shared anchors.
        assert exact_solves >= 200
        assert stats["lp_solves"] * 5 <= exact_solves
        assert stats["reuse_hits"] > 0
        assert stats["coalesced_batches"] >= 1
        # Statistically indistinguishable makespans (same RNG tree, so the
        # only drift comes from derived schedule lengths).
        e, s = exact.makespans.mean(), subset.makespans.mean()
        assert abs(s - e) <= 0.05 * e


class TestRestrictProperties:
    def test_restriction_preserves_mass_and_respects_length_gate(self):
        instance = lpwall_instance(n_jobs=32, n_machines=3, rng=7)
        target, eps = 1.0, 0.25
        cache = RoundScheduleCache(instance, PAPER_SCALE)
        donor = cache._solve(target, np.arange(32, dtype=np.int64))
        ell = cached_capped_logmass(instance, target)
        rng = np.random.default_rng(3)
        derived_any = False
        for _ in range(8):
            jobs = np.sort(
                rng.choice(32, size=int(rng.integers(6, 20)), replace=False)
            ).astype(np.int64)
            schedule = cache._restrict(donor, jobs, target, eps)
            if schedule is None:
                continue  # gate-failing restrictions fall back to solves
            derived_any = True
            table = schedule.table
            assert np.isin(table[table != IDLE], jobs).all()
            total = 0
            for j in jobs:
                where = (table == j).sum(axis=0)  # steps per machine
                mass = float((where * ell[:, j]).sum())
                assert mass >= target - 1e-9  # capped mass is exact
                total += int(where.sum())
            ideal = -(-total // instance.n_machines)
            assert table.shape[0] <= (1.0 + eps) * ideal  # length gate
        assert derived_any


# ---------------------------------------------------------------------------
# Counters surface end to end.


class TestCounterSurfacing:
    def test_simulate_report_carries_lp_stats(self):
        instance = lpwall_instance(n_jobs=12, n_machines=2)
        report = simulate(
            instance, SUUISemPolicy, SimConfig(n_trials=4, seed=1, discipline="v2")
        )
        assert report.lp_stats is not None
        for key in LP_COUNTER_KEYS:
            assert key in report.lp_stats
        assert report.lp_stats["lp_solves"] > 0
        assert report.to_dict()["lp"] == report.lp_stats

    def test_solve_cache_stats_fold_in_lp_counters(self):
        stats = solve_cache_stats()
        for key in LP_COUNTER_KEYS:
            assert key in stats

    def test_healthz_surfaces_lp_wall_counters(self):
        from repro.server import SchedulingService, SerialExecutor

        service = SchedulingService(SerialExecutor())
        status, payload = service.handle("GET", "/healthz", None)
        assert status == 200
        solve_cache = payload["executor"]["solve_cache"]
        for key in LP_COUNTER_KEYS:
            assert key in solve_cache
