"""Fallback/diagnostic-path coverage for the chain algorithms.

SUU-C (and SUU-T's per-block SUU-C runs) switch to the trivial serial
``O(n)``-approximation when either high-probability bound is violated:
congestion above ``congestion_limit`` at a superstep build, or the
superstep count passing ``superstep_limit``.  These tests force each
trigger — with ablation-level constants, not pathological instances — and
assert that

* ``stats["fallback"]`` reports the trigger under discipline v1 (per-trial
  scalar replicas) *and* v2 (array cursors), and
* both disciplines take the *same* trigger decisions on the same inputs:
  with injected delays and shared SUU* thresholds the executions agree
  bit for bit (the cross-check harness of ``tests/test_discipline.py``,
  pointed at the triggering configurations).
"""

import numpy as np
import pytest

from repro.core.suu_c import SUUCPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import chain_instance, forest_instance
from repro.schedule.pseudo import draw_delays
from repro.sim import run_policy_batch
from repro.sim.engine import draw_thresholds
from repro.util.rng import ensure_rng

#: Forces the congestion trigger: no random delays and no segmentation, so
#: every chain's blocks pile onto the machines at superstep 0, against a
#: floor-level congestion limit.
CONGESTION_KWARGS = dict(
    enable_delays=False, enable_segments=False, congestion_factor=0.1
)
#: Forces the superstep-limit trigger: the length bound collapses to ~0,
#: so the first completed superstep already exceeds it.
SUPERSTEP_KWARGS = dict(length_factor=1e-6)

TRIGGERS = [("congestion", CONGESTION_KWARGS), ("superstep", SUPERSTEP_KWARGS)]


def chains_inst():
    return chain_instance(20, 2, 10, "uniform", rng=3)


def forest_inst():
    return forest_instance(30, 2, 10, rng=5)


def suu_c_fallbacks(policy, discipline):
    """Per-trial fallback flags, wherever the dispatch path keeps them."""
    if discipline == "v1":
        return [r.stats["fallback"] for r in policy._replicas]
    return [policy.stats["fallback"]]


def suu_t_fallbacks(policy, discipline):
    if discipline == "v1":
        # Replicas hold the final block's SUU-C policy; with trigger
        # constants this low every block falls back, including the last.
        return [r._sub_policy.stats["fallback"] for r in policy._replicas]
    return [cursor.stats["fallback"] for cursor in policy._v2_cursors]


class TestTriggersReported:
    @pytest.mark.parametrize("trigger,kwargs", TRIGGERS)
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_suu_c_reports_fallback(self, trigger, kwargs, discipline):
        policy = SUUCPolicy(**kwargs)
        out = run_policy_batch(
            chains_inst(), policy, 6, rng=5, semantics="suu_star",
            discipline=discipline,
        )
        assert out.vectorized
        assert all(suu_c_fallbacks(policy, discipline)), trigger

    @pytest.mark.parametrize("trigger,kwargs", TRIGGERS)
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_suu_t_reports_fallback(self, trigger, kwargs, discipline):
        policy = SUUTPolicy(**kwargs)
        out = run_policy_batch(
            forest_inst(), policy, 6, rng=5, semantics="suu_star",
            discipline=discipline,
        )
        assert out.vectorized
        flags = suu_t_fallbacks(policy, discipline)
        assert flags and any(flags), trigger

    @pytest.mark.parametrize("trigger,kwargs", TRIGGERS)
    def test_suu_c_scalar_run_reports_fallback(self, trigger, kwargs):
        """The plain scalar engine (no batching) agrees on the trigger."""
        from repro.sim import run_policy

        policy = SUUCPolicy(**kwargs)
        run_policy(chains_inst(), policy, rng=5, semantics="suu_star")
        assert policy.stats["fallback"], trigger

    @pytest.mark.parametrize("kwargs", [dict(), SUPERSTEP_KWARGS])
    def test_disable_fallback_suppresses_trigger(self, kwargs):
        """enable_fallback=False must keep running the pseudoschedule (the
        ablation semantics), never reporting a fallback."""
        policy = SUUCPolicy(enable_fallback=False, **kwargs)
        run_policy_batch(
            chains_inst(), policy, 4, rng=5, semantics="suu_star",
            discipline="v2", max_steps=2_000_000,
        )
        assert policy.stats["fallback"] is False


class TestTriggerDecisionsAgreeAcrossDisciplines:
    """With injected v1 delays and shared thresholds, the two disciplines
    must make identical trigger decisions — checked at the strongest
    level: bit-identical makespans and completion matrices."""

    @pytest.mark.parametrize("trigger,kwargs", TRIGGERS)
    def test_suu_c_bitwise_agreement(self, trigger, kwargs):
        inst = chains_inst()
        probe = SUUCPolicy(**kwargs)
        plan = probe.prepare_plan(inst)
        B, seed = 6, 17
        delays = np.empty((B, len(plan.chains)), dtype=np.int64)
        for k, r in enumerate(ensure_rng(seed).spawn(B)):
            policy_rng, _ = r.spawn(2)
            delays[k] = draw_delays(
                len(plan.chains), plan.horizon, policy_rng,
                unit=plan.unit, enabled=probe.enable_delays,
            )
        theta = np.vstack(
            [draw_thresholds(inst.n_jobs, ensure_rng(900 + k)) for k in range(B)]
        )

        class Injected(SUUCPolicy):
            def _draw_v2_delays(self, streams, n_trials, plan, *key):
                # Offset-sliced so the injection survives trial sharding.
                return delays[streams.offset:streams.offset + n_trials]

        v1 = run_policy_batch(
            inst, lambda: SUUCPolicy(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v1",
        )
        v2 = run_policy_batch(
            inst, lambda: Injected(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v2",
        )
        assert np.array_equal(v1.makespans, v2.makespans), trigger
        assert np.array_equal(v1.completion_times, v2.completion_times)

    @pytest.mark.parametrize("trigger,kwargs", TRIGGERS)
    def test_makespans_statistically_matched(self, trigger, kwargs):
        """Under fresh randomness (no injection), triggering runs keep
        matched makespan statistics across disciplines."""
        inst = chains_inst()
        v1 = run_policy_batch(
            inst, lambda: SUUCPolicy(**kwargs), 64, rng=7,
            semantics="suu_star", discipline="v1",
        )
        v2 = run_policy_batch(
            inst, lambda: SUUCPolicy(**kwargs), 64, rng=7,
            semantics="suu_star", discipline="v2",
        )
        a, b = v1.stats(), v2.stats()
        half_a = (a.ci95[1] - a.ci95[0]) / 2
        half_b = (b.ci95[1] - b.ci95[0]) / 2
        assert abs(a.mean - b.mean) <= half_a + half_b, trigger
