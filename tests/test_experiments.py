"""Tests for the experiment harness (repro.experiments) at tiny sizes."""

import pytest

from repro.experiments import all_experiments, experiment_ids, get_experiment
from repro.experiments.common import ExperimentResult, loglog, safe_log2

ALL_EXPERIMENTS = all_experiments()


class TestCommon:
    def test_safe_log2_guards(self):
        assert safe_log2(0) == 1.0
        assert safe_log2(2) == 1.0
        assert safe_log2(8) == 3.0

    def test_loglog(self):
        assert loglog(4) == 1.0
        assert loglog(16) == 2.0

    def test_result_add_checks_arity(self):
        r = ExperimentResult(exp_id="X", title="t", headers=["a", "b"])
        r.add(1, 2)
        with pytest.raises(ValueError):
            r.add(1)

    def test_renders(self):
        r = ExperimentResult(exp_id="X", title="t", headers=["a"])
        r.add(1.5)
        r.notes.append("note")
        text = r.to_text()
        assert "[X] t" in text and "1.500" in text and "note" in text
        md = r.to_markdown()
        assert md.startswith("### X — t")
        assert "| 1.500 |" in md


class TestRegistry:
    def test_all_ids_present(self):
        expected = {
            "T1", "E-OBL", "E-SEM", "E-LP1", "E-CHAIN", "E-DELAY", "E-TREE",
            "E-EQUIV", "E-STOCH", "E-OPT", "E-COMP", "E-PERJOB",
            "A-ROUND", "A-ROUNDS", "A-SEG", "A-ADAPT",
        }
        assert set(experiment_ids()) == expected
        assert set(ALL_EXPERIMENTS) == expected

    def test_get_experiment_rejects_unknown(self):
        with pytest.raises(ValueError, match="E-NOPE"):
            get_experiment("E-NOPE")

    def test_get_experiment_matches_direct_import(self):
        from repro.experiments import run_table1

        assert get_experiment("T1") is run_table1

    def test_legacy_dict_import_warns(self):
        import repro.experiments as pkg

        with pytest.warns(DeprecationWarning, match="ALL_EXPERIMENTS"):
            table = pkg.ALL_EXPERIMENTS
        assert table == all_experiments()


class TestRunnersTiny:
    """Each runner must produce a well-formed table at minimal size."""

    def test_lp_rounding(self):
        res = ALL_EXPERIMENTS["E-LP1"](sizes=((8, 3),), models=("uniform",))
        assert len(res.rows) == 1
        assert res.rows[0][5] <= 7.0  # blow-up

    def test_delay(self):
        res = ALL_EXPERIMENTS["E-DELAY"](configs=((20, 3, 5),), n_seeds=3)
        assert len(res.rows) == 1
        no_delay, delayed = res.rows[0][3], res.rows[0][4]
        assert delayed <= no_delay + 1e-9

    def test_rounding_ablation(self):
        res = ALL_EXPERIMENTS["A-ROUND"](scales=(6,), n_instances=3, n=10, m=3)
        assert res.rows[0][3] == 0  # no infeasible at scale 6

    def test_obl_scaling(self):
        res = ALL_EXPERIMENTS["E-OBL"](ns=(6, 12), m=3, n_trials=40, n_instances=1)
        assert len(res.rows) == 2
        assert all(row[4] >= 0.9 for row in res.rows)

    def test_opt_tiny(self):
        res = ALL_EXPERIMENTS["E-OPT"](
            configs=(("independent", 4, 2),), n_trials=60
        )
        opt_over_lb = res.rows[0][5]
        assert opt_over_lb >= 1.0 - 1e-9

    def test_equivalence(self):
        res = ALL_EXPERIMENTS["E-EQUIV"](n=8, m=3, n_trials=60)
        assert len(res.rows) == 2
        for row in res.rows:
            assert row[4] > 1e-5  # KS p-value

    def test_stochastic(self):
        res = ALL_EXPERIMENTS["E-STOCH"](sizes=((6, 2),), n_trials=3)
        assert len(res.rows) == 1
        assert all(r >= 0.99 for r in res.rows[0][4:])

    def test_table1_smoke(self):
        res = ALL_EXPERIMENTS["T1"](sizes=((8, 3),), n_trials=3)
        assert len(res.rows) == 3  # one per precedence class
        classes = [row[0] for row in res.rows]
        assert classes == ["independent", "chains", "forests"]

    def test_perjob(self):
        res = ALL_EXPERIMENTS["E-PERJOB"](
            n_jobs=10, n_machines=3, n_trials=20, top_k=4, discipline="v2"
        )
        assert len(res.rows) == 4
        # crit% columns are percentages; the top-k rows are sorted
        # descending on the auto policy's attribution.
        crits = [float(row[1]) for row in res.rows]
        assert crits == sorted(crits, reverse=True)
        assert all(0.0 <= c <= 100.0 for c in crits)
        assert res.notes  # coverage note present


class TestMainModule:
    def test_cli_single_experiment(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "tables.md"
        code = main(["E-LP1", "--markdown", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "[E-LP1]" in captured
        assert out.read_text().startswith("### E-LP1")

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["NOT-AN-EXPERIMENT"])

    def test_repro_experiments_subcommand_forwards(self, capsys):
        """`repro experiments E-PERJOB ...` reaches the harness parser
        (surfacing the per-job experiment from the main CLI)."""
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["experiments", "NOT-AN-EXPERIMENT"])
        capsys.readouterr()
