"""Deeper property-based tests on the LP/rounding/decomposition stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import critical_path_lower_bound, lower_bound
from repro.core.lp2 import round_lp2, solve_lp2
from repro.instance import chain_instance, extract_chains, tree_instance
from repro.instance.generators import stochastic_instance
from repro.stochastic import decompose_timetable, solve_r_pmtn_cmax


class TestLP2RoundingProperties:
    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_lemma6_invariants_random_chains(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 18))
        m = int(rng.integers(2, 6))
        z = int(rng.integers(1, min(5, n) + 1))
        model = ["uniform", "specialist", "powerlaw"][int(rng.integers(3))]
        inst = chain_instance(n, m, z, model, rng=rng)
        chains = extract_chains(inst.graph)
        rel = solve_lp2(inst, chains)
        rounded = round_lp2(rel)

        # Mass >= 1 for all jobs (Lemma 6 feasibility).
        mass = rounded.mass_per_job(rel.ell_capped)
        assert (mass >= 1 - 1e-6).all()
        # Load <= ceil(6 max(t*, fractional load)).
        t_eff = max(rel.t_star, rel.x.sum(axis=1).max())
        assert rounded.load <= int(np.ceil(6 * t_eff))
        # Per-job lengths <= ceil(6 d*_j).
        for j in range(n):
            assert rounded.lengths[j] <= int(np.ceil(6 * rel.d[j]))
        # Chain lengths <= 7 t* (the paper's chain-length blow-up bound).
        for chain in chains:
            assert sum(int(rounded.lengths[j]) for j in chain) <= 7 * rel.t_star + 1e-6

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_lp2_value_at_least_lp1_style_needs(self, seed):
        """t*_LP2 >= max(longest chain, per-job mass needs / capacity)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 14))
        z = int(rng.integers(1, 4))
        inst = chain_instance(n, 3, z, "uniform", rng=rng)
        chains = extract_chains(inst.graph)
        rel = solve_lp2(inst, chains)
        longest = max(len(c) for c in chains)
        assert rel.t_star >= longest - 1e-6  # d_j >= 1 summed along a chain


class TestDecompositionBounds:
    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_segment_count_bound(self, seed):
        """Birkhoff peeling must finish within (m+n)^2 + O(m+n) segments."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        m = int(rng.integers(1, 5))
        inst = stochastic_instance(n, m, rng=rng)
        lengths = inst.sample_lengths(rng)
        c, X = solve_r_pmtn_cmax(inst.speeds, lengths)
        tt = decompose_timetable(X, c)
        s = m + n
        assert len(tt.segments) <= s * s + 2 * s + 8

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_durations_positive_and_sum_to_makespan(self, seed):
        rng = np.random.default_rng(seed)
        inst = stochastic_instance(4, 3, rng=rng)
        lengths = inst.mean_lengths()
        c, X = solve_r_pmtn_cmax(inst.speeds, lengths)
        tt = decompose_timetable(X, c)
        total = sum(d for d, _ in tt.segments)
        assert total == pytest.approx(c, rel=1e-6, abs=1e-6)
        assert all(d > 0 for d, _ in tt.segments)


class TestGeneratorShapeProperties:
    def test_attach_bias_controls_depth(self):
        deep = tree_instance(60, 2, "out", rng=1, attach_bias=8.0)
        bushy = tree_instance(60, 2, "out", rng=1, attach_bias=-8.0)
        assert deep.graph.levels().max() > bushy.graph.levels().max()

    @given(st.integers(2, 40), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_tree_has_single_root(self, n, seed):
        inst = tree_instance(n, 2, "out", rng=seed)
        roots = [j for j in range(n) if inst.graph.in_degree(j) == 0]
        assert len(roots) == 1

    @given(st.integers(2, 40), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_in_tree_has_single_sink(self, n, seed):
        inst = tree_instance(n, 2, "in", rng=seed)
        sinks = [j for j in range(n) if inst.graph.out_degree(j) == 0]
        assert len(sinks) == 1


class TestBoundMonotonicity:
    def test_critical_path_dominates_on_deep_trees(self):
        """On a path-like tree the critical path is the binding bound."""
        inst = tree_instance(12, 6, "out", rng=2, attach_bias=50.0)
        cp = critical_path_lower_bound(inst)
        assert lower_bound(inst) >= cp - 1e-9
        # A 12-job path each needing >= 1 step: bound at least 12.
        assert cp >= 12 - 1e-9

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_lower_bound_at_least_one_and_finite(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 15))
        inst = tree_instance(n, 3, "out", "powerlaw", rng=rng)
        lb = lower_bound(inst)
        assert 1.0 <= lb < np.inf
