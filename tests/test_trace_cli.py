"""Tests for execution traces, the Gantt renderer, and the CLI."""

import numpy as np
import pytest

from repro.baselines.naive import SerialAllMachinesPolicy
from repro.instance import SUUInstance, independent_instance
from repro.sim import TracingPolicy, render_gantt, run_policy
from repro.sim.trace import ExecutionTrace


class TestTracingPolicy:
    def test_records_every_step(self):
        inst = independent_instance(5, 3, "uniform", rng=0)
        traced = TracingPolicy(SerialAllMachinesPolicy())
        result = run_policy(inst, traced, rng=1)
        assert traced.trace.n_steps == result.makespan
        assert traced.trace.table().shape == (result.makespan, 3)

    def test_name_wraps_inner(self):
        traced = TracingPolicy(SerialAllMachinesPolicy())
        assert "serial-all-machines" in traced.name

    def test_rows_are_copies(self):
        inst = SUUInstance(np.zeros((2, 2)))
        traced = TracingPolicy(SerialAllMachinesPolicy())
        run_policy(inst, traced, rng=0)
        t = traced.trace.table()
        # Serial policy: step 0 both machines on job 0, step 1 on job 1.
        assert t[0].tolist() == [0, 0]
        assert t[1].tolist() == [1, 1]

    def test_utilization_and_job_steps(self):
        inst = SUUInstance(np.zeros((2, 2)))
        traced = TracingPolicy(SerialAllMachinesPolicy())
        run_policy(inst, traced, rng=0)
        util = traced.trace.machine_utilization()
        assert np.allclose(util, [1.0, 1.0])
        per_job = traced.trace.job_steps(2)
        assert per_job.tolist() == [2, 2]

    def test_restart_clears_trace(self):
        inst = SUUInstance(np.zeros((1, 2)))
        traced = TracingPolicy(SerialAllMachinesPolicy())
        run_policy(inst, traced, rng=0)
        first = traced.trace.n_steps
        run_policy(inst, traced, rng=1)
        assert traced.trace.n_steps == first  # fresh trace per run


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt(ExecutionTrace()) == "(empty trace)"

    def test_basic_shape(self):
        inst = SUUInstance(np.zeros((2, 3)))
        traced = TracingPolicy(SerialAllMachinesPolicy())
        result = run_policy(inst, traced, rng=0)
        art = render_gantt(traced.trace, completion_times=result.completion_times)
        lines = art.splitlines()
        assert lines[1].startswith("m0")
        assert lines[2].startswith("m1")
        assert lines[3].startswith("done")
        assert lines[3].count("^") == 3
        assert "|000111222" not in art  # only 3 steps here
        assert "|012|" in lines[1].replace(" ", "") or "012" in lines[1]

    def test_truncation(self):
        trace = ExecutionTrace(rows=[np.array([0]) for _ in range(50)])
        art = render_gantt(trace, max_width=10)
        assert "(truncated)" in art

    def test_idle_rendering(self):
        trace = ExecutionTrace(rows=[np.array([-1, 3])])
        art = render_gantt(trace)
        assert "|.|" in art.splitlines()[1]
        assert "|3|" in art.splitlines()[2]


class TestCLI:
    def _gen(self, tmp_path, shape="independent"):
        from repro.__main__ import main

        path = tmp_path / "inst.json"
        code = main([
            "generate", "--shape", shape, "--jobs", "8", "--machines", "3",
            "--seed", "1", "--out", str(path),
        ])
        assert code == 0
        return path

    def test_generate_and_bound(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._gen(tmp_path)
        code = main(["bound", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "lower bound" in out

    def test_run_default_policy(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._gen(tmp_path)
        code = main(["run", str(path), "--trials", "4", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "policy:   sem" in out
        assert "ratio" in out

    def test_run_chain_default_is_suu_c(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._gen(tmp_path, shape="chains")
        code = main(["run", str(path), "--trials", "3", "--seed", "3"])
        assert code == 0
        assert "policy:   suu-c" in capsys.readouterr().out

    def test_gantt(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._gen(tmp_path)
        code = main(["gantt", str(path), "--policy", "greedy", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "m0" in out and "makespan=" in out

    @pytest.mark.parametrize("shape", ["tree", "forest", "layered"])
    def test_generate_other_shapes(self, tmp_path, shape):
        self._gen(tmp_path, shape=shape)
