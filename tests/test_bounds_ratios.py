"""Tests for lower bounds and ratio measurement (repro.analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    critical_path_lower_bound,
    format_markdown_table,
    format_table,
    lower_bound,
    lp1_lower_bound,
    lp2_lower_bound,
    measure_ratio,
    single_job_lower_bound,
)
from repro.baselines import optimal_expected_makespan
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.instance import (
    PrecedenceGraph,
    SUUInstance,
    chain_instance,
    independent_instance,
)


class TestSingleJobBound:
    def test_geometric(self):
        inst = SUUInstance(np.array([[0.5], [0.5]]))
        # all-machines success = 0.75 -> E >= 4/3.
        assert single_job_lower_bound(inst) == pytest.approx(4.0 / 3.0)

    def test_picks_hardest_job(self):
        inst = SUUInstance(np.array([[0.1, 0.9]]))
        assert single_job_lower_bound(inst) == pytest.approx(10.0)


class TestCriticalPathBound:
    def test_chain_sums(self):
        graph = PrecedenceGraph(3, [(0, 1), (1, 2)])
        inst = SUUInstance(np.array([[0.5, 0.5, 0.5]]), graph)
        assert critical_path_lower_bound(inst) == pytest.approx(6.0)

    def test_independent_is_max(self):
        inst = SUUInstance(np.array([[0.5, 0.9]]))
        assert critical_path_lower_bound(inst) == pytest.approx(10.0)

    def test_diamond_takes_longest_path(self):
        graph = PrecedenceGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        q = np.array([[0.5, 0.5, 0.9, 0.5]])
        inst = SUUInstance(q, graph)
        # Path 0 -> 2 -> 3: 2 + 10 + 2 = 14.
        assert critical_path_lower_bound(inst) == pytest.approx(14.0)


class TestLPBounds:
    def test_lp1_positive(self, small_independent):
        assert lp1_lower_bound(small_independent) > 0

    def test_lp2_at_least_half_chain_length(self, small_chains):
        from repro.instance import extract_chains

        longest = max(len(c) for c in extract_chains(small_chains.graph))
        assert lp2_lower_bound(small_chains) >= longest / 2 - 1e-9

    def test_lower_bound_dominates_components(self, small_chains):
        lb = lower_bound(small_chains)
        assert lb >= lp1_lower_bound(small_chains) - 1e-9
        assert lb >= critical_path_lower_bound(small_chains) - 1e-9
        assert lb >= 1.0


class TestBoundSoundness:
    """The central soundness property: LB <= true E[T_OPT] (via exact DP)."""

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_independent(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 4))
        inst = independent_instance(n, m, "uniform", rng=rng)
        opt = optimal_expected_makespan(inst).value
        assert lower_bound(inst) <= opt * (1 + 1e-9)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_chains(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 7))
        z = int(rng.integers(1, 3))
        inst = chain_instance(n, 2, z, "uniform", rng=rng)
        opt = optimal_expected_makespan(inst).value
        assert lower_bound(inst) <= opt * (1 + 1e-9)


class TestMeasureRatio:
    def test_ratio_definition(self, small_independent):
        meas = measure_ratio(small_independent, GreedyLRPolicy, 20, rng=1)
        assert meas.ratio == pytest.approx(meas.stats.mean / meas.bound)
        lo, hi = meas.ratio_ci95
        assert lo <= meas.ratio <= hi

    def test_precomputed_bound(self, small_independent):
        meas = measure_ratio(
            small_independent, GreedyLRPolicy, 10, rng=2, bound=5.0
        )
        assert meas.bound == 5.0

    def test_ratio_at_least_one_in_expectation(self, small_independent):
        meas = measure_ratio(small_independent, GreedyLRPolicy, 60, rng=3)
        assert meas.ratio > 0.9  # LB soundness within MC noise


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in text
        assert "30" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_markdown(self):
        md = format_markdown_table(["a", "b"], [[1, 2]])
        assert md.splitlines()[0] == "| a | b |"
        assert md.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in md

    def test_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text
