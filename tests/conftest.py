"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instance import (
    SUUInstance,
    chain_instance,
    independent_instance,
    tree_instance,
)


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_instance():
    """3 jobs x 2 machines, moderate failure probabilities, independent."""
    q = np.array(
        [
            [0.5, 0.3, 0.8],
            [0.2, 0.9, 0.4],
        ]
    )
    return SUUInstance(q)


@pytest.fixture
def small_independent():
    """10 jobs x 4 machines, specialist model."""
    return independent_instance(10, 4, "specialist", rng=7)


@pytest.fixture
def small_chains():
    """12 jobs in 3 chains x 4 machines."""
    return chain_instance(12, 4, 3, "uniform", rng=8)


@pytest.fixture
def small_tree():
    """10-job out-tree x 3 machines."""
    return tree_instance(10, 3, "out", "uniform", rng=9)
