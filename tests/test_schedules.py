"""Tests for schedule representations (repro.schedule)."""

import numpy as np
import pytest

from repro.instance import SUUInstance, chain_instance
from repro.core.lp2 import round_lp2, solve_lp2
from repro.instance.chains import extract_chains
from repro.schedule import (
    IDLE,
    FiniteObliviousSchedule,
    IntegralAssignment,
    JobBlock,
    Pause,
    RepeatingObliviousPolicy,
    build_chain_programs,
    congestion_profile,
    draw_delays,
    flattened_length,
)
from repro.sim import run_policy


class TestIntegralAssignment:
    def test_properties(self):
        x = np.array([[2, 0, 1], [0, 3, 1]], dtype=np.int64)
        a = IntegralAssignment(x=x, jobs=(0, 1, 2), target=0.5)
        assert a.load == 4
        assert a.machine_loads.tolist() == [3, 4]
        assert a.lengths.tolist() == [2, 3, 1]

    def test_mass_per_job(self):
        x = np.array([[2]], dtype=np.int64)
        a = IntegralAssignment(x=x, jobs=(0,), target=0.5)
        assert a.mass_per_job(np.array([[1.5]]))[0] == pytest.approx(3.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IntegralAssignment(x=np.array([[-1]]), jobs=(0,), target=0.5)

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            IntegralAssignment(x=np.array([[1.5]]), jobs=(0,), target=0.5)


class TestFiniteObliviousSchedule:
    def test_from_assignment_layout(self):
        x = np.array([[2, 1], [0, 3]], dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=(0, 1), target=0.5)
        )
        assert sched.length == 3
        # Machine 0: job 0 twice then job 1; machine 1: job 1 thrice.
        assert sched.table[:, 0].tolist() == [0, 0, 1]
        assert sched.table[:, 1].tolist() == [1, 1, 1]

    def test_idle_padding(self):
        x = np.array([[1], [3]], dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=(0,), target=0.5)
        )
        assert sched.table[:, 0].tolist() == [0, IDLE, IDLE]

    def test_assignment_at_bounds(self):
        sched = FiniteObliviousSchedule(np.full((2, 1), IDLE))
        with pytest.raises(IndexError):
            sched.assignment_at(2)

    def test_mass_per_step(self):
        x = np.array([[1, 1]], dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=(0, 1), target=0.5)
        )
        ell = np.array([[2.0, 3.0]])
        mass = sched.mass_per_step(ell)
        assert mass.shape == (2, 2)
        assert mass[0].tolist() == [2.0, 0.0]
        assert mass[1].tolist() == [0.0, 3.0]

    def test_rejects_bad_table(self):
        with pytest.raises(ValueError):
            FiniteObliviousSchedule(np.array([[-5]]))
        with pytest.raises(ValueError):
            FiniteObliviousSchedule(np.zeros(3))

    def test_repeating_policy_completes(self):
        inst = SUUInstance(np.full((2, 4), 0.4))
        x = np.ones((2, 4), dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=tuple(range(4)), target=0.5)
        )
        res = run_policy(inst, RepeatingObliviousPolicy(sched), rng=3)
        assert res.makespan >= 1

    def test_repeating_policy_rejects_empty(self):
        with pytest.raises(ValueError):
            RepeatingObliviousPolicy(FiniteObliviousSchedule(np.zeros((0, 2), dtype=np.int64)))

    def test_repeating_policy_machine_mismatch(self):
        inst = SUUInstance(np.full((3, 2), 0.4))
        sched = FiniteObliviousSchedule(np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="machines"):
            run_policy(inst, RepeatingObliviousPolicy(sched), rng=0)


class TestChainPrograms:
    def _assignment(self):
        x = np.array(
            [
                [3, 0, 1],
                [1, 2, 0],
            ],
            dtype=np.int64,
        )
        return IntegralAssignment(x=x, jobs=(0, 1, 2), target=1.0)

    def test_blocks(self):
        programs = build_chain_programs([[0, 1], [2]], self._assignment())
        assert len(programs) == 2
        b0 = programs[0].items[0]
        assert isinstance(b0, JobBlock)
        assert b0.job == 0
        assert b0.length == 3
        assert dict(b0.steps) == {0: 3, 1: 1}
        assert b0.machines_at(0) == [0, 1]
        assert b0.machines_at(1) == [0]
        assert b0.machines_at(2) == [0]

    def test_pause_for_long_jobs(self):
        programs = build_chain_programs([[0, 1], [2]], self._assignment(), gamma=2)
        first = programs[0].items[0]
        assert isinstance(first, Pause)
        assert first.job == 0
        assert first.length == 2
        second = programs[0].items[1]
        assert isinstance(second, JobBlock)

    def test_unit_rounding_and_prelude(self):
        programs = build_chain_programs([[0, 1], [2]], self._assignment(), unit=2)
        b0 = programs[0].items[0]
        # x = 3 on machine 0 -> 2 main + 1 prelude; x = 1 on machine 1 -> prelude only.
        assert dict(b0.steps) == {0: 2}
        assert dict(b0.prelude) == {0: 1, 1: 1}
        assert b0.prelude_length == 1
        assert b0.length == 2

    def test_unit_rejects_zero(self):
        with pytest.raises(ValueError):
            build_chain_programs([[0]], self._assignment(), unit=0)

    def test_one_pass_superstep_count(self):
        programs = build_chain_programs([[0, 1], [2]], self._assignment())
        assert programs[0].n_supersteps_one_pass == 3 + 2
        assert programs[1].n_supersteps_one_pass == 1


class TestDelaysAndCongestion:
    def test_draw_delays_range(self):
        rng = np.random.default_rng(0)
        d = draw_delays(1000, 10, rng)
        assert d.min() >= 0 and d.max() <= 10

    def test_draw_delays_disabled(self):
        d = draw_delays(5, 10, np.random.default_rng(0), enabled=False)
        assert (d == 0).all()

    def test_draw_delays_unit_multiples(self):
        d = draw_delays(500, 20, np.random.default_rng(1), unit=4)
        assert (d % 4 == 0).all()
        assert d.max() <= 20

    def test_congestion_identical_chains(self):
        # Two chains with identical single-block programs on one machine:
        # undelayed congestion 2, fully staggered congestion 1.
        x = np.zeros((1, 2), dtype=np.int64)
        x[0, 0] = 2
        x[0, 1] = 2
        a = IntegralAssignment(x=x, jobs=(0, 1), target=1.0)
        programs = build_chain_programs([[0], [1]], a)
        prof0 = congestion_profile(programs, np.array([0, 0]), 1)
        assert prof0.tolist() == [2, 2]
        prof1 = congestion_profile(programs, np.array([0, 2]), 1)
        assert prof1.tolist() == [1, 1, 1, 1]
        assert flattened_length(prof0) == flattened_length(prof1) == 4

    def test_congestion_with_pause(self):
        x = np.zeros((1, 2), dtype=np.int64)
        x[0, 0] = 5
        x[0, 1] = 1
        a = IntegralAssignment(x=x, jobs=(0, 1), target=1.0)
        programs = build_chain_programs([[0, 1]], a, gamma=2)
        # Job 0 is long -> pause of 2, then block of 1 for job 1.
        prof = congestion_profile(programs, np.array([0]), 1)
        assert prof.tolist() == [0, 0, 1]

    def test_congestion_requires_matching_delays(self):
        with pytest.raises(ValueError):
            congestion_profile([], np.array([0]), 1)

    def test_real_instance_congestion_drops_with_delay(self):
        inst = chain_instance(60, 4, 20, "related", rng=11)
        chains = extract_chains(inst.graph)
        relax = solve_lp2(inst, chains)
        assignment = round_lp2(relax)
        programs = build_chain_programs(chains, assignment)
        no_delay = congestion_profile(programs, np.zeros(20, dtype=np.int64), 4)
        rng = np.random.default_rng(5)
        delayed = [
            congestion_profile(
                programs, draw_delays(20, assignment.load, rng), 4
            ).max()
            for _ in range(5)
        ]
        assert np.mean(delayed) <= no_delay.max()
