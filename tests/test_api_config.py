"""Tests for the unified knob-resolution chain (repro.api.config)."""

import pathlib

import pytest

from repro.api.config import (
    KNOB_NAMES,
    ResolvedKnobs,
    lp_reuse_eps,
    resolve_discipline,
    resolve_kernel,
    resolve_kernel_threads,
    resolve_knobs,
    resolve_lp_reuse,
    resolve_substreams,
    solve_cache_enabled,
)
from repro.api.scenario import SimConfig

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

ENV_BY_KNOB = {
    "discipline": "REPRO_DISCIPLINE",
    "lp_reuse": "REPRO_LP_REUSE",
    "kernel": "REPRO_KERNEL",
    "kernel_threads": "REPRO_KERNEL_THREADS",
    "substreams": "REPRO_SUBSTREAMS",
}


class TestPrecedence:
    """Explicit argument → SimConfig field → env var → default."""

    DEFAULTS = {
        "discipline": "v1",
        "lp_reuse": "exact",
        "kernel": "numpy",
        "kernel_threads": 1,
        "substreams": "shared",
    }
    NON_DEFAULT = {
        "discipline": "v2",
        "lp_reuse": "subset",
        "kernel": "python",
        "kernel_threads": 3,
        "substreams": "per-policy",
    }

    def test_defaults(self, monkeypatch):
        for var in ENV_BY_KNOB.values():
            monkeypatch.delenv(var, raising=False)
        assert resolve_knobs() == ResolvedKnobs(**self.DEFAULTS)

    def test_env_beats_default(self, monkeypatch):
        for knob, var in ENV_BY_KNOB.items():
            monkeypatch.setenv(var, str(self.NON_DEFAULT[knob]))
        knobs = resolve_knobs()
        for knob in KNOB_NAMES:
            assert getattr(knobs, knob) == self.NON_DEFAULT[knob]

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "7")
        knobs = resolve_knobs(config=SimConfig(discipline="v1", kernel_threads=2))
        assert knobs.discipline == "v1"
        assert knobs.kernel_threads == 2

    def test_explicit_beats_config(self, monkeypatch):
        for var in ENV_BY_KNOB.values():
            monkeypatch.delenv(var, raising=False)
        config = SimConfig(discipline="v1", kernel="numpy")
        knobs = resolve_knobs(config=config, discipline="v2", kernel="python")
        assert knobs.discipline == "v2"
        assert knobs.kernel == "python"

    def test_simconfig_resolved_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_REUSE", "subset")
        config = SimConfig(kernel_threads=2)
        assert config.resolved() == resolve_knobs(config=config)
        assert config.resolved().lp_reuse == "subset"

    def test_as_dict_covers_all_knobs(self):
        assert set(ResolvedKnobs().as_dict()) == set(KNOB_NAMES)


class TestLoudEnvErrors:
    """A typo'd env value raises rather than silently running defaults."""

    CASES = [
        (resolve_discipline, "REPRO_DISCIPLINE", "v3", "discipline"),
        (resolve_lp_reuse, "REPRO_LP_REUSE", "always", "lp_reuse"),
        (resolve_kernel, "REPRO_KERNEL", "fortran", "kernel"),
        (resolve_kernel_threads, "REPRO_KERNEL_THREADS", "many", "integer"),
        (resolve_kernel_threads, "REPRO_KERNEL_THREADS", "0", ">= 1"),
        (resolve_substreams, "REPRO_SUBSTREAMS", "independent", "substreams"),
    ]

    @pytest.mark.parametrize("resolver,var,value,needle", CASES)
    def test_bad_env_value(self, monkeypatch, resolver, var, value, needle):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=needle):
            resolver()

    def test_bad_explicit_value(self):
        with pytest.raises(ValueError, match="discipline"):
            resolve_discipline("v9")
        with pytest.raises(ValueError, match="kernel_threads"):
            resolve_kernel_threads(0)

    def test_bad_eps(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_REUSE_EPS", "1.5")
        with pytest.raises(ValueError, match="eps"):
            lp_reuse_eps()

    def test_eps_and_solve_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_REUSE_EPS", raising=False)
        assert lp_reuse_eps() == 0.25
        monkeypatch.setenv("REPRO_LP_REUSE_EPS", "0.1")
        assert lp_reuse_eps() == pytest.approx(0.1)
        monkeypatch.delenv("REPRO_SOLVE_CACHE", raising=False)
        assert solve_cache_enabled()
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        assert not solve_cache_enabled()


class TestDelegation:
    """The legacy resolver names route through the one chain."""

    def test_legacy_names_delegate(self, monkeypatch):
        from repro.core import phased
        from repro.kernels import resolve_kernel as kernels_resolve
        from repro.util import rng

        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        monkeypatch.setenv("REPRO_KERNEL", "python")
        monkeypatch.setenv("REPRO_LP_REUSE", "subset")
        assert rng.resolve_discipline() == "v2"
        assert kernels_resolve() == "python"
        assert phased.resolve_lp_reuse() == "subset"


class TestGrepClean:
    """repro.api.config is the only module reading the environment."""

    def test_no_env_reads_outside_config(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "config.py" and path.parent.name == "api":
                continue
            text = path.read_text()
            if "environ.get(" in text or "getenv(" in text:
                offenders.append(str(path.relative_to(SRC)))
        assert not offenders, (
            f"environment reads outside repro/api/config.py: {offenders}"
        )
