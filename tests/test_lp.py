"""Tests for the LP substrate (repro.lp)."""

import numpy as np
import pytest

from repro.errors import InfeasibleLPError
from repro.lp import LinearProgram, solve_lp


class TestSolveLP:
    def test_simple_min(self):
        # min x s.t. x >= 3
        sol = solve_lp(np.array([1.0]), A_ub=np.array([[-1.0]]), b_ub=np.array([-3.0]))
        assert sol.value == pytest.approx(3.0)

    def test_infeasible_raises(self):
        # x <= -1, x >= 0
        with pytest.raises(InfeasibleLPError):
            solve_lp(np.array([1.0]), A_ub=np.array([[1.0]]), b_ub=np.array([-1.0]))

    def test_unbounded_raises(self):
        with pytest.raises(InfeasibleLPError):
            solve_lp(np.array([-1.0]), bounds=[(0, None)])


class TestLinearProgram:
    def test_variable_bounds(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, lb=2.0, ub=5.0)
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(2.0)

    def test_rejects_inverted_bounds(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_variable(lb=3.0, ub=1.0)

    def test_ge_le_eq(self):
        # min x + y  s.t. x + y >= 2, x <= 1.5, y == 1
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=1.0)
        lp.add_ge({x: 1.0, y: 1.0}, 2.0)
        lp.add_le({x: 1.0}, 1.5)
        lp.add_eq({y: 1.0}, 1.0)
        sol = lp.solve()
        assert sol.value == pytest.approx(2.0)
        assert sol.x[y] == pytest.approx(1.0)

    def test_duplicate_coefficients_merge(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        # 2x >= 4 expressed as two 1x coefficients on the same variable.
        lp._add_row({x: 2.0}, 4.0, ">=")
        sol = lp.solve()
        assert sol.value == pytest.approx(2.0)

    def test_rejects_unknown_variable(self):
        lp = LinearProgram()
        lp.add_variable()
        with pytest.raises(ValueError):
            lp.add_le({5: 1.0}, 1.0)

    def test_add_variables_bulk(self):
        lp = LinearProgram()
        cols = lp.add_variables(4, objective=1.0, lb=1.0)
        assert cols == [0, 1, 2, 3]
        sol = lp.solve()
        assert sol.value == pytest.approx(4.0)

    def test_counts(self):
        lp = LinearProgram()
        lp.add_variable()
        lp.add_variable()
        lp.add_le({0: 1.0}, 1.0)
        assert lp.n_variables == 2
        assert lp.n_constraints == 1

    def test_transportation_shape(self):
        # min sum costs on a 2x2 transportation problem.
        lp = LinearProgram()
        x = [[lp.add_variable(objective=c) for c in row] for row in [[1, 2], [3, 1]]]
        for i in range(2):
            lp.add_eq({x[i][0]: 1.0, x[i][1]: 1.0}, 1.0)  # supply
        for j in range(2):
            lp.add_le({x[0][j]: 1.0, x[1][j]: 1.0}, 1.5)  # capacity
        sol = lp.solve()
        assert sol.value == pytest.approx(2.0)
