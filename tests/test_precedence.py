"""Tests for precedence graphs (repro.instance.precedence)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.instance.precedence import PrecedenceClass, PrecedenceGraph


def random_dag_edges(n, density, seed):
    rng = np.random.default_rng(seed)
    return [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < density
    ]


class TestConstruction:
    def test_empty(self):
        g = PrecedenceGraph(0, ())
        assert g.n_jobs == 0
        assert g.n_edges == 0

    def test_simple_chain(self):
        g = PrecedenceGraph(3, [(0, 1), (1, 2)])
        assert g.predecessors(1) == (0,)
        assert g.successors(1) == (2,)
        assert g.in_degree(0) == 0
        assert g.out_degree(2) == 0

    def test_rejects_cycle(self):
        with pytest.raises(InvalidInstanceError, match="cycle"):
            PrecedenceGraph(2, [(0, 1), (1, 0)])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidInstanceError, match="self-loop"):
            PrecedenceGraph(2, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            PrecedenceGraph(2, [(0, 1), (0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidInstanceError, match="out of range"):
            PrecedenceGraph(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(InvalidInstanceError):
            PrecedenceGraph(-1, ())


class TestTopologicalOrder:
    def test_respects_edges(self):
        edges = random_dag_edges(20, 0.2, 0)
        g = PrecedenceGraph(20, edges)
        pos = {v: i for i, v in enumerate(g.topological_order())}
        for u, v in edges:
            assert pos[u] < pos[v]

    def test_covers_all_jobs(self):
        g = PrecedenceGraph(10, [(0, 5), (5, 9)])
        assert sorted(g.topological_order()) == list(range(10))

    @given(st.integers(min_value=1, max_value=15), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_reachability(self, n, seed):
        edges = random_dag_edges(n, 0.3, seed)
        g = PrecedenceGraph(n, edges)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        for j in range(n):
            assert g.ancestors(j) == nx.ancestors(nxg, j)
            assert g.descendants(j) == nx.descendants(nxg, j)


class TestClassification:
    def test_independent(self):
        assert PrecedenceGraph(4, ()).classify() is PrecedenceClass.INDEPENDENT

    def test_chains(self):
        g = PrecedenceGraph(5, [(0, 1), (1, 2), (3, 4)])
        assert g.classify() is PrecedenceClass.CHAINS

    def test_out_forest(self):
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (2, 3)])
        assert g.classify() is PrecedenceClass.OUT_FOREST

    def test_in_forest(self):
        g = PrecedenceGraph(4, [(1, 0), (2, 0), (3, 2)])
        assert g.classify() is PrecedenceClass.IN_FOREST

    def test_mixed_forest(self):
        # One out-tree and one in-tree component.
        g = PrecedenceGraph(6, [(0, 1), (0, 2), (4, 3), (5, 3)])
        assert g.classify() is PrecedenceClass.MIXED_FOREST

    def test_general(self):
        # Diamond: not a forest in either orientation.
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.classify() is PrecedenceClass.GENERAL


class TestStructureQueries:
    def test_sources_sinks(self):
        g = PrecedenceGraph(4, [(0, 1), (1, 2)])
        assert g.sources() == [0, 3]
        assert g.sinks() == [2, 3]

    def test_components(self):
        g = PrecedenceGraph(5, [(0, 1), (2, 3)])
        assert g.weakly_connected_components() == [[0, 1], [2, 3], [4]]

    def test_levels_chain(self):
        g = PrecedenceGraph(3, [(0, 1), (1, 2)])
        assert g.levels().tolist() == [0, 1, 2]

    def test_levels_diamond(self):
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.levels().tolist() == [0, 1, 1, 2]

    def test_levels_respect_edges(self):
        edges = random_dag_edges(15, 0.25, 3)
        g = PrecedenceGraph(15, edges)
        lvl = g.levels()
        for u, v in edges:
            assert lvl[u] < lvl[v]

    def test_reversed(self):
        g = PrecedenceGraph(3, [(0, 1), (1, 2)])
        r = g.reversed()
        assert r.predecessors(0) == (1,)
        assert r.classify() is PrecedenceClass.CHAINS

    def test_in_degree_array(self):
        g = PrecedenceGraph(3, [(0, 2), (1, 2)])
        assert g.in_degree_array().tolist() == [0, 0, 2]


class TestInducedSubgraph:
    def test_relabels(self):
        g = PrecedenceGraph(5, [(0, 2), (2, 4)])
        sub, jobs = g.induced_subgraph([0, 2, 4])
        assert jobs == [0, 2, 4]
        assert sub.edges == ((0, 1), (1, 2))

    def test_drops_cross_edges(self):
        g = PrecedenceGraph(4, [(0, 1), (1, 2), (2, 3)])
        sub, jobs = g.induced_subgraph([0, 3])
        assert sub.n_edges == 0
