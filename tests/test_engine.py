"""Tests for the simulation engine (repro.sim.engine)."""

import numpy as np
import pytest

from repro.errors import ScheduleViolationError, SimulationHorizonError
from repro.instance import PrecedenceGraph, SUUInstance
from repro.schedule.base import IDLE, Policy
from repro.sim import draw_thresholds, run_policy


class ConstantPolicy(Policy):
    """Assign every machine to a fixed job id forever."""

    name = "constant"

    def __init__(self, job):
        self.job = job

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):
        return np.full(self._m, self.job, dtype=np.int64)


class FirstRemainingPolicy(Policy):
    """All machines on the first remaining eligible job."""

    name = "first-remaining"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):
        targets = np.nonzero(state.remaining & state.eligible)[0]
        if targets.size == 0:
            return np.full(self._m, IDLE, dtype=np.int64)
        return np.full(self._m, targets[0], dtype=np.int64)


class BadShapePolicy(Policy):
    name = "bad-shape"

    def assign(self, state):
        return np.array([0, 0, 0, 0, 0, 0, 0], dtype=np.int64)


class FloatPolicy(Policy):
    name = "float-assign"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):
        return np.zeros(self._m, dtype=np.float64)


class IneligiblePolicy(Policy):
    """Assigns the last job immediately (violating precedence)."""

    name = "ineligible"

    def start(self, instance, rng):
        self._m = instance.n_machines
        self._n = instance.n_jobs

    def assign(self, state):
        return np.full(self._m, self._n - 1, dtype=np.int64)


class IdlePolicy(Policy):
    name = "idler"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):
        return np.full(self._m, IDLE, dtype=np.int64)


class TestBasicExecution:
    def test_deterministic_success(self):
        # q = 0 everywhere: every job completes the first step it runs.
        inst = SUUInstance(np.zeros((2, 3)))
        res = run_policy(inst, FirstRemainingPolicy(), rng=0)
        assert res.makespan == 3
        assert sorted(res.completion_times.tolist()) == [1, 2, 3]

    def test_geometric_single_job(self):
        inst = SUUInstance(np.array([[0.5]]))
        samples = [
            run_policy(inst, FirstRemainingPolicy(), rng=k).makespan
            for k in range(2000)
        ]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_busy_steps_counted(self):
        inst = SUUInstance(np.zeros((2, 2)))
        res = run_policy(inst, FirstRemainingPolicy(), rng=0)
        assert res.busy_machine_steps == 4  # 2 machines x 2 steps

    def test_both_semantics_complete(self, small_independent):
        for semantics in ("suu", "suu_star"):
            res = run_policy(
                small_independent, FirstRemainingPolicy(), rng=1, semantics=semantics
            )
            assert res.makespan >= small_independent.n_jobs
            assert (res.completion_times > 0).all()

    def test_fixed_thresholds_deterministic(self, small_independent):
        theta = draw_thresholds(small_independent.n_jobs, np.random.default_rng(5))
        a = run_policy(
            small_independent,
            FirstRemainingPolicy(),
            rng=1,
            semantics="suu_star",
            thresholds=theta,
        )
        b = run_policy(
            small_independent,
            FirstRemainingPolicy(),
            rng=2,  # different rng: thresholds fixed, policy deterministic
            semantics="suu_star",
            thresholds=theta,
        )
        assert a.makespan == b.makespan
        assert np.array_equal(a.completion_times, b.completion_times)


class TestPrecedence:
    def test_chain_executes_in_order(self):
        q = np.zeros((1, 3))
        graph = PrecedenceGraph(3, [(2, 1), (1, 0)])
        inst = SUUInstance(q, graph)
        res = run_policy(inst, FirstRemainingPolicy(), rng=0)
        assert res.completion_times[2] < res.completion_times[1] < res.completion_times[0]

    def test_violation_detected(self):
        graph = PrecedenceGraph(3, [(0, 1), (1, 2)])
        inst = SUUInstance(np.full((2, 3), 0.5), graph)
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy(inst, IneligiblePolicy(), rng=0)

    def test_assign_completed_is_idle(self):
        # Constantly assigning job 0 after it completes must not crash and
        # must never finish job 1 -> horizon error.
        inst = SUUInstance(np.zeros((1, 2)))
        with pytest.raises(SimulationHorizonError):
            run_policy(inst, ConstantPolicy(0), rng=0, max_steps=50)


class TestValidation:
    def test_bad_shape(self, tiny_instance):
        with pytest.raises(ScheduleViolationError, match="shape"):
            run_policy(tiny_instance, BadShapePolicy(), rng=0)

    def test_bad_dtype(self, tiny_instance):
        with pytest.raises(ScheduleViolationError, match="dtype"):
            run_policy(tiny_instance, FloatPolicy(), rng=0)

    def test_out_of_range_job(self, tiny_instance):
        with pytest.raises(ScheduleViolationError, match="out-of-range"):
            run_policy(tiny_instance, ConstantPolicy(99), rng=0)

    def test_horizon(self, tiny_instance):
        with pytest.raises(SimulationHorizonError) as err:
            run_policy(tiny_instance, IdlePolicy(), rng=0, max_steps=10)
        assert err.value.steps == 10

    def test_bad_semantics(self, tiny_instance):
        with pytest.raises(ValueError, match="semantics"):
            run_policy(tiny_instance, IdlePolicy(), rng=0, semantics="nope")

    def test_bad_thresholds_shape(self, tiny_instance):
        with pytest.raises(ValueError, match="thresholds"):
            run_policy(
                tiny_instance,
                FirstRemainingPolicy(),
                rng=0,
                semantics="suu_star",
                thresholds=np.array([1.0]),
            )


class TestThresholds:
    def test_distribution(self):
        theta = draw_thresholds(200_000, np.random.default_rng(0))
        # -log2 U ~ exponential with mean 1/ln 2 = log2(e).
        assert theta.mean() == pytest.approx(np.log2(np.e), rel=0.02)
        assert (theta > 0).all()

    def test_reproducible(self):
        a = draw_thresholds(10, np.random.default_rng(3))
        b = draw_thresholds(10, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestReproducibility:
    def test_same_seed_same_run(self, small_independent):
        a = run_policy(small_independent, FirstRemainingPolicy(), rng=77)
        b = run_policy(small_independent, FirstRemainingPolicy(), rng=77)
        assert a.makespan == b.makespan
        assert np.array_equal(a.completion_times, b.completion_times)

    def test_different_seeds_differ_somewhere(self, small_independent):
        outcomes = {
            run_policy(small_independent, FirstRemainingPolicy(), rng=s).makespan
            for s in range(10)
        }
        assert len(outcomes) > 1
