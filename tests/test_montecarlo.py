"""Tests for Monte Carlo estimation and the exact oblivious-repeat sampler."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.suu_i_obl import SUUIOblPolicy, build_obl_schedule
from repro.instance import SUUInstance, chain_instance, independent_instance
from repro.schedule import FiniteObliviousSchedule, IntegralAssignment
from repro.sim import (
    estimate_expected_makespan,
    sample_oblivious_repeat_makespans,
)


class TestEstimateExpectedMakespan:
    def test_geometric_mean(self):
        inst = SUUInstance(np.array([[0.5]]))
        stats = estimate_expected_makespan(inst, SUUIOblPolicy, 1500, rng=0)
        # One machine, q=1/2: every policy is "run the job"; E[T] = 2.
        assert stats.mean == pytest.approx(2.0, rel=0.1)

    def test_reproducible(self, small_independent):
        a = estimate_expected_makespan(small_independent, SUUIOblPolicy, 10, rng=4)
        b = estimate_expected_makespan(small_independent, SUUIOblPolicy, 10, rng=4)
        assert np.array_equal(a.samples, b.samples)

    def test_stats_fields(self, small_independent):
        s = estimate_expected_makespan(small_independent, SUUIOblPolicy, 16, rng=5)
        assert s.n_trials == 16
        lo, hi = s.ci95
        assert lo <= s.mean <= hi
        assert s.policy_name == "SUU-I-OBL"

    def test_single_trial_stats(self, small_independent):
        s = estimate_expected_makespan(small_independent, SUUIOblPolicy, 1, rng=6)
        assert s.std == 0.0
        assert s.sem == 0.0

    def test_rejects_zero_trials(self, small_independent):
        with pytest.raises(ValueError):
            estimate_expected_makespan(small_independent, SUUIOblPolicy, 0, rng=0)


class TestExactObliviousSampler:
    def test_matches_engine_distribution(self):
        """The exact sampler and the engine must sample the same law."""
        inst = independent_instance(8, 3, "uniform", rng=9)
        schedule = build_obl_schedule(inst)
        exact = sample_oblivious_repeat_makespans(inst, schedule, 400, rng=1)

        def factory():
            from repro.schedule.oblivious import RepeatingObliviousPolicy

            return RepeatingObliviousPolicy(schedule)

        engine = estimate_expected_makespan(inst, factory, 400, rng=2)
        ks = scipy_stats.ks_2samp(exact.samples, engine.samples)
        assert ks.pvalue > 0.001
        assert exact.mean == pytest.approx(engine.mean, rel=0.15)

    def test_single_machine_geometric(self):
        inst = SUUInstance(np.array([[0.5]]))
        x = np.ones((1, 1), dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=(0,), target=0.5)
        )
        stats = sample_oblivious_repeat_makespans(inst, sched, 4000, rng=3)
        assert stats.mean == pytest.approx(2.0, rel=0.07)
        assert stats.samples.min() >= 1

    def test_rejects_precedence(self):
        inst = chain_instance(6, 2, 2, rng=10)
        x = np.ones((2, 6), dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=tuple(range(6)), target=0.5)
        )
        with pytest.raises(ValueError, match="independent"):
            sample_oblivious_repeat_makespans(inst, sched, 10, rng=0)

    def test_rejects_starved_job(self):
        inst = independent_instance(3, 2, rng=11)
        x = np.zeros((2, 3), dtype=np.int64)
        x[0, 0] = 1  # jobs 1, 2 never scheduled
        x[1, 1] = 0
        sched = FiniteObliviousSchedule(np.array([[0, -1]]))
        with pytest.raises(ValueError, match="zero mass"):
            sample_oblivious_repeat_makespans(inst, sched, 10, rng=0)

    def test_completion_in_later_pass(self):
        # Hard job: q = 0.9 -> per-pass mass 0.152: most trials need many
        # passes, so samples must exceed one schedule length frequently.
        inst = SUUInstance(np.array([[0.9]]))
        x = np.ones((1, 1), dtype=np.int64)
        sched = FiniteObliviousSchedule.from_assignment(
            IntegralAssignment(x=x, jobs=(0,), target=0.1)
        )
        stats = sample_oblivious_repeat_makespans(inst, sched, 500, rng=4)
        assert stats.mean == pytest.approx(10.0, rel=0.15)  # geometric p=0.1
