"""End-to-end integration matrix: every policy x compatible workloads.

These are the "does the whole stack hold together" tests: generator ->
LP -> rounding -> schedule -> engine -> result, under both semantics,
with precedence validation left to the engine (which raises on violation).
"""

import numpy as np
import pytest

from repro.baselines import (
    BestMachinePolicy,
    GreedyLRPolicy,
    RandomAssignmentPolicy,
    RoundRobinPolicy,
    SerialAllMachinesPolicy,
)
from repro.core import (
    LayeredPolicy,
    SUUCPolicy,
    SUUIAdaptiveLPPolicy,
    SUUIOblPolicy,
    SUUISemPolicy,
    SUUTPolicy,
)
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
    random_dag_instance,
    tree_instance,
)
from repro.sim import run_policy

WORKLOADS = {
    "independent": lambda seed: independent_instance(12, 4, "specialist", rng=seed),
    "chains": lambda seed: chain_instance(12, 4, 3, "uniform", rng=seed),
    "out-tree": lambda seed: tree_instance(12, 4, "out", "uniform", rng=seed),
    "in-tree": lambda seed: tree_instance(12, 4, "in", "uniform", rng=seed),
    "forest": lambda seed: forest_instance(14, 4, 3, "mixed", "uniform", rng=seed),
    "layered": lambda seed: layered_instance([5, 4, 3], 4, "uniform", rng=seed),
    "dag": lambda seed: random_dag_instance(10, 4, 0.25, "uniform", rng=seed),
}

# Which policies are valid on which workloads.
COMPATIBILITY = {
    "SUUIOblPolicy": (SUUIOblPolicy, {"independent"}),
    "SUUISemPolicy": (SUUISemPolicy, {"independent"}),
    "SUUIAdaptiveLPPolicy": (SUUIAdaptiveLPPolicy, {"independent"}),
    "SUUCPolicy": (SUUCPolicy, {"independent", "chains"}),
    "SUUTPolicy": (
        SUUTPolicy,
        {"independent", "chains", "out-tree", "in-tree", "forest"},
    ),
    "LayeredPolicy": (LayeredPolicy, set(WORKLOADS)),
    "GreedyLRPolicy": (GreedyLRPolicy, set(WORKLOADS)),
    "SerialAllMachinesPolicy": (SerialAllMachinesPolicy, set(WORKLOADS)),
    "RoundRobinPolicy": (RoundRobinPolicy, set(WORKLOADS)),
    "BestMachinePolicy": (BestMachinePolicy, set(WORKLOADS)),
    "RandomAssignmentPolicy": (RandomAssignmentPolicy, set(WORKLOADS)),
}

CASES = [
    (policy_name, workload)
    for policy_name, (_, compat) in COMPATIBILITY.items()
    for workload in sorted(compat)
]


@pytest.mark.parametrize("policy_name,workload", CASES)
@pytest.mark.parametrize("semantics", ["suu", "suu_star"])
def test_policy_on_workload(policy_name, workload, semantics):
    factory, _ = COMPATIBILITY[policy_name]
    inst = WORKLOADS[workload](seed=hash((policy_name, workload)) % 2**31)
    res = run_policy(
        inst, factory(), rng=11, semantics=semantics, max_steps=300_000
    )
    assert res.makespan >= 1
    assert (res.completion_times >= 1).all()
    for u, v in inst.graph.edges:
        assert res.completion_times[u] < res.completion_times[v]


def test_full_pipeline_reproducible_end_to_end():
    """Same seed => bit-identical makespans across the whole stack."""
    inst = chain_instance(14, 4, 4, "specialist", rng=99)
    a = run_policy(inst, SUUCPolicy(), rng=123, max_steps=300_000)
    b = run_policy(inst, SUUCPolicy(), rng=123, max_steps=300_000)
    assert a.makespan == b.makespan
    assert np.array_equal(a.completion_times, b.completion_times)


def test_policies_rank_sanely_on_specialist_chains():
    """Serial should not beat SUU-C on average over several seeds."""
    from repro.sim import estimate_expected_makespan

    inst = chain_instance(20, 5, 4, "specialist", rng=5)
    suuc = estimate_expected_makespan(inst, SUUCPolicy, 20, rng=6, max_steps=300_000)
    serial = estimate_expected_makespan(
        inst, SerialAllMachinesPolicy, 20, rng=7, max_steps=300_000
    )
    assert suuc.mean <= serial.mean * 1.3
