"""Tests for RNG discipline and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(ensure_rng(0), 4)
        assert len(children) == 4

    def test_independent_streams(self):
        children = spawn_rngs(ensure_rng(0), 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(ensure_rng(3), 3)]
        b = [g.random() for g in spawn_rngs(ensure_rng(3), 3)]
        assert a == b

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(ensure_rng(0), -1)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.InvalidInstanceError,
            errors.InfeasibleLPError,
            errors.RoundingError,
            errors.ScheduleViolationError,
            errors.SimulationHorizonError,
            errors.DecompositionError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)

    def test_lp_error_carries_status(self):
        err = errors.InfeasibleLPError("bad", status=2)
        assert err.status == 2

    def test_horizon_error_carries_steps(self):
        err = errors.SimulationHorizonError("slow", steps=10)
        assert err.steps == 10

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.RoundingError("nope")
