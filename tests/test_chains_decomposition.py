"""Tests for chain extraction and forest decomposition."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.instance import (
    PrecedenceGraph,
    chain_instance,
    decompose_forest,
    extract_chains,
    forest_instance,
    tree_instance,
)
from repro.instance.chains import chain_of_each_job


class TestExtractChains:
    def test_singletons(self):
        g = PrecedenceGraph(3, ())
        assert extract_chains(g) == [[0], [1], [2]]

    def test_one_chain(self):
        g = PrecedenceGraph(3, [(2, 0), (0, 1)])
        assert extract_chains(g) == [[2, 0, 1]]

    def test_rejects_tree(self):
        g = PrecedenceGraph(3, [(0, 1), (0, 2)])
        with pytest.raises(DecompositionError):
            extract_chains(g)

    @given(st.integers(1, 40), st.integers(1, 8), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_partition(self, n, z, seed):
        z = min(z, n)
        inst = chain_instance(n, 2, z, rng=seed)
        chains = extract_chains(inst.graph)
        owner = chain_of_each_job(chains, n)
        assert len(owner) == n
        # Precedence order inside each chain.
        for chain in chains:
            for a, b in zip(chain, chain[1:]):
                assert inst.graph.successors(a) == (b,)

    def test_chain_of_each_job_rejects_overlap(self):
        with pytest.raises(DecompositionError):
            chain_of_each_job([[0, 1], [1, 2]], 3)

    def test_chain_of_each_job_rejects_gap(self):
        with pytest.raises(DecompositionError):
            chain_of_each_job([[0]], 2)


def _check_decomposition(graph, blocks):
    """Partition + precedence safety + block bound."""
    seen = set()
    position = {}
    for b, blk in enumerate(blocks):
        for c, chain in enumerate(blk):
            for k, j in enumerate(chain):
                assert j not in seen
                seen.add(j)
                position[j] = (b, c, k)
    assert len(seen) == graph.n_jobs
    for u, v in graph.edges:
        bu, cu, ku = position[u]
        bv, cv, kv = position[v]
        assert bu < bv or (bu == bv and cu == cv and ku < kv)
    if graph.n_jobs:
        assert len(blocks) <= math.floor(math.log2(max(2, graph.n_jobs))) + 1


class TestDecomposeForest:
    def test_single_chain_one_block(self):
        g = PrecedenceGraph(4, [(0, 1), (1, 2), (2, 3)])
        blocks = decompose_forest(g)
        assert len(blocks) == 1
        assert blocks[0] == [[0, 1, 2, 3]]

    def test_star_out_tree(self):
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (0, 3)])
        blocks = decompose_forest(g)
        _check_decomposition(g, blocks)
        assert len(blocks) == 2  # root+heavy child, then light children

    def test_star_in_tree(self):
        g = PrecedenceGraph(4, [(1, 0), (2, 0), (3, 0)])
        blocks = decompose_forest(g)
        _check_decomposition(g, blocks)
        # In-tree: leaves must come in earlier blocks than the root.

    def test_isolated_vertices(self):
        g = PrecedenceGraph(3, ())
        blocks = decompose_forest(g)
        _check_decomposition(g, blocks)
        assert len(blocks) == 1

    def test_rejects_diamond(self):
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        with pytest.raises(DecompositionError):
            decompose_forest(g)

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_out_tree(self, n, seed):
        inst = tree_instance(n, 2, "out", rng=seed)
        blocks = decompose_forest(inst.graph)
        _check_decomposition(inst.graph, blocks)

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_in_tree(self, n, seed):
        inst = tree_instance(n, 2, "in", rng=seed)
        blocks = decompose_forest(inst.graph)
        _check_decomposition(inst.graph, blocks)

    @given(st.integers(2, 60), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_mixed_forest(self, n, t, seed):
        t = min(t, n)
        inst = forest_instance(n, 2, t, "mixed", rng=seed)
        blocks = decompose_forest(inst.graph)
        _check_decomposition(inst.graph, blocks)

    def test_deep_path_plus_bushes(self):
        # A long path with a pendant leaf at each vertex: the heavy path is
        # the spine, all leaves land in block 1.
        edges = []
        spine = 20
        for k in range(spine - 1):
            edges.append((k, k + 1))
        nxt = spine
        for k in range(spine - 1):
            edges.append((k, nxt))
            nxt += 1
        g = PrecedenceGraph(nxt, edges)
        blocks = decompose_forest(g)
        _check_decomposition(g, blocks)
        assert len(blocks) == 2
