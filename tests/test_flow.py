"""Tests for the flow substrate (Dinic + Hopcroft-Karp) vs networkx oracles."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import INF_CAPACITY, MaxFlowNetwork, hopcroft_karp, max_bipartite_matching


def random_flow_network(n_nodes, n_edges, seed, max_cap=20):
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(n_edges):
        u = int(rng.integers(0, n_nodes))
        v = int(rng.integers(0, n_nodes))
        if u != v:
            edges.append((u, v, int(rng.integers(0, max_cap + 1))))
    return edges


class TestDinicBasics:
    def test_single_path(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 2)
        net.add_edge(0, 2, 3)
        net.add_edge(1, 3, 4)
        net.add_edge(2, 3, 1)
        assert net.max_flow(0, 3) == 3

    def test_classic_cross_network(self):
        # The textbook 6-node example with a cross edge.
        net = MaxFlowNetwork(6)
        net.add_edge(0, 1, 16)
        net.add_edge(0, 2, 13)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 1, 4)
        net.add_edge(1, 3, 12)
        net.add_edge(3, 2, 9)
        net.add_edge(2, 4, 14)
        net.add_edge(4, 3, 7)
        net.add_edge(3, 5, 20)
        net.add_edge(4, 5, 4)
        assert net.max_flow(0, 5) == 23

    def test_disconnected(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 5)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3) == 0

    def test_zero_capacity(self):
        net = MaxFlowNetwork(2)
        net.add_edge(0, 1, 0)
        assert net.max_flow(0, 1) == 0

    def test_flow_on_edges(self):
        net = MaxFlowNetwork(3)
        e0 = net.add_edge(0, 1, 5)
        e1 = net.add_edge(1, 2, 3)
        net.max_flow(0, 2)
        assert net.flow_on(e0) == 3
        assert net.flow_on(e1) == 3

    def test_infinite_capacity(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 7)
        net.add_edge(1, 2, INF_CAPACITY)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3) == 5

    def test_rejects_self_loop(self):
        net = MaxFlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(1, 1, 3)

    def test_rejects_negative_capacity(self):
        net = MaxFlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_rejects_same_source_sink(self):
        net = MaxFlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_rejects_edges_after_solve(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.max_flow(0, 1)
        with pytest.raises(RuntimeError):
            net.add_edge(1, 2, 1)

    def test_add_node(self):
        net = MaxFlowNetwork(2)
        w = net.add_node()
        net.add_edge(0, w, 4)
        net.add_edge(w, 1, 2)
        assert net.max_flow(0, 1) == 2


class TestDinicVsNetworkx:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=40),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_value_matches(self, n, m, seed):
        edges = random_flow_network(n, m, seed)
        net = MaxFlowNetwork(n)
        G = nx.DiGraph()
        G.add_nodes_from(range(n))
        for u, v, cap in edges:
            net.add_edge(u, v, cap)
            if G.has_edge(u, v):
                G[u][v]["capacity"] += cap
            else:
                G.add_edge(u, v, capacity=cap)
        ours = net.max_flow(0, n - 1)
        theirs = nx.maximum_flow_value(G, 0, n - 1)
        assert ours == theirs

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=30),
        st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_and_cut(self, n, m, seed):
        edges = random_flow_network(n, m, seed)
        net = MaxFlowNetwork(n)
        ids = [net.add_edge(u, v, c) for u, v, c in edges]
        value = net.max_flow(0, n - 1)
        # Conservation at interior nodes.
        balance = [0] * n
        for (u, v, cap), eid in zip(edges, ids):
            f = net.flow_on(eid)
            assert 0 <= f <= cap
            balance[u] -= f
            balance[v] += f
        for w in range(1, n - 1):
            assert balance[w] == 0
        assert balance[n - 1] == value
        # Min-cut certificate: cut capacity equals flow value.
        side = net.min_cut_side(0)
        assert side[0]
        if value > 0 or not side[n - 1]:
            cut = sum(
                cap for (u, v, cap) in edges if side[u] and not side[v]
            )
            assert cut == value


class TestHopcroftKarp:
    def test_perfect(self):
        size, ml, mr = hopcroft_karp(3, 3, [[0, 1], [0], [1, 2]])
        assert size == 3
        assert sorted(ml) == [0, 1, 2]

    def test_unmatchable(self):
        size, ml, mr = hopcroft_karp(2, 1, [[0], [0]])
        assert size == 1

    def test_empty(self):
        size, ml, mr = hopcroft_karp(0, 0, [])
        assert size == 0

    def test_no_edges(self):
        size, ml, mr = hopcroft_karp(3, 3, [[], [], []])
        assert size == 0
        assert ml == [-1, -1, -1]

    def test_rejects_bad_vertex(self):
        with pytest.raises(ValueError):
            hopcroft_karp(1, 1, [[5]])

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError):
            hopcroft_karp(2, 2, [[0]])

    def test_matching_consistency(self):
        size, ml, mr = hopcroft_karp(4, 4, [[0, 1], [1, 2], [2, 3], [3, 0]])
        assert size == 4
        for u, v in enumerate(ml):
            assert mr[v] == u

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_size_matches_networkx(self, nl, nr, density, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (u, v)
            for u in range(nl)
            for v in range(nr)
            if rng.random() < density
        ]
        size, ml, mr = max_bipartite_matching(nl, nr, edges)
        G = nx.Graph()
        G.add_nodes_from(range(nl), bipartite=0)
        G.add_nodes_from(range(nl, nl + nr), bipartite=1)
        G.add_edges_from((u, nl + v) for u, v in edges)
        theirs = len(nx.bipartite.maximum_matching(G, top_nodes=range(nl))) // 2
        assert size == theirs
        # Validity: matched pairs are actual edges, no double use.
        eset = set(edges)
        used_r = set()
        for u, v in enumerate(ml):
            if v >= 0:
                assert (u, v) in eset
                assert v not in used_r
                used_r.add(v)
