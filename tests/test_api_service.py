"""The simulation service: end-to-end policies, backend equivalence, CLI."""

import json

import numpy as np
import pytest

import repro
from repro.api import (
    Report,
    Scenario,
    ScenarioGrid,
    SimConfig,
    evaluate_grid,
    list_policies,
    simulate,
)
from repro.errors import UnknownPolicyError

#: Shape each precedence-restricted policy needs (others run on anything).
_SHAPE_FOR_DEFAULT = {
    "independent": "independent",
    "chains": "chains",
    "out_forest": "forest",
    "in_forest": "forest",
    "mixed_forest": "forest",
    "general": "layered",
}


def _scenario_for(info) -> Scenario:
    shape = "independent"
    if info.default_for:
        shape = _SHAPE_FOR_DEFAULT[info.default_for[0]]
    return Scenario(shape=shape, n_jobs=6, n_machines=3, model="uniform", seed=2)


QUICK = SimConfig(n_trials=2, seed=3, max_steps=50_000)


class TestSimulateEveryPolicy:
    @pytest.mark.parametrize(
        "name", [info.name for info in list_policies()]
    )
    def test_end_to_end(self, name):
        info = next(i for i in list_policies() if i.name == name)
        report = simulate(_scenario_for(info), name, QUICK)
        assert isinstance(report, Report)
        assert report.policy == name
        assert report.stats.n_trials == 2
        assert report.mean >= 1.0
        assert report.lower_bound > 0.0
        assert report.ratio >= report.mean / max(report.lower_bound, 1e-9) - 1e-9


class TestSimulateAPI:
    def test_auto_resolves_precedence_default(self):
        report = simulate(Scenario(shape="chains", n_jobs=8, n_machines=3,
                                   model="uniform", seed=1), "auto", QUICK)
        assert report.policy == "suu-c"

    def test_accepts_raw_instance(self, small_independent):
        report = simulate(small_independent, "greedy", QUICK)
        assert report.scenario is None
        assert report.policy == "greedy"

    def test_accepts_policy_class_and_kwargs(self):
        sc = Scenario(n_jobs=6, n_machines=3, model="uniform", seed=2)
        report = simulate(sc, repro.SUUISemPolicy, QUICK, n_rounds=2)
        assert report.policy == "SUU-I-SEM"

    def test_serial_matches_montecarlo_estimator(self):
        sc = Scenario(n_jobs=8, n_machines=3, model="uniform", seed=4)
        cfg = SimConfig(n_trials=6, seed=11)
        report = simulate(sc, "greedy", cfg)
        stats = repro.estimate_expected_makespan(
            sc.to_instance(), repro.GreedyLRPolicy, 6, rng=11
        )
        assert np.array_equal(report.stats.samples, stats.samples)

    def test_unknown_policy_and_backend(self):
        sc = Scenario(n_jobs=4, n_machines=2, model="uniform")
        with pytest.raises(UnknownPolicyError):
            simulate(sc, "nope", QUICK)
        with pytest.raises(ValueError, match="backend"):
            simulate(sc, "greedy", QUICK, backend="quantum")

    def test_report_round_trips_to_json(self):
        report = simulate(Scenario(n_jobs=5, n_machines=2, model="uniform"),
                          "serial", QUICK)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["policy"] == "serial"
        assert len(data["samples"]) == QUICK.n_trials
        assert Scenario.from_dict(data["scenario"]) == report.scenario


class TestProcessBackendEquivalence:
    def test_process_reproduces_serial_bit_identically(self):
        sc = Scenario(n_jobs=10, n_machines=4, model="specialist", seed=6)
        cfg = SimConfig(n_trials=8, seed=17)
        serial = simulate(sc, "greedy", cfg, backend="serial")
        process = simulate(sc, "greedy", cfg, backend="process", n_workers=3)
        assert np.array_equal(serial.stats.samples, process.stats.samples)
        assert serial.lower_bound == process.lower_bound

    def test_chunking_never_drops_or_reorders_trials(self):
        from repro.api.service import _chunk_bounds

        for n_items in (1, 2, 7, 8, 16):
            for n_chunks in (1, 2, 3, 5, 20):
                bounds = _chunk_bounds(n_items, n_chunks)
                assert bounds[0][0] == 0 and bounds[-1][1] == n_items
                assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
                assert len(bounds) <= max(1, min(n_chunks, n_items))


class TestEvaluateGrid:
    def test_scenario_major_order(self):
        grid = ScenarioGrid(
            Scenario(n_jobs=5, n_machines=2, model="uniform"), seed=[1, 2]
        )
        reports = evaluate_grid(grid, ["serial", "greedy"], config=QUICK)
        assert len(reports) == 4
        assert [r.policy for r in reports] == ["serial", "greedy"] * 2
        assert [r.scenario.seed for r in reports] == [1, 1, 2, 2]

    def test_process_grid_reuses_pool_and_matches_serial(self):
        grid = ScenarioGrid(
            Scenario(n_jobs=8, n_machines=3, model="uniform"), seed=[1, 2]
        )
        cfg = SimConfig(n_trials=4, seed=5)
        serial = evaluate_grid(grid, ["serial", "greedy"], config=cfg)
        process = evaluate_grid(grid, ["serial", "greedy"], config=cfg,
                                backend="process", n_workers=2)
        assert len(serial) == len(process) == 4
        for a, b in zip(serial, process):
            assert a.policy == b.policy
            assert np.array_equal(a.stats.samples, b.stats.samples)
            assert a.lower_bound == b.lower_bound

    def test_single_policy_string(self):
        grid = ScenarioGrid(Scenario(n_jobs=5, n_machines=2, model="uniform"))
        reports = evaluate_grid(grid, "auto", config=QUICK)
        assert len(reports) == 1 and reports[0].policy == "sem"


class TestCLIIntegration:
    def _gen(self, tmp_path, *extra):
        from repro.__main__ import main

        path = tmp_path / "inst.json"
        assert main(["generate", *extra, "--jobs", "8", "--machines", "3",
                     "--seed", "1", "--out", str(path)]) == 0
        return path

    def test_generate_random_dag_runs_layered_by_default(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._gen(tmp_path, "--shape", "random_dag", "--edge-prob", "0.4")
        inst = repro.load_instance(path)
        assert inst.precedence_class.value == "general"
        assert main(["run", str(path), "--trials", "2", "--seed", "2"]) == 0
        assert "policy:   layered" in capsys.readouterr().out

    def test_sweep_prints_reports(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "reports.json"
        code = main([
            "sweep", "--shape", "independent", "--jobs", "6", "--jobs", "8",
            "--machines", "3", "--policy", "auto", "--policy", "greedy",
            "--trials", "2", "--model", "uniform", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "4 reports" in text
        assert "greedy" in text and "sem" in text
        dumped = json.loads(out.read_text())
        assert len(dumped) == 4
        assert {d["policy"] for d in dumped} == {"sem", "greedy"}
