"""Tests for workload generators (repro.instance.generators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.instance import (
    PrecedenceClass,
    chain_instance,
    extract_chains,
    failure_matrix,
    forest_instance,
    independent_instance,
    layered_instance,
    random_dag_instance,
    stochastic_instance,
    tree_instance,
)


class TestFailureMatrix:
    @pytest.mark.parametrize("model", ["uniform", "powerlaw", "specialist", "related"])
    def test_shape_and_range(self, model):
        q = failure_matrix(5, 8, model, rng=0)
        assert q.shape == (5, 8)
        assert (q >= 0).all() and (q <= 1).all()

    def test_uniform_respects_bounds(self):
        q = failure_matrix(4, 50, "uniform", rng=1, q_lo=0.3, q_hi=0.4)
        assert (q >= 0.3).all() and (q <= 0.4).all()

    def test_specialist_counts(self):
        q = failure_matrix(6, 20, "specialist", rng=2, specialists_per_job=2, q_bad=0.99)
        good = (q < 0.99).sum(axis=0)
        assert (good == 2).all()

    def test_related_constant_rows(self):
        q = failure_matrix(3, 10, "related", rng=3)
        assert np.allclose(q, q[:, :1])

    def test_unknown_model(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            failure_matrix(2, 2, "nope", rng=0)

    def test_bad_range(self):
        with pytest.raises(InvalidInstanceError):
            failure_matrix(2, 2, "uniform", rng=0, q_lo=0.9, q_hi=0.1)

    def test_deterministic_given_seed(self):
        a = failure_matrix(3, 4, "powerlaw", rng=42)
        b = failure_matrix(3, 4, "powerlaw", rng=42)
        assert np.array_equal(a, b)


class TestShapes:
    def test_independent(self):
        inst = independent_instance(7, 3, rng=0)
        assert inst.precedence_class is PrecedenceClass.INDEPENDENT

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_chain_partition(self, n, z, seed):
        z = min(z, n)
        inst = chain_instance(n, 3, z, rng=seed)
        chains = extract_chains(inst.graph)
        assert len(chains) == z
        assert sorted(j for c in chains for j in c) == list(range(n))

    def test_chain_bad_count(self):
        with pytest.raises(InvalidInstanceError):
            chain_instance(5, 2, 6, rng=0)

    @pytest.mark.parametrize("orientation,expected", [
        ("out", {PrecedenceClass.OUT_FOREST, PrecedenceClass.CHAINS}),
        ("in", {PrecedenceClass.IN_FOREST, PrecedenceClass.CHAINS}),
    ])
    def test_tree_orientation(self, orientation, expected):
        inst = tree_instance(12, 3, orientation, rng=4)
        assert inst.precedence_class in expected
        assert inst.graph.n_edges == 11  # a tree on 12 vertices

    def test_tree_bad_orientation(self):
        with pytest.raises(InvalidInstanceError):
            tree_instance(5, 2, "sideways", rng=0)

    def test_forest_components(self):
        inst = forest_instance(20, 3, 4, "out", rng=5)
        comps = inst.graph.weakly_connected_components()
        assert len(comps) == 4

    def test_forest_mixed(self):
        inst = forest_instance(20, 3, 4, "mixed", rng=6)
        assert inst.precedence_class in (
            PrecedenceClass.MIXED_FOREST,
            PrecedenceClass.OUT_FOREST,
            PrecedenceClass.IN_FOREST,
            PrecedenceClass.CHAINS,
        )

    def test_layered_complete(self):
        inst = layered_instance([3, 4], 2, rng=7)
        assert inst.graph.n_edges == 12  # complete bipartite 3 x 4
        levels = inst.graph.levels()
        assert (levels[:3] == 0).all() and (levels[3:] == 1).all()

    def test_layered_sparse_keeps_predecessor(self):
        inst = layered_instance([5, 5, 5], 2, rng=8, density=0.1)
        lvl = inst.graph.levels()
        for j in range(5, 15):
            assert inst.graph.in_degree(j) >= 1
        assert lvl.max() == 2

    def test_layered_rejects_empty_layer(self):
        with pytest.raises(InvalidInstanceError):
            layered_instance([3, 0, 2], 2, rng=0)

    def test_random_dag_is_dag(self):
        inst = random_dag_instance(15, 3, 0.3, rng=9)
        # Construction succeeded => toposort succeeded => acyclic.
        assert len(inst.graph.topological_order()) == 15


class TestStochasticInstance:
    def test_basic(self):
        inst = stochastic_instance(8, 3, rng=0)
        assert inst.n_jobs == 8
        assert inst.n_machines == 3
        assert (inst.rates > 0).all()
        assert (inst.speeds.max(axis=0) > 0).all()

    def test_mean_lengths(self):
        inst = stochastic_instance(5, 2, rng=1)
        assert np.allclose(inst.mean_lengths(), 1.0 / inst.rates)

    def test_sample_lengths_positive(self):
        inst = stochastic_instance(5, 2, rng=2)
        p = inst.sample_lengths(np.random.default_rng(0))
        assert (p > 0).all()

    def test_sample_mean_close(self):
        inst = stochastic_instance(3, 2, rng=3)
        rng = np.random.default_rng(1)
        draws = np.array([inst.sample_lengths(rng) for _ in range(4000)])
        assert np.allclose(draws.mean(axis=0), inst.mean_lengths(), rtol=0.1)

    def test_specialist_speed_model(self):
        inst = stochastic_instance(10, 4, rng=4, speed_model="specialist")
        assert inst.speeds.shape == (4, 10)

    def test_rejects_bad_speed_model(self):
        with pytest.raises(InvalidInstanceError):
            stochastic_instance(3, 2, rng=0, speed_model="warp")
