"""Tests for SUU-T (Theorem 12) and the layered-DAG extension."""

import pytest

from repro.core.layered import LayeredPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import (
    forest_instance,
    layered_instance,
    random_dag_instance,
    tree_instance,
)
from repro.instance.decomposition import decompose_forest
from repro.sim import run_policy


class TestSUUT:
    @pytest.mark.parametrize("orientation", ["out", "in"])
    def test_completes(self, orientation):
        inst = tree_instance(14, 3, orientation, "uniform", rng=1)
        pol = SUUTPolicy()
        res = run_policy(inst, pol, rng=2, max_steps=200_000)
        assert res.makespan >= 1
        assert pol.stats["n_blocks"] == len(decompose_forest(inst.graph))

    def test_respects_precedence(self):
        # Engine enforcement: any violation raises.
        for seed in range(4):
            inst = forest_instance(18, 3, 3, "mixed", "uniform", rng=seed)
            res = run_policy(inst, SUUTPolicy(), rng=seed + 100, max_steps=200_000)
            for u, v in inst.graph.edges:
                assert res.completion_times[u] < res.completion_times[v]

    def test_blocks_complete_in_order(self):
        inst = tree_instance(12, 3, "out", "uniform", rng=3)
        blocks = decompose_forest(inst.graph)
        res = run_policy(inst, SUUTPolicy(), rng=4, max_steps=200_000)
        for earlier, later in zip(blocks, blocks[1:]):
            max_earlier = max(
                res.completion_times[j] for chain in earlier for j in chain
            )
            min_later = min(
                res.completion_times[j] for chain in later for j in chain
            )
            assert max_earlier < min_later

    def test_single_chain_tree(self):
        # A path is a degenerate tree: one block.
        inst = tree_instance(8, 2, "out", rng=5, attach_bias=100.0)
        pol = SUUTPolicy()
        res = run_policy(inst, pol, rng=6, max_steps=200_000)
        assert res.makespan >= 8

    def test_forwards_suu_c_kwargs(self):
        inst = tree_instance(10, 3, "out", rng=7)
        pol = SUUTPolicy(enable_delays=False)
        res = run_policy(inst, pol, rng=8, max_steps=200_000)
        assert res.makespan >= 1

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            SUUTPolicy().assign(None)

    def test_suu_star(self):
        inst = tree_instance(10, 3, "in", rng=9)
        res = run_policy(inst, SUUTPolicy(), rng=10, semantics="suu_star",
                         max_steps=200_000)
        assert res.makespan >= 1


class TestLayered:
    def test_mapreduce_two_phases(self):
        inst = layered_instance([6, 6], 4, "uniform", rng=11)
        pol = LayeredPolicy()
        res = run_policy(inst, pol, rng=12, max_steps=200_000)
        assert pol.stats["n_levels"] == 2
        first_phase_done = max(res.completion_times[:6])
        second_phase_start = min(res.completion_times[6:])
        assert first_phase_done < second_phase_start

    def test_general_dag(self):
        inst = random_dag_instance(15, 4, 0.2, "uniform", rng=13)
        res = run_policy(inst, LayeredPolicy(), rng=14, max_steps=200_000)
        for u, v in inst.graph.edges:
            assert res.completion_times[u] < res.completion_times[v]

    def test_independent_single_level(self):
        inst = layered_instance([8], 3, "uniform", rng=15)
        pol = LayeredPolicy()
        res = run_policy(inst, pol, rng=16, max_steps=200_000)
        assert pol.stats["n_levels"] == 1
        assert res.makespan >= 1

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            LayeredPolicy().assign(None)
