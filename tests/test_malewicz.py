"""Tests for the chain-progress DP (repro.baselines.malewicz)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import optimal_chains_expected_makespan, optimal_expected_makespan
from repro.errors import DecompositionError, ReproError
from repro.instance import PrecedenceGraph, SUUInstance, chain_instance


class TestChainDPClosedForms:
    def test_single_job(self):
        inst = SUUInstance(np.array([[0.5]]))
        res = optimal_chains_expected_makespan(inst)
        assert res.value == pytest.approx(2.0)
        assert res.n_chains == 1

    def test_single_chain_serial_geometrics(self):
        graph = PrecedenceGraph(3, [(0, 1), (1, 2)])
        inst = SUUInstance(np.array([[0.5, 0.5, 0.5]]), graph)
        res = optimal_chains_expected_makespan(inst)
        assert res.value == pytest.approx(6.0)
        assert res.n_states == 4

    def test_two_machines_gang_up(self):
        graph = PrecedenceGraph(2, [(0, 1)])
        inst = SUUInstance(np.full((2, 2), 0.5), graph)
        # Both machines on the frontier job: 2 x geometric(3/4).
        res = optimal_chains_expected_makespan(inst)
        assert res.value == pytest.approx(2 * 4.0 / 3.0)


class TestAgreementWithSubsetDP:
    @given(st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_matches_generic_dp(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        z = int(rng.integers(1, 3))
        inst = chain_instance(n, 2, z, "uniform", rng=rng)
        a = optimal_chains_expected_makespan(inst).value
        b = optimal_expected_makespan(inst).value
        assert a == pytest.approx(b, rel=1e-9)

    def test_independent_as_singletons(self):
        inst = SUUInstance(np.full((2, 4), 0.5))
        a = optimal_chains_expected_makespan(inst).value
        b = optimal_expected_makespan(inst).value
        assert a == pytest.approx(b, rel=1e-9)


class TestScalability:
    def test_beyond_subset_dp_limit(self):
        # 24 jobs in 2 chains: impossible for the 2^n DP, easy here.
        inst = chain_instance(24, 2, 2, "uniform", rng=5)
        res = optimal_chains_expected_makespan(inst)
        assert res.value > 0
        assert res.n_states <= 25 * 25

    def test_state_guard(self):
        inst = chain_instance(40, 2, 8, "uniform", rng=6)
        with pytest.raises(ReproError, match="state space"):
            optimal_chains_expected_makespan(inst, max_states=100)

    def test_action_guard(self):
        inst = chain_instance(12, 4, 6, "uniform", rng=7)
        with pytest.raises(ReproError, match="actions"):
            optimal_chains_expected_makespan(inst, max_actions=10)

    def test_rejects_trees(self):
        graph = PrecedenceGraph(3, [(0, 1), (0, 2)])
        inst = SUUInstance(np.full((1, 3), 0.5), graph)
        with pytest.raises(DecompositionError):
            optimal_chains_expected_makespan(inst)


class TestLowerBoundCalibration:
    def test_lp2_bound_sound_at_scale(self):
        """LB soundness on instances only this DP can solve exactly."""
        from repro.analysis.bounds import lower_bound

        for seed in range(3):
            inst = chain_instance(18, 3, 2, "uniform", rng=seed)
            opt = optimal_chains_expected_makespan(inst).value
            assert lower_bound(inst) <= opt * (1 + 1e-9)
