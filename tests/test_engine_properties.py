"""Property-based tests of engine invariants (hypothesis).

A random-but-valid policy (each machine picks a uniformly random eligible
job) is run on randomized instances under both semantics; the invariants
checked here must hold for *any* policy and any instance:

* every job completes exactly once, at a step <= makespan;
* precedence: completion times strictly increase along every edge;
* the SimulationState snapshots handed to the policy are never mutated
  retroactively (monotone remaining sets);
* busy machine-steps never exceed m x makespan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import RandomAssignmentPolicy
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    random_dag_instance,
)
from repro.schedule.base import Policy
from repro.sim import run_policy


class SnapshotCheckingPolicy(Policy):
    """Random policy that asserts state snapshots stay consistent."""

    name = "snapshot-checker"

    def start(self, instance, rng):
        self._rng = rng
        self._m = instance.n_machines
        self._prev_remaining = None
        self._idle = np.full(instance.n_machines, -1, dtype=np.int64)

    def assign(self, state):
        # Monotonicity: remaining sets only shrink over time.
        if self._prev_remaining is not None:
            assert not (state.remaining & ~self._prev_remaining).any()
        self._prev_remaining = state.remaining.copy()
        # Eligible is a subset of remaining.
        assert not (state.eligible & ~state.remaining).any()
        # Mass never decreases and is finite.
        assert np.isfinite(state.mass_accrued).all()
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        return targets[self._rng.integers(0, targets.size, size=self._m)]


def _make_instance(kind: str, n: int, m: int, seed: int):
    rng = np.random.default_rng(seed)
    if kind == "independent":
        return independent_instance(n, m, "uniform", rng=rng)
    if kind == "chains":
        return chain_instance(n, m, max(1, n // 3), "uniform", rng=rng)
    if kind == "forest":
        return forest_instance(n, m, max(1, n // 4), "mixed", "uniform", rng=rng)
    return random_dag_instance(n, m, 0.25, "uniform", rng=rng)


@given(
    st.sampled_from(["independent", "chains", "forest", "dag"]),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["suu", "suu_star"]),
    st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_engine_invariants(kind, n, m, semantics, seed):
    inst = _make_instance(kind, n, m, seed)
    res = run_policy(
        inst,
        SnapshotCheckingPolicy(),
        rng=seed + 1,
        semantics=semantics,
        max_steps=300_000,
    )
    ct = res.completion_times
    assert ct.shape == (n,)
    assert (ct >= 1).all()
    assert ct.max() == res.makespan
    for u, v in inst.graph.edges:
        assert ct[u] < ct[v], f"edge ({u},{v}) violated"
    assert 0 <= res.busy_machine_steps <= m * res.makespan


@given(st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_random_policy_always_terminates(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 10))
    m = int(rng.integers(1, 4))
    inst = independent_instance(n, m, "uniform", rng=rng)
    res = run_policy(inst, RandomAssignmentPolicy(), rng=seed, max_steps=300_000)
    assert res.makespan >= (n + m - 1) // m  # can't beat perfect parallelism
