"""Public-API hygiene: exports exist, are documented, and stay consistent."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.api",
    "repro.baselines",
    "repro.core",
    "repro.experiments",
    "repro.flow",
    "repro.instance",
    "repro.lp",
    "repro.schedule",
    "repro.sim",
    "repro.stochastic",
    "repro.util",
]


class TestTopLevelExports:
    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_all_public_callables_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or inspect.isclass(obj):
                assert inspect.getdoc(obj), f"repro.{name} lacks a docstring"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version(self):
        assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("pkg_name", SUBPACKAGES)
class TestSubpackages:
    def test_module_docstrings(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert pkg.__doc__, f"{pkg_name} lacks a module docstring"
        for info in pkgutil.iter_modules(pkg.__path__):
            mod = importlib.import_module(f"{pkg_name}.{info.name}")
            assert mod.__doc__, f"{pkg_name}.{info.name} lacks a module docstring"

    def test_declared_exports_exist(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"


class TestPublicClassesDocumented:
    def test_policy_subclasses_have_names(self):
        from repro.schedule.base import Policy

        policies = [
            repro.SUUIOblPolicy,
            repro.SUUISemPolicy,
            repro.SUUCPolicy,
            repro.SUUTPolicy,
            repro.LayeredPolicy,
            repro.SUUIAdaptiveLPPolicy,
            repro.GreedyLRPolicy,
            repro.SerialAllMachinesPolicy,
            repro.RoundRobinPolicy,
            repro.BestMachinePolicy,
            repro.RandomAssignmentPolicy,
        ]
        names = set()
        for cls in policies:
            assert issubclass(cls, Policy)
            assert cls.name != Policy.name, f"{cls.__name__} kept the default name"
            names.add(cls.name)
        assert len(names) == len(policies), "policy display names collide"

    def test_public_methods_documented(self):
        for cls in (
            repro.SUUInstance,
            repro.PrecedenceGraph,
            repro.FiniteObliviousSchedule,
            repro.MakespanStats,
        ):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"
