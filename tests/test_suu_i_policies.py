"""Tests for SUU-I-OBL and SUU-I-SEM (Theorems 3 and 4)."""

import numpy as np
import pytest

from repro.analysis.bounds import lower_bound
from repro.core.suu_i_obl import SUUIOblPolicy, build_obl_schedule
from repro.core.suu_i_sem import SUUISemPolicy, paper_round_count
from repro.instance import SUUInstance, independent_instance
from repro.sim import estimate_expected_makespan, run_policy


class TestPaperRoundCount:
    def test_small_values(self):
        assert paper_round_count(1, 1) == 3
        assert paper_round_count(2, 100) == 3
        assert paper_round_count(4, 100) == 4
        assert paper_round_count(16, 100) == 5
        assert paper_round_count(256, 100) == 6  # min = 100 -> loglog ~ 2.73

    def test_uses_min(self):
        assert paper_round_count(10**6, 4) == 4
        assert paper_round_count(4, 10**6) == 4


class TestSUUIObl:
    def test_completes(self, small_independent):
        res = run_policy(small_independent, SUUIOblPolicy(), rng=0)
        assert res.makespan >= 1

    def test_requires_start(self, small_independent):
        policy = SUUIOblPolicy()
        with pytest.raises(RuntimeError):
            policy.assign(None)

    def test_schedule_length_bounded(self, small_independent):
        from repro.core.lp1 import solve_lp1

        rel = solve_lp1(small_independent, target=0.5)
        sched = build_obl_schedule(small_independent)
        assert sched.length <= int(np.ceil(6 * rel.t_star)) + 1

    def test_job_subset(self, small_independent):
        policy = SUUIOblPolicy(jobs=[0, 1])
        policy.start(small_independent, np.random.default_rng(0))
        state_like = None
        row = policy.assign(state_like)
        active = row[row >= 0]
        assert set(active.tolist()) <= {0, 1}

    def test_reasonable_ratio(self):
        inst = independent_instance(20, 5, "uniform", rng=1)
        bound = lower_bound(inst)
        stats = estimate_expected_makespan(inst, SUUIOblPolicy, 30, rng=2)
        # Loose sanity envelope: constant x log n with generous constant.
        assert stats.mean <= 60 * np.log2(20) * bound


class TestSUUISem:
    def test_completes_and_counts_rounds(self, small_independent):
        policy = SUUISemPolicy()
        res = run_policy(small_independent, policy, rng=3)
        assert res.makespan >= 1
        assert 1 <= policy.rounds_used <= paper_round_count(10, 4)

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            SUUISemPolicy().assign(None)

    def test_round_targets_double(self, monkeypatch):
        """Round k must solve LP1 at target 2^(k-2)."""
        targets = []
        import repro.core.suu_i_sem as mod

        original = mod.solve_lp1

        def spy(instance, jobs=None, target=0.5):
            targets.append(target)
            return original(instance, jobs=jobs, target=target)

        monkeypatch.setattr(mod, "solve_lp1", spy)
        # Jobs that fail a lot: q = 0.95 on every machine forces rounds.
        inst = SUUInstance(np.full((2, 6), 0.95))
        run_policy(inst, SUUISemPolicy(), rng=4, max_steps=100_000)
        assert targets[0] == pytest.approx(0.5)
        for a, b in zip(targets, targets[1:]):
            assert b == pytest.approx(2 * a)

    def test_serial_fallback_when_n_le_m(self):
        # n <= m and n_rounds=0 forces the serial fallback immediately.
        inst = independent_instance(3, 5, "uniform", rng=5)
        policy = SUUISemPolicy(n_rounds=0)
        res = run_policy(inst, policy, rng=6, max_steps=10_000)
        assert policy._mode == "serial"
        assert res.makespan >= 3

    def test_repeat_fallback_when_m_lt_n(self):
        inst = independent_instance(8, 2, "uniform", rng=7)
        policy = SUUISemPolicy(n_rounds=1)
        res = run_policy(inst, policy, rng=8, max_steps=100_000)
        assert res.makespan >= 1
        assert policy._mode in ("rounds", "repeat_last")

    def test_no_fallback_keeps_doubling(self):
        inst = SUUInstance(np.full((2, 4), 0.9))
        policy = SUUISemPolicy(fallback=False)
        res = run_policy(inst, policy, rng=9, max_steps=100_000)
        assert res.makespan >= 1

    def test_job_subset_only_assigns_subset(self, small_independent):
        from repro.schedule.base import SimulationState

        policy = SUUISemPolicy(jobs=[2, 5])
        policy.start(small_independent, np.random.default_rng(1))
        n = small_independent.n_jobs
        state = SimulationState(
            t=0,
            remaining=np.ones(n, dtype=bool),
            eligible=np.ones(n, dtype=bool),
            mass_accrued=np.zeros(n),
        )
        for _ in range(5):
            row = policy.assign(state)
            assert set(row[row >= 0].tolist()) <= {2, 5}

    def test_sem_beats_obl_on_hard_jobs(self):
        """On heavy-threshold instances SEM's doubling pays off vs OBL."""
        # Jobs where every machine is bad: thresholds frequently large.
        inst = SUUInstance(np.full((3, 12), 0.93))
        obl = estimate_expected_makespan(inst, SUUIOblPolicy, 25, rng=10,
                                         max_steps=200_000)
        sem = estimate_expected_makespan(inst, SUUISemPolicy, 25, rng=11,
                                         max_steps=200_000)
        assert sem.mean <= obl.mean * 1.3  # SEM at least comparable

    def test_completes_under_suu_star(self, small_independent):
        res = run_policy(small_independent, SUUISemPolicy(), rng=12, semantics="suu_star")
        assert res.makespan >= 1
