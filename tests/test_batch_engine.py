"""Tests for the trial-vectorized batch kernel (repro.sim.batch).

The load-bearing property is *serial equivalence*: for every policy that
implements the batched-assignment protocol, the batch kernel must produce
makespans that are trial-for-trial identical to the scalar SUU* engine
under shared thresholds — and, because the kernel replays the serial RNG
tree, identical to the serial Monte Carlo estimators under both semantics.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.api.registry import policy_info
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.baselines.naive import (
    BestMachinePolicy,
    RandomAssignmentPolicy,
    RoundRobinPolicy,
    SerialAllMachinesPolicy,
)
from repro.core.suu_i_obl import SUUIOblPolicy, build_obl_schedule
from repro.errors import ScheduleViolationError, SimulationHorizonError
from repro.instance import (
    PrecedenceGraph,
    SUUInstance,
    chain_instance,
    independent_instance,
)
from repro.instance.generators import random_dag_instance
from repro.schedule.base import IDLE, Policy, VectorizedPolicy, supports_batch
from repro.schedule.oblivious import RepeatingObliviousPolicy
from repro.sim import (
    compare_policies,
    draw_thresholds,
    estimate_expected_makespan,
    run_policy,
    run_policy_batch,
)
from repro.util.rng import ensure_rng

@pytest.fixture(autouse=True)
def _serial_replay_discipline(monkeypatch):
    """This module is (part of) the v1 serial-replay bit-identity
    regression suite: scalar-vs-batch equality only holds under
    discipline v1, so pin it regardless of the environment's
    REPRO_DISCIPLINE (the v2 CI leg exercises v2 through the service,
    montecarlo, and test_discipline suites)."""
    monkeypatch.delenv("REPRO_DISCIPLINE", raising=False)


VECTORIZABLE = [
    SerialAllMachinesPolicy,
    RoundRobinPolicy,
    BestMachinePolicy,
    GreedyLRPolicy,
    SUUIOblPolicy,
]


def scalar_samples(instance, factory, n_trials, seed, semantics):
    """The pre-batch serial Monte Carlo loop, verbatim."""
    rngs = ensure_rng(seed).spawn(n_trials)
    return np.array(
        [
            run_policy(instance, factory(), r, semantics=semantics).makespan
            for r in rngs
        ],
        dtype=np.int64,
    )


class TestSerialEquivalence:
    @pytest.mark.parametrize("policy_cls", VECTORIZABLE)
    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_independent_bit_identical(self, policy_cls, semantics):
        inst = independent_instance(10, 4, "uniform", rng=3)
        expect = scalar_samples(inst, policy_cls, 40, 21, semantics)
        got = run_policy_batch(inst, policy_cls, 40, rng=21, semantics=semantics)
        assert got.vectorized
        assert np.array_equal(expect, got.makespans)

    @pytest.mark.parametrize(
        "policy_cls",
        [SerialAllMachinesPolicy, RoundRobinPolicy, BestMachinePolicy,
         GreedyLRPolicy],
    )
    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_precedence_bit_identical(self, policy_cls, semantics):
        inst = random_dag_instance(12, 4, rng=5)
        expect = scalar_samples(inst, policy_cls, 30, 22, semantics)
        got = run_policy_batch(inst, policy_cls, 30, rng=22, semantics=semantics)
        assert got.vectorized
        assert np.array_equal(expect, got.makespans)

    def test_shared_thresholds_trial_for_trial(self, small_independent):
        """Fixed theta matrix: batched run == one scalar run per row."""
        n_trials = 12
        theta = draw_thresholds(
            small_independent.n_jobs * n_trials, np.random.default_rng(9)
        ).reshape(n_trials, small_independent.n_jobs)
        batch = run_policy_batch(
            small_independent,
            GreedyLRPolicy,
            n_trials,
            rng=0,
            semantics="suu_star",
            thresholds=theta,
        )
        for k in range(n_trials):
            res = run_policy(
                small_independent,
                GreedyLRPolicy(),
                np.random.default_rng(k),  # rng must be irrelevant
                semantics="suu_star",
                thresholds=theta[k],
            )
            assert res.makespan == batch.makespans[k]
            assert np.array_equal(res.completion_times, batch.completion_times[k])

    def test_completion_times_and_busy_match_scalar(self):
        inst = chain_instance(9, 3, 3, "uniform", rng=4)
        rngs = ensure_rng(17).spawn(8)
        batch = run_policy_batch(
            inst, SerialAllMachinesPolicy, trial_rngs=rngs, semantics="suu_star"
        )
        rngs = ensure_rng(17).spawn(8)
        for k in range(8):
            res = run_policy(
                inst, SerialAllMachinesPolicy(), rngs[k], semantics="suu_star"
            )
            assert np.array_equal(res.completion_times, batch.completion_times[k])
            assert res.busy_machine_steps == batch.busy_machine_steps[k]

    def test_repeating_oblivious_vectorizes(self, small_independent):
        schedule = build_obl_schedule(small_independent)
        factory = lambda: RepeatingObliviousPolicy(schedule)  # noqa: E731
        expect = scalar_samples(small_independent, factory, 25, 31, "suu_star")
        got = run_policy_batch(
            small_independent, factory, 25, rng=31, semantics="suu_star"
        )
        assert got.vectorized
        assert np.array_equal(expect, got.makespans)


class TestEstimatorRouting:
    """The Monte Carlo front ends must not change a single sample."""

    def test_estimate_matches_serial_loop(self, small_independent):
        for semantics in ("suu", "suu_star"):
            stats = estimate_expected_makespan(
                small_independent, GreedyLRPolicy, 30, rng=11, semantics=semantics
            )
            expect = scalar_samples(
                small_independent, GreedyLRPolicy, 30, 11, semantics
            )
            assert np.array_equal(stats.samples, expect)

    def test_compare_policies_mixed_batch_and_fallback(self, small_independent):
        """Batched + fallback policies share thresholds; deterministic
        policies stay perfectly paired with themselves."""
        out = compare_policies(
            small_independent,
            {
                "g1": GreedyLRPolicy,
                "rand": RandomAssignmentPolicy,
                "g2": GreedyLRPolicy,
            },
            20,
            rng=12,
        )
        assert np.array_equal(out["g1"].samples, out["g2"].samples)
        assert out["rand"].n_trials == 20

    def test_fallback_path_identical_to_serial(self, small_independent):
        batch = run_policy_batch(
            small_independent, RandomAssignmentPolicy, 25, rng=14, semantics="suu"
        )
        assert not batch.vectorized
        expect = scalar_samples(
            small_independent, RandomAssignmentPolicy, 25, 14, "suu"
        )
        assert np.array_equal(batch.makespans, expect)

    def test_fallback_distribution_agrees(self, small_independent):
        """KS: fallback (random policy) vs an independent serial estimate."""
        a = run_policy_batch(
            small_independent, RandomAssignmentPolicy, 150, rng=101
        ).makespans
        b = scalar_samples(
            small_independent, RandomAssignmentPolicy, 150, 202, "suu"
        )
        assert scipy_stats.ks_2samp(a, b).pvalue > 0.001


class TestCSRPrecedence:
    def test_csr_matches_adjacency(self):
        g = PrecedenceGraph(6, [(0, 2), (0, 3), (1, 3), (2, 4), (3, 4), (3, 5)])
        indptr, indices = g.successors_csr()
        for j in range(6):
            assert sorted(g.successors(j)) == sorted(
                indices[indptr[j] : indptr[j + 1]].tolist()
            )

    def test_csr_arrays_read_only(self):
        g = PrecedenceGraph(3, [(0, 1), (1, 2)])
        indptr, indices = g.successors_csr()
        with pytest.raises(ValueError):
            indptr[0] = 7
        with pytest.raises(ValueError):
            indices[0] = 7

    @pytest.mark.parametrize("seed", range(5))
    def test_indegree_updates_match_successor_loop(self, seed):
        """CSR scatter == the engine's old per-completion Python loop."""
        rng = np.random.default_rng(seed)
        n = 30
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.15
        ]
        g = PrecedenceGraph(n, edges)
        done = rng.permutation(n)[: rng.integers(1, n)]

        old = g.in_degree_array()
        for j in done:
            for w in g.successors(int(j)):
                old[w] -= 1

        new = g.in_degree_array()
        _, successors = g.successors_flat(done)
        if successors.size:
            np.subtract.at(new, successors, 1)
        assert np.array_equal(old, new)

    def test_successors_flat_origins(self):
        g = PrecedenceGraph(4, [(0, 1), (0, 2), (1, 3)])
        origins, successors = g.successors_flat(np.array([1, 0]))
        # Job 1 (position 0) contributes [3]; job 0 (position 1) -> [1, 2].
        assert origins.tolist() == [0, 1, 1]
        assert successors.tolist() == [3, 1, 2]

    def test_successors_flat_empty(self):
        g = PrecedenceGraph(3, ())
        origins, successors = g.successors_flat(np.array([0, 1, 2]))
        assert origins.size == 0 and successors.size == 0


class _WritingPolicy(Policy):
    """Tries to mutate the (read-only) state snapshot."""

    name = "writer"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):
        state.remaining[0] = False  # must raise: snapshots are read-only
        return np.zeros(self._m, dtype=np.int64)


class _BatchWritingPolicy(VectorizedPolicy):
    name = "batch-writer"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):  # pragma: no cover - scalar path unused
        return np.zeros(self._m, dtype=np.int64)

    def assign_batch(self, state):
        state.eligible[0, 0] = False
        return np.zeros((state.n_trials, self._m), dtype=np.int64)


class _BadShapeBatchPolicy(VectorizedPolicy):
    name = "bad-shape-batch"

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        return np.zeros((state.n_trials, 1), dtype=np.int64)


class _IneligibleBatchPolicy(VectorizedPolicy):
    """Assigns the last job immediately (violating precedence)."""

    name = "ineligible-batch"

    def start(self, instance, rng):
        self._shape = (None, instance.n_machines)
        self._n = instance.n_jobs

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        return np.full(
            (state.n_trials, self._shape[1]), self._n - 1, dtype=np.int64
        )


class _IdleBatchPolicy(VectorizedPolicy):
    name = "idle-batch"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        return np.full((state.n_trials, self._m), IDLE, dtype=np.int64)


class TestStateInvariants:
    def test_scalar_state_views_read_only(self, tiny_instance):
        with pytest.raises(ValueError, match="read-only"):
            run_policy(tiny_instance, _WritingPolicy(), rng=0)

    def test_batch_state_views_read_only(self, tiny_instance):
        with pytest.raises(ValueError, match="read-only"):
            run_policy_batch(tiny_instance, _BatchWritingPolicy(), 4, rng=0)


class TestBatchValidation:
    def test_bad_shape(self, tiny_instance):
        with pytest.raises(ScheduleViolationError, match="shape"):
            run_policy_batch(tiny_instance, _BadShapeBatchPolicy(), 3, rng=0)

    def test_precedence_violation(self):
        graph = PrecedenceGraph(3, [(0, 1), (1, 2)])
        inst = SUUInstance(np.full((2, 3), 0.5), graph)
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy_batch(inst, _IneligibleBatchPolicy(), 3, rng=0)

    def test_horizon(self, tiny_instance):
        with pytest.raises(SimulationHorizonError, match="unfinished"):
            run_policy_batch(
                tiny_instance, _IdleBatchPolicy(), 3, rng=0, max_steps=10
            )

    def test_bad_semantics(self, tiny_instance):
        with pytest.raises(ValueError, match="semantics"):
            run_policy_batch(
                tiny_instance, GreedyLRPolicy, 3, rng=0, semantics="nope"
            )

    def test_rejects_zero_trials(self, tiny_instance):
        with pytest.raises(ValueError, match="n_trials"):
            run_policy_batch(tiny_instance, GreedyLRPolicy, 0, rng=0)

    def test_rejects_trial_count_mismatch(self, tiny_instance):
        rngs = ensure_rng(0).spawn(4)
        with pytest.raises(ValueError, match="disagrees"):
            run_policy_batch(tiny_instance, GreedyLRPolicy, 3, trial_rngs=rngs)

    def test_rejects_bad_threshold_shape(self, tiny_instance):
        with pytest.raises(ValueError, match="thresholds"):
            run_policy_batch(
                tiny_instance,
                GreedyLRPolicy,
                4,
                rng=0,
                semantics="suu_star",
                thresholds=np.ones(3),
            )


class TestProtocol:
    def test_supports_batch_detection(self):
        assert supports_batch(GreedyLRPolicy())
        assert supports_batch(SUUIOblPolicy())
        assert not supports_batch(RandomAssignmentPolicy())

    def test_registry_capability_flag(self):
        assert policy_info("greedy").vectorized
        assert policy_info("obl").vectorized
        assert policy_info("serial").vectorized
        assert not policy_info("random").vectorized
        assert not policy_info("suu-c").vectorized

    def test_batch_result_consistency(self, small_independent):
        res = run_policy_batch(small_independent, BestMachinePolicy, 10, rng=2)
        assert res.n_trials == 10
        assert np.array_equal(res.makespans, res.completion_times.max(axis=1))
        stats = res.stats()
        assert stats.policy_name == "best-machine"
        assert stats.n_trials == 10
