"""Tests for the pluggable hot-loop kernel axis (``REPRO_KERNEL``).

Five layers of guarantees:

* **Resolution**: explicit argument → ``REPRO_KERNEL`` env var →
  ``"numpy"``, with loud failures on typos (argument and env alike) and
  ``SimConfig`` validating its ``kernel`` / ``substreams`` knobs.
* **Graceful degradation**: requesting ``"numba"`` without numba
  installed logs one warning and silently serves the numpy backend —
  nothing errors, and the fallback is visible in :func:`kernel_info`.
* **Bit-identity**: the ``"python"`` backend — the *same* fused loop
  nests the numba backend compiles, run uncompiled — reproduces the
  numpy reference trial-for-trial across policies × semantics ×
  disciplines; when numba is installed the compiled backend is held to
  the identical contract (skip-marked otherwise).
* **Validation hoist**: per-step assignment validation always runs at
  ``t == 0``; ``validate=False`` (the trusted registry path) skips later
  steps, and the service layer wires the trust flag automatically.
* **Threading**: the knob reaches :func:`simulate` / ``evaluate_grid``
  reports, worker pools, the request server (``/healthz``), and the CLI;
  per-policy substreams (``SimConfig.substreams``) break common random
  numbers in grid sweeps without touching single-policy runs.
* **Trial parallelism** (``REPRO_KERNEL_THREADS``): resolution and
  validation of the thread count, and bit-identity of
  ``kernel_threads > 1`` runs — the trial-shard layer for serial
  backends, prange-in-kernel for threaded numba — against serial runs
  across the same policy × semantics × discipline grid.
"""

import logging

import numpy as np
import pytest

from repro import kernels
from repro.api.scenario import Scenario, SimConfig
from repro.api.service import evaluate_grid, simulate
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.errors import InvalidScenarioError, ScheduleViolationError
from repro.instance import (
    PrecedenceGraph,
    SUUInstance,
    chain_instance,
    independent_instance,
)
from repro.kernels import (
    KERNEL_ENV_VAR,
    KERNEL_THREADS_ENV_VAR,
    KERNELS,
    active_kernel,
    get_backend,
    kernel_context,
    kernel_info,
    numba_available,
    resolve_kernel,
    resolve_kernel_threads,
    warmup,
)
from repro.schedule.base import VectorizedPolicy
from repro.sim.batch import run_policy_batch


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Default every test to unset REPRO_KERNEL / REPRO_KERNEL_THREADS;
    tests that probe the env resolution set them explicitly."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(KERNEL_THREADS_ENV_VAR, raising=False)


requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)

#: Non-default backends held to the bit-identity contract.  The python
#: backend is the numba loop nests uncompiled, so it covers the fused
#: logic even where numba cannot install.
ALT_KERNELS = [
    "python",
    pytest.param("numba", marks=requires_numba),
]


def make_instance(kind):
    if kind == "independent":
        return independent_instance(12, 4, "uniform", rng=3)
    if kind == "chains":
        return chain_instance(12, 4, 3, "uniform", rng=7)
    raise ValueError(kind)


class TestResolution:
    def test_default_is_numpy(self):
        assert resolve_kernel() == "numpy"
        assert KERNELS[0] == "numpy"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_kernel("numpy") == "numpy"

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_kernel() == "python"
        assert SimConfig().resolved_kernel() == "python"

    def test_unknown_argument_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("jax")

    def test_unknown_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "nmba")  # typo
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel()

    def test_simconfig_validates_kernel(self):
        assert SimConfig(kernel="python").resolved_kernel() == "python"
        with pytest.raises(InvalidScenarioError, match="kernel"):
            SimConfig(kernel="jax")

    def test_simconfig_validates_substreams(self):
        SimConfig(substreams="per-policy")  # accepted
        with pytest.raises(InvalidScenarioError, match="substreams"):
            SimConfig(substreams="independent")

    def test_simconfig_round_trips_kernel(self):
        config = SimConfig(kernel="python", substreams="per-policy")
        clone = SimConfig.from_dict(config.to_dict())
        assert clone.kernel == "python"
        assert clone.substreams == "per-policy"


class TestThreadsResolution:
    def test_default_is_serial(self):
        assert resolve_kernel_threads() == 1
        assert SimConfig().resolved_kernel_threads() == 1

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "8")
        assert resolve_kernel_threads(2) == 2

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "3")
        assert resolve_kernel_threads() == 3
        assert SimConfig().resolved_kernel_threads() == 3

    @pytest.mark.parametrize("bad", [0, -2, "two", "1.5"])
    def test_bad_argument_fails_loudly(self, bad):
        with pytest.raises(ValueError, match="kernel_threads"):
            resolve_kernel_threads(bad)

    def test_bad_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="kernel_threads"):
            resolve_kernel_threads()

    def test_simconfig_validates_kernel_threads(self):
        assert SimConfig(kernel_threads=4).resolved_kernel_threads() == 4
        with pytest.raises(InvalidScenarioError, match="kernel_threads"):
            SimConfig(kernel_threads=0)
        with pytest.raises(InvalidScenarioError, match="kernel_threads"):
            SimConfig(kernel_threads="2")

    def test_simconfig_round_trips_kernel_threads(self):
        clone = SimConfig.from_dict(SimConfig(kernel_threads=2).to_dict())
        assert clone.kernel_threads == 2

    def test_serial_backends_share_one_module_across_thread_counts(self):
        assert get_backend("numpy", 4) is get_backend("numpy")
        assert get_backend("python", 4) is get_backend("python")
        assert not getattr(get_backend("numpy", 4), "inkernel_threads", False)

    def test_kernel_info_surfaces_threads(self):
        info = kernel_info("python", 3)
        assert info["threads"] == 3
        assert info["inkernel_threads"] is False

    @requires_numba
    def test_threaded_numba_backend_threads_in_kernel(self):
        backend = get_backend("numba", 2)
        assert backend.name == "numba"
        assert backend.inkernel_threads is True
        assert backend.threads >= 1  # clamped to NUMBA_NUM_THREADS
        info = kernel_info("numba", 2)
        assert info["inkernel_threads"] is True


class TestBackendsAndFallback:
    def test_named_backends(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("python").name == "python"

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_missing_numba_falls_back_and_logs_once(self, monkeypatch, caplog):
        monkeypatch.setattr(kernels, "_numba_fallback_logged", False)
        monkeypatch.delitem(kernels._loaded, ("numba", 1), raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            backend = get_backend("numba")
            assert backend.name == "numpy"
            again = get_backend("numba")
            assert again is backend
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_silence_numba_fallback_suppresses_the_warning(self, monkeypatch,
                                                          caplog):
        # Worker processes call this after the parent already warned at
        # pool construction — a pool of N workers must not re-warn N times.
        monkeypatch.setattr(kernels, "_numba_fallback_logged", False)
        monkeypatch.delitem(kernels._loaded, ("numba", 1), raising=False)
        kernels.silence_numba_fallback()
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert get_backend("numba").name == "numpy"
        assert not [r for r in caplog.records if "falling back" in r.message]

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_missing_numba_never_errors_end_to_end(self, small_independent):
        report = simulate(
            small_independent, "greedy-lr", SimConfig(n_trials=4, seed=1,
                                                      kernel="numba")
        )
        assert report.kernel["requested"] == "numba"
        assert report.kernel["active"] == "numpy"
        assert report.kernel["numba_available"] is False

    @requires_numba
    def test_numba_backend_loads(self):
        assert get_backend("numba").name == "numba"

    def test_kernel_context_scopes_and_restores(self):
        assert active_kernel() == "numpy"
        with kernel_context("python") as backend:
            assert backend.name == "python"
            assert active_kernel() == "python"
            with kernel_context("numpy"):
                assert active_kernel() == "numpy"
            assert active_kernel() == "python"
        assert active_kernel() == "numpy"

    def test_warmup_and_info(self):
        seconds = warmup("python")
        assert seconds >= 0.0
        info = kernel_info("python")
        assert info["requested"] == "python"
        assert info["active"] == "python"
        assert info["warmup_seconds"] is not None
        assert isinstance(info["numba_available"], bool)


class TestBitIdentity:
    """numpy-vs-{python,numba} sample equality across the engine grid."""

    CASES = [
        (GreedyLRPolicy, "independent", "suu"),
        (GreedyLRPolicy, "independent", "suu_star"),
        (SUUISemPolicy, "independent", "suu"),
        (SUUISemPolicy, "independent", "suu_star"),
        (SUUCPolicy, "chains", "suu"),
        (SUUTPolicy, "chains", "suu_star"),
    ]

    @pytest.mark.parametrize("kernel", ALT_KERNELS)
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    @pytest.mark.parametrize(
        "factory,shape,semantics",
        CASES,
        ids=[f"{f.__name__}-{sh}-{sem}" for f, sh, sem in CASES],
    )
    def test_backend_bit_identity(self, factory, shape, semantics,
                                  discipline, kernel):
        inst = make_instance(shape)
        ref = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel="numpy",
        )
        got = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel=kernel,
        )
        assert ref.kernel == "numpy"
        assert got.kernel == kernel
        assert np.array_equal(ref.makespans, got.makespans)
        assert np.array_equal(ref.completion_times, got.completion_times)

    @pytest.mark.parametrize("kernel", ALT_KERNELS)
    def test_env_selected_backend_bit_identity(self, kernel, monkeypatch):
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
        got = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        assert got.kernel == kernel
        assert np.array_equal(ref.makespans, got.makespans)


#: Backends held to the kernel_threads bit-identity contract: numpy and
#: python take the trial-shard route, numba the in-kernel prange route.
THREADED_KERNELS = [
    "numpy",
    "python",
    pytest.param("numba", marks=requires_numba),
]


class TestTrialParallelBitIdentity:
    """``kernel_threads=4`` must be byte-identical to serial on every
    backend × discipline × policy — covering both mechanisms (shard for
    serial backends, prange for the threaded numba flavor)."""

    @pytest.mark.parametrize("kernel", THREADED_KERNELS)
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    @pytest.mark.parametrize(
        "factory,shape,semantics",
        TestBitIdentity.CASES,
        ids=[f"{f.__name__}-{sh}-{sem}" for f, sh, sem in TestBitIdentity.CASES],
    )
    def test_threads_bit_identity(self, factory, shape, semantics,
                                  discipline, kernel):
        inst = make_instance(shape)
        ref = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel=kernel, kernel_threads=1,
        )
        got = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel=kernel, kernel_threads=4,
        )
        assert np.array_equal(ref.makespans, got.makespans)
        assert np.array_equal(ref.completion_times, got.completion_times)
        assert np.array_equal(ref.busy_machine_steps, got.busy_machine_steps)

    def test_env_selected_threads_bit_identity(self, monkeypatch):
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "3")
        got = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        assert np.array_equal(ref.makespans, got.makespans)

    def test_shared_policy_instance_stays_serial_and_correct(self):
        # A pre-built policy (factory=None) cannot be sharded — one
        # stateful instance cannot serve concurrent shard runs — so the
        # threads knob quietly degrades to the serial path.
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy(), 6, rng=9)
        got = run_policy_batch(inst, GreedyLRPolicy(), 6, rng=9,
                               kernel_threads=4)
        assert np.array_equal(ref.makespans, got.makespans)

    def test_subset_lp_reuse_stays_serial(self, monkeypatch):
        # Subset reuse picks donor schedules from the shared process
        # solve cache, whose fill order under concurrent shards depends
        # on thread scheduling — the shard gate declines rather than go
        # nondeterministic run to run (explicitly or env-resolved).
        from repro.sim import batch as batch_mod

        def forbid(*args, **kwargs):  # pragma: no cover - regression trap
            raise AssertionError("lp_reuse='subset' must not shard")

        monkeypatch.setattr(batch_mod, "_run_sharded", forbid)
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 6, rng=9)
        got = run_policy_batch(inst, GreedyLRPolicy, 6, rng=9,
                               kernel_threads=4, lp_reuse="subset")
        assert np.array_equal(ref.makespans, got.makespans)
        monkeypatch.setenv("REPRO_LP_REUSE", "subset")
        got_env = run_policy_batch(inst, GreedyLRPolicy, 6, rng=9,
                                   kernel_threads=4)
        assert np.array_equal(ref.makespans, got_env.makespans)

    def test_single_trial_stays_serial(self):
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 1, rng=9)
        got = run_policy_batch(inst, GreedyLRPolicy, 1, rng=9,
                               kernel_threads=4)
        assert np.array_equal(ref.makespans, got.makespans)

    def test_more_threads_than_trials(self):
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 3, rng=9)
        got = run_policy_batch(inst, GreedyLRPolicy, 3, rng=9,
                               kernel_threads=16)
        assert np.array_equal(ref.makespans, got.makespans)


class _EagerChainPolicy(VectorizedPolicy):
    """Machine 0 always works job 0 (completed assignments are skipped
    harmlessly); machine 1 works ``early_job`` at the first step and job
    1 from then on — a precedence violation in every trial whose job 0
    is still unfinished."""

    name = "eager-chain"

    def __init__(self, early_job=0):
        self._early = early_job
        self._step = 0

    def start(self, instance, rng):
        pass

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        second = self._early if self._step == 0 else 1
        self._step += 1
        out = np.zeros((state.n_trials, 2), dtype=np.int64)
        out[:, 1] = second
        return out


class _BadJobPolicy(VectorizedPolicy):
    name = "bad-job"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        return np.full((state.n_trials, self._m), -5, dtype=np.int64)


def _chain2_instance():
    graph = PrecedenceGraph(2, [(0, 1)])
    return SUUInstance(np.full((2, 2), 0.5), graph)


class TestValidateKnob:
    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_first_step_always_validated(self, kernel):
        # Even trusted runs check t == 0: a policy broken from the start
        # fails fast regardless of the knob.
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy_batch(
                _chain2_instance(), lambda: _EagerChainPolicy(early_job=1),
                3, rng=0, kernel=kernel, validate=False,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_range_check_at_first_step(self, kernel):
        with pytest.raises(ScheduleViolationError, match="out-of-range"):
            run_policy_batch(
                _chain2_instance(), _BadJobPolicy, 3, rng=0,
                kernel=kernel, validate=False,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_late_violation_caught_when_validating(self, kernel):
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy_batch(
                _chain2_instance(), _EagerChainPolicy, 8, rng=0,
                kernel=kernel, validate=True,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_late_violation_skipped_when_trusted(self, kernel):
        # The trust contract: after the first step the driver stops
        # checking, so the (broken) policy runs to completion unharmed.
        result = run_policy_batch(
            _chain2_instance(), _EagerChainPolicy, 8, rng=0,
            kernel=kernel, validate=False,
        )
        assert (result.makespans >= 1).all()

    def test_registry_policies_run_trusted(self, small_independent, monkeypatch):
        import repro.api.service as service
        import repro.sim.batch as batch

        seen = []

        def spy(*args, **kwargs):
            seen.append(kwargs.get("validate"))
            return batch.run_policy_batch(*args, **kwargs)

        monkeypatch.setattr(service, "run_policy_batch", spy)
        config = SimConfig(n_trials=4, seed=1)
        simulate(small_independent, "greedy-lr", config)
        simulate(small_independent, GreedyLRPolicy, config)
        assert seen == [False, True]


class TestSubstreams:
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_shared_default_keeps_common_random_numbers(self, discipline):
        sc = Scenario(shape="independent", n_jobs=10, n_machines=4,
                      model="specialist", seed=3)
        config = SimConfig(n_trials=8, seed=5, discipline=discipline)
        a, b = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert np.array_equal(a.stats.samples, b.stats.samples)

    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_per_policy_substreams_are_independent(self, discipline):
        sc = Scenario(shape="independent", n_jobs=10, n_machines=4,
                      model="specialist", seed=3)
        config = SimConfig(n_trials=8, seed=5, discipline=discipline,
                           substreams="per-policy")
        a, b = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert not np.array_equal(a.stats.samples, b.stats.samples)
        # Deterministic in the seed: a second sweep reproduces both cells.
        a2, b2 = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert np.array_equal(a.stats.samples, a2.stats.samples)
        assert np.array_equal(b.stats.samples, b2.stats.samples)

    def test_single_policy_simulate_unaffected(self, small_independent):
        shared = simulate(small_independent, "greedy-lr",
                          SimConfig(n_trials=6, seed=2))
        per = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2, substreams="per-policy"))
        assert np.array_equal(shared.stats.samples, per.stats.samples)


class TestThreading:
    def test_report_surfaces_kernel(self, small_independent):
        report = simulate(small_independent, "greedy-lr",
                          SimConfig(n_trials=4, seed=1, kernel="python"))
        assert report.kernel["requested"] == "python"
        assert report.kernel["active"] == "python"
        payload = report.to_dict()
        assert payload["kernel"]["active"] == "python"
        assert payload["config"]["kernel"] == "python"

    def test_grid_reports_surface_kernel(self):
        sc = Scenario(shape="independent", n_jobs=8, n_machines=3,
                      model="specialist", seed=1)
        reports = evaluate_grid([sc], ("sem",),
                                config=SimConfig(n_trials=4, seed=1,
                                                 kernel="python"))
        assert reports[0].kernel["active"] == "python"

    def test_config_kernel_changes_no_sample(self, small_independent):
        ref = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2))
        alt = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2, kernel="python"))
        assert np.array_equal(ref.stats.samples, alt.stats.samples)

    def test_healthz_reports_kernel(self, monkeypatch):
        from repro.server.app import SchedulingService

        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        status, payload = SchedulingService().handle("GET", "/healthz", None)
        assert status == 200
        assert payload["kernel"]["active"] == "python"

    def test_server_simulate_accepts_kernel_config(self):
        from repro.server.app import SchedulingService

        body = {
            "scenario": {"shape": "independent", "n_jobs": 8,
                         "n_machines": 3, "model": "specialist", "seed": 1},
            "policy": "sem",
            "config": {"n_trials": 4, "seed": 1, "kernel": "python"},
        }
        status, payload = SchedulingService().handle("POST", "/simulate", body)
        assert status == 200
        assert payload["config"]["kernel"] == "python"
        assert payload["kernel"]["active"] == "python"

    def test_warm_pool_executor_reports_kernel(self):
        from repro.server.executors import make_executor

        executor = make_executor("warm-pool", 1, kernel="python")
        try:
            assert executor.stats()["kernel"] == "python"
            assert not executor.warm  # stats alone must not build the pool
        finally:
            executor.close()

    def test_cli_run_accepts_kernel(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "inst.json")
        assert main(["generate", "--shape", "independent", "--jobs", "8",
                     "--machines", "3", "--seed", "1", "--out", path]) == 0
        assert main(["run", path, "--policy", "greedy-lr", "--trials", "4",
                     "--kernel", "python"]) == 0
        out = capsys.readouterr().out
        assert "kernel:   python" in out

    def test_cli_rejects_unknown_kernel(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "whatever.json", "--kernel", "jax"])

    def test_report_surfaces_kernel_threads(self, small_independent):
        report = simulate(
            small_independent, "greedy-lr",
            SimConfig(n_trials=4, seed=1, kernel="python", kernel_threads=2),
        )
        assert report.kernel["threads"] == 2
        assert report.kernel["inkernel_threads"] is False
        assert report.to_dict()["config"]["kernel_threads"] == 2

    def test_healthz_reports_kernel_threads(self, monkeypatch):
        from repro.server.app import SchedulingService

        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, "2")
        status, payload = SchedulingService().handle("GET", "/healthz", None)
        assert status == 200
        assert payload["kernel"]["threads"] == 2

    def test_warm_pool_executor_reports_kernel_threads(self):
        from repro.server.executors import make_executor

        executor = make_executor("warm-pool", 1, kernel="python",
                                 kernel_threads=2)
        try:
            assert executor.stats()["kernel_threads"] == 2
            assert not executor.warm  # stats alone must not build the pool
        finally:
            executor.close()

    def test_config_kernel_threads_changes_no_sample(self, small_independent):
        ref = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2))
        alt = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2, kernel_threads=2))
        assert np.array_equal(ref.stats.samples, alt.stats.samples)

    def test_cli_run_accepts_kernel_threads(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "inst.json")
        assert main(["generate", "--shape", "independent", "--jobs", "8",
                     "--machines", "3", "--seed", "1", "--out", path]) == 0
        assert main(["run", path, "--policy", "greedy-lr", "--trials", "4",
                     "--kernel", "python", "--kernel-threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "kernel:   python (threads=2)" in out
