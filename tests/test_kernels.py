"""Tests for the pluggable hot-loop kernel axis (``REPRO_KERNEL``).

Five layers of guarantees:

* **Resolution**: explicit argument → ``REPRO_KERNEL`` env var →
  ``"numpy"``, with loud failures on typos (argument and env alike) and
  ``SimConfig`` validating its ``kernel`` / ``substreams`` knobs.
* **Graceful degradation**: requesting ``"numba"`` without numba
  installed logs one warning and silently serves the numpy backend —
  nothing errors, and the fallback is visible in :func:`kernel_info`.
* **Bit-identity**: the ``"python"`` backend — the *same* fused loop
  nests the numba backend compiles, run uncompiled — reproduces the
  numpy reference trial-for-trial across policies × semantics ×
  disciplines; when numba is installed the compiled backend is held to
  the identical contract (skip-marked otherwise).
* **Validation hoist**: per-step assignment validation always runs at
  ``t == 0``; ``validate=False`` (the trusted registry path) skips later
  steps, and the service layer wires the trust flag automatically.
* **Threading**: the knob reaches :func:`simulate` / ``evaluate_grid``
  reports, worker pools, the request server (``/healthz``), and the CLI;
  per-policy substreams (``SimConfig.substreams``) break common random
  numbers in grid sweeps without touching single-policy runs.
"""

import logging

import numpy as np
import pytest

from repro import kernels
from repro.api.scenario import Scenario, SimConfig
from repro.api.service import evaluate_grid, simulate
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.errors import InvalidScenarioError, ScheduleViolationError
from repro.instance import (
    PrecedenceGraph,
    SUUInstance,
    chain_instance,
    independent_instance,
)
from repro.kernels import (
    KERNEL_ENV_VAR,
    KERNELS,
    active_kernel,
    get_backend,
    kernel_context,
    kernel_info,
    numba_available,
    resolve_kernel,
    warmup,
)
from repro.schedule.base import VectorizedPolicy
from repro.sim.batch import run_policy_batch


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Default every test to an unset REPRO_KERNEL; tests that probe the
    env resolution set it explicitly."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)


requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)

#: Non-default backends held to the bit-identity contract.  The python
#: backend is the numba loop nests uncompiled, so it covers the fused
#: logic even where numba cannot install.
ALT_KERNELS = [
    "python",
    pytest.param("numba", marks=requires_numba),
]


def make_instance(kind):
    if kind == "independent":
        return independent_instance(12, 4, "uniform", rng=3)
    if kind == "chains":
        return chain_instance(12, 4, 3, "uniform", rng=7)
    raise ValueError(kind)


class TestResolution:
    def test_default_is_numpy(self):
        assert resolve_kernel() == "numpy"
        assert KERNELS[0] == "numpy"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_kernel("numpy") == "numpy"

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert resolve_kernel() == "python"
        assert SimConfig().resolved_kernel() == "python"

    def test_unknown_argument_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("jax")

    def test_unknown_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "nmba")  # typo
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel()

    def test_simconfig_validates_kernel(self):
        assert SimConfig(kernel="python").resolved_kernel() == "python"
        with pytest.raises(InvalidScenarioError, match="kernel"):
            SimConfig(kernel="jax")

    def test_simconfig_validates_substreams(self):
        SimConfig(substreams="per-policy")  # accepted
        with pytest.raises(InvalidScenarioError, match="substreams"):
            SimConfig(substreams="independent")

    def test_simconfig_round_trips_kernel(self):
        config = SimConfig(kernel="python", substreams="per-policy")
        clone = SimConfig.from_dict(config.to_dict())
        assert clone.kernel == "python"
        assert clone.substreams == "per-policy"


class TestBackendsAndFallback:
    def test_named_backends(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("python").name == "python"

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_missing_numba_falls_back_and_logs_once(self, monkeypatch, caplog):
        monkeypatch.setattr(kernels, "_numba_fallback_logged", False)
        monkeypatch.delitem(kernels._loaded, "numba", raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            backend = get_backend("numba")
            assert backend.name == "numpy"
            again = get_backend("numba")
            assert again is backend
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_missing_numba_never_errors_end_to_end(self, small_independent):
        report = simulate(
            small_independent, "greedy-lr", SimConfig(n_trials=4, seed=1,
                                                      kernel="numba")
        )
        assert report.kernel["requested"] == "numba"
        assert report.kernel["active"] == "numpy"
        assert report.kernel["numba_available"] is False

    @requires_numba
    def test_numba_backend_loads(self):
        assert get_backend("numba").name == "numba"

    def test_kernel_context_scopes_and_restores(self):
        assert active_kernel() == "numpy"
        with kernel_context("python") as backend:
            assert backend.name == "python"
            assert active_kernel() == "python"
            with kernel_context("numpy"):
                assert active_kernel() == "numpy"
            assert active_kernel() == "python"
        assert active_kernel() == "numpy"

    def test_warmup_and_info(self):
        seconds = warmup("python")
        assert seconds >= 0.0
        info = kernel_info("python")
        assert info["requested"] == "python"
        assert info["active"] == "python"
        assert info["warmup_seconds"] is not None
        assert isinstance(info["numba_available"], bool)


class TestBitIdentity:
    """numpy-vs-{python,numba} sample equality across the engine grid."""

    CASES = [
        (GreedyLRPolicy, "independent", "suu"),
        (GreedyLRPolicy, "independent", "suu_star"),
        (SUUISemPolicy, "independent", "suu"),
        (SUUISemPolicy, "independent", "suu_star"),
        (SUUCPolicy, "chains", "suu"),
        (SUUTPolicy, "chains", "suu_star"),
    ]

    @pytest.mark.parametrize("kernel", ALT_KERNELS)
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    @pytest.mark.parametrize(
        "factory,shape,semantics",
        CASES,
        ids=[f"{f.__name__}-{sh}-{sem}" for f, sh, sem in CASES],
    )
    def test_backend_bit_identity(self, factory, shape, semantics,
                                  discipline, kernel):
        inst = make_instance(shape)
        ref = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel="numpy",
        )
        got = run_policy_batch(
            inst, factory, 8, rng=21, semantics=semantics,
            discipline=discipline, kernel=kernel,
        )
        assert ref.kernel == "numpy"
        assert got.kernel == kernel
        assert np.array_equal(ref.makespans, got.makespans)
        assert np.array_equal(ref.completion_times, got.completion_times)

    @pytest.mark.parametrize("kernel", ALT_KERNELS)
    def test_env_selected_backend_bit_identity(self, kernel, monkeypatch):
        inst = make_instance("independent")
        ref = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
        got = run_policy_batch(inst, GreedyLRPolicy, 8, rng=4)
        assert got.kernel == kernel
        assert np.array_equal(ref.makespans, got.makespans)


class _EagerChainPolicy(VectorizedPolicy):
    """Machine 0 always works job 0 (completed assignments are skipped
    harmlessly); machine 1 works ``early_job`` at the first step and job
    1 from then on — a precedence violation in every trial whose job 0
    is still unfinished."""

    name = "eager-chain"

    def __init__(self, early_job=0):
        self._early = early_job
        self._step = 0

    def start(self, instance, rng):
        pass

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        second = self._early if self._step == 0 else 1
        self._step += 1
        out = np.zeros((state.n_trials, 2), dtype=np.int64)
        out[:, 1] = second
        return out


class _BadJobPolicy(VectorizedPolicy):
    name = "bad-job"

    def start(self, instance, rng):
        self._m = instance.n_machines

    def assign(self, state):  # pragma: no cover - scalar path unused
        raise NotImplementedError

    def assign_batch(self, state):
        return np.full((state.n_trials, self._m), -5, dtype=np.int64)


def _chain2_instance():
    graph = PrecedenceGraph(2, [(0, 1)])
    return SUUInstance(np.full((2, 2), 0.5), graph)


class TestValidateKnob:
    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_first_step_always_validated(self, kernel):
        # Even trusted runs check t == 0: a policy broken from the start
        # fails fast regardless of the knob.
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy_batch(
                _chain2_instance(), lambda: _EagerChainPolicy(early_job=1),
                3, rng=0, kernel=kernel, validate=False,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_range_check_at_first_step(self, kernel):
        with pytest.raises(ScheduleViolationError, match="out-of-range"):
            run_policy_batch(
                _chain2_instance(), _BadJobPolicy, 3, rng=0,
                kernel=kernel, validate=False,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_late_violation_caught_when_validating(self, kernel):
        with pytest.raises(ScheduleViolationError, match="predecessors"):
            run_policy_batch(
                _chain2_instance(), _EagerChainPolicy, 8, rng=0,
                kernel=kernel, validate=True,
            )

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_late_violation_skipped_when_trusted(self, kernel):
        # The trust contract: after the first step the driver stops
        # checking, so the (broken) policy runs to completion unharmed.
        result = run_policy_batch(
            _chain2_instance(), _EagerChainPolicy, 8, rng=0,
            kernel=kernel, validate=False,
        )
        assert (result.makespans >= 1).all()

    def test_registry_policies_run_trusted(self, small_independent, monkeypatch):
        import repro.api.service as service
        import repro.sim.batch as batch

        seen = []

        def spy(*args, **kwargs):
            seen.append(kwargs.get("validate"))
            return batch.run_policy_batch(*args, **kwargs)

        monkeypatch.setattr(service, "run_policy_batch", spy)
        config = SimConfig(n_trials=4, seed=1)
        simulate(small_independent, "greedy-lr", config)
        simulate(small_independent, GreedyLRPolicy, config)
        assert seen == [False, True]


class TestSubstreams:
    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_shared_default_keeps_common_random_numbers(self, discipline):
        sc = Scenario(shape="independent", n_jobs=10, n_machines=4,
                      model="specialist", seed=3)
        config = SimConfig(n_trials=8, seed=5, discipline=discipline)
        a, b = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert np.array_equal(a.stats.samples, b.stats.samples)

    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_per_policy_substreams_are_independent(self, discipline):
        sc = Scenario(shape="independent", n_jobs=10, n_machines=4,
                      model="specialist", seed=3)
        config = SimConfig(n_trials=8, seed=5, discipline=discipline,
                           substreams="per-policy")
        a, b = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert not np.array_equal(a.stats.samples, b.stats.samples)
        # Deterministic in the seed: a second sweep reproduces both cells.
        a2, b2 = evaluate_grid([sc], ("sem", "sem"), config=config)
        assert np.array_equal(a.stats.samples, a2.stats.samples)
        assert np.array_equal(b.stats.samples, b2.stats.samples)

    def test_single_policy_simulate_unaffected(self, small_independent):
        shared = simulate(small_independent, "greedy-lr",
                          SimConfig(n_trials=6, seed=2))
        per = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2, substreams="per-policy"))
        assert np.array_equal(shared.stats.samples, per.stats.samples)


class TestThreading:
    def test_report_surfaces_kernel(self, small_independent):
        report = simulate(small_independent, "greedy-lr",
                          SimConfig(n_trials=4, seed=1, kernel="python"))
        assert report.kernel["requested"] == "python"
        assert report.kernel["active"] == "python"
        payload = report.to_dict()
        assert payload["kernel"]["active"] == "python"
        assert payload["config"]["kernel"] == "python"

    def test_grid_reports_surface_kernel(self):
        sc = Scenario(shape="independent", n_jobs=8, n_machines=3,
                      model="specialist", seed=1)
        reports = evaluate_grid([sc], ("sem",),
                                config=SimConfig(n_trials=4, seed=1,
                                                 kernel="python"))
        assert reports[0].kernel["active"] == "python"

    def test_config_kernel_changes_no_sample(self, small_independent):
        ref = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2))
        alt = simulate(small_independent, "greedy-lr",
                       SimConfig(n_trials=6, seed=2, kernel="python"))
        assert np.array_equal(ref.stats.samples, alt.stats.samples)

    def test_healthz_reports_kernel(self, monkeypatch):
        from repro.server.app import SchedulingService

        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        status, payload = SchedulingService().handle("GET", "/healthz", None)
        assert status == 200
        assert payload["kernel"]["active"] == "python"

    def test_server_simulate_accepts_kernel_config(self):
        from repro.server.app import SchedulingService

        body = {
            "scenario": {"shape": "independent", "n_jobs": 8,
                         "n_machines": 3, "model": "specialist", "seed": 1},
            "policy": "sem",
            "config": {"n_trials": 4, "seed": 1, "kernel": "python"},
        }
        status, payload = SchedulingService().handle("POST", "/simulate", body)
        assert status == 200
        assert payload["config"]["kernel"] == "python"
        assert payload["kernel"]["active"] == "python"

    def test_warm_pool_executor_reports_kernel(self):
        from repro.server.executors import make_executor

        executor = make_executor("warm-pool", 1, kernel="python")
        try:
            assert executor.stats()["kernel"] == "python"
            assert not executor.warm  # stats alone must not build the pool
        finally:
            executor.close()

    def test_cli_run_accepts_kernel(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "inst.json")
        assert main(["generate", "--shape", "independent", "--jobs", "8",
                     "--machines", "3", "--seed", "1", "--out", path]) == 0
        assert main(["run", path, "--policy", "greedy-lr", "--trials", "4",
                     "--kernel", "python"]) == 0
        out = capsys.readouterr().out
        assert "kernel:   python" in out

    def test_cli_rejects_unknown_kernel(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "whatever.json", "--kernel", "jax"])
