"""Request executors and solve-cache hygiene: lifecycle, reuse, identity."""

import numpy as np
import pytest

from repro.api import Scenario, SimConfig, simulate
from repro.core.phased import ProcessSolveCache
from repro.server.executors import (
    EXECUTOR_KINDS,
    SerialExecutor,
    WarmPoolExecutor,
    default_executor,
    make_executor,
    set_default_executor,
)

SCENARIO = Scenario(shape="independent", n_jobs=8, n_machines=3,
                    model="uniform", seed=7)
QUICK = SimConfig(n_trials=8, seed=3)


class TestProcessSolveCacheLRU:
    """Satellite: LRU entry eviction (not insertion-order FIFO)."""

    def _fill(self, cache, keys):
        for key in keys:
            cache.lookup(key, lambda: object())

    def test_eviction_drops_least_recently_used(self):
        cache = ProcessSolveCache(max_entries=3)
        k = [("kind", f"d{i}", i) for i in range(4)]
        self._fill(cache, k[:3])
        cache.lookup(k[0], lambda: object())  # hit: refreshes k0, not k1
        self._fill(cache, [k[3]])  # over capacity
        assert k[0] in cache._entries
        assert k[1] not in cache._entries  # LRU victim
        assert set(cache._entries) == {k[0], k[2], k[3]}

    def test_hit_returns_cached_value_and_counts(self):
        cache = ProcessSolveCache(max_entries=4)
        sentinel = object()
        first = cache.lookup(("kind", "d", 1), lambda: sentinel)
        second = cache.lookup(("kind", "d", 1), lambda: object())
        assert first is sentinel and second is sentinel
        assert (cache.solves, cache.hits) == (1, 1)

    def test_eviction_cleans_digest_bookkeeping(self):
        cache = ProcessSolveCache(max_entries=1)
        cache.lookup(("kind", "a", 1), lambda: 1)
        cache.lookup(("kind", "b", 2), lambda: 2)
        assert set(cache._digests) == {"b"}
        assert len(cache._entries) == 1

    def test_disabled_cache_always_solves(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        cache = ProcessSolveCache(max_entries=4)
        cache.lookup(("kind", "d", 1), lambda: 1)
        cache.lookup(("kind", "d", 1), lambda: 1)
        assert cache.solves == 2
        assert not cache._entries


class TestProcessSolveCacheInstanceScoping:
    """Satellite: per-instance-digest grouping and wholesale eviction."""

    def test_instance_cap_evicts_oldest_instance_wholesale(self):
        cache = ProcessSolveCache(max_entries=100, max_instances=2)
        cache.lookup(("lp", "dig-a", 1), lambda: 1)
        cache.lookup(("lp", "dig-a", 2), lambda: 2)
        cache.lookup(("lp", "dig-b", 1), lambda: 3)
        cache.lookup(("lp", "dig-c", 1), lambda: 4)  # third instance
        assert "dig-a" not in cache._digests
        assert all(k[1] != "dig-a" for k in cache._entries)
        assert set(cache._digests) == {"dig-b", "dig-c"}

    def test_hit_refreshes_instance_recency(self):
        cache = ProcessSolveCache(max_entries=100, max_instances=2)
        cache.lookup(("lp", "dig-a", 1), lambda: 1)
        cache.lookup(("lp", "dig-b", 1), lambda: 2)
        cache.lookup(("lp", "dig-a", 1), lambda: 1)  # hit: a is now recent
        cache.lookup(("lp", "dig-c", 1), lambda: 3)
        assert set(cache._digests) == {"dig-a", "dig-c"}

    def test_evict_instance_drops_all_its_entries(self):
        cache = ProcessSolveCache(max_entries=100, max_instances=8)
        for i in range(3):
            cache.lookup(("lp", "dig-a", i), lambda: i)
        cache.lookup(("lp", "dig-b", 0), lambda: 9)
        assert cache.evict_instance("dig-a") == 3
        assert set(cache._entries) == {("lp", "dig-b", 0)}
        assert cache.evict_instance("dig-a") == 0  # idempotent

    def test_digestless_keys_are_tolerated(self):
        cache = ProcessSolveCache(max_entries=4, max_instances=1)
        cache.lookup("bare-key", lambda: 1)
        cache.lookup(("solo",), lambda: 2)
        assert cache.lookup("bare-key", lambda: 3) == 1
        assert not cache._digests


class TestSerialExecutor:
    def test_acquire_is_in_process_and_counts(self):
        ex = SerialExecutor()
        assert ex.acquire() is None
        assert ex.acquire() is None
        assert ex.requests == 2

    def test_stats_shape(self):
        ex = SerialExecutor()
        stats = ex.stats()
        assert stats["kind"] == "serial"
        assert stats["backend"] == "serial"
        assert {"entries", "instances", "solves", "hits"} <= set(
            stats["solve_cache"]
        )

    def test_context_manager_and_injection(self):
        baseline = simulate(SCENARIO, "greedy", QUICK)
        with SerialExecutor() as ex:
            report = simulate(SCENARIO, "greedy", QUICK, executor=ex)
        assert ex.requests == 1
        assert np.array_equal(report.stats.samples, baseline.stats.samples)


class TestExecutorRegistry:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        warm = make_executor("warm-pool", n_workers=3, solve_cache_entries=7)
        assert isinstance(warm, WarmPoolExecutor)
        assert warm.n_workers == 3 and warm.solve_cache_entries == 7
        assert not warm.warm  # lazily built: nothing spawned yet
        assert set(EXECUTOR_KINDS) == {"serial", "warm-pool"}

    def test_make_executor_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor("gpu")

    def test_default_executor_is_lazy_serial_and_replaceable(self):
        previous = set_default_executor(None)
        try:
            first = default_executor()
            assert isinstance(first, SerialExecutor)
            assert default_executor() is first
            mine = SerialExecutor()
            assert set_default_executor(mine) is first
            assert default_executor() is mine
        finally:
            set_default_executor(previous)


class TestWarmPoolExecutor:
    """One pool spawn for the whole class — spawn costs seconds."""

    @pytest.fixture(scope="class")
    def warm(self):
        with WarmPoolExecutor(n_workers=1, solve_cache_entries=64) as ex:
            yield ex

    def test_lifecycle_reuse_identity_and_cache_warmth(self, warm):
        assert not warm.warm
        assert warm.cache_stats() is None  # cold: nothing to sample
        warm.prewarm()
        assert warm.warm and warm.pools_built == 1
        assert warm.acquire() is warm.acquire()  # one pool, reused
        assert warm.requests == 2

        # "sem" runs the LP round-schedule pipeline, so repeat requests
        # exercise the worker's solve cache ("greedy" never solves).
        baseline = simulate(SCENARIO, "sem", QUICK)
        first = simulate(SCENARIO, "sem", QUICK, executor=warm)
        before = warm.cache_stats()
        second = simulate(SCENARIO, "sem", QUICK, executor=warm)
        after = warm.cache_stats()

        # Bit-identity: transport (serial vs warm worker) never changes
        # samples, and an injected executor forces pool dispatch even for
        # batches below the serial fast-path threshold.
        assert np.array_equal(first.stats.samples, baseline.stats.samples)
        assert np.array_equal(second.stats.samples, baseline.stats.samples)
        # Warm reuse: the repeat request hits the worker's solve cache.
        assert after["hits"] > before["hits"]
        assert after["solves"] == before["solves"]
        assert warm.pools_built == 1  # never respawned along the way

        # The probe also reports the worker's own kernel state — the
        # authoritative view of what backend warm workers actually run.
        assert after["kernel"]["active"] in ("numpy", "numba")
        assert after["kernel"]["threads"] >= 1

        stats = warm.stats()
        assert stats["kind"] == "warm-pool"
        assert stats["backend"] == "process"
        assert stats["warm"] is True
        assert stats["worker_solve_cache"]["hits"] >= after["hits"]

    def test_close_releases_pool_and_stays_reusable(self):
        ex = WarmPoolExecutor(n_workers=1)
        assert ex.acquire() is not None
        ex.close()
        assert not ex.warm
        # Reusable after close: the next acquire rebuilds.
        assert ex.acquire() is not None
        assert ex.pools_built == 2
        ex.close()
