"""Tests for (LP1) and the Lemma 2 rounding (repro.core.lp1 / rounding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp1 import solve_lp1
from repro.core.rounding import round_assignment
from repro.instance import SUUInstance, independent_instance
from repro.schedule.oblivious import FiniteObliviousSchedule


class TestSolveLP1:
    def test_single_job_single_machine(self):
        # q = 0.5 -> l = 1 -> l' = 1/2 at L = 1/2, so t* = 1 machine-step...
        # capped l' = min(1, 0.5) = 0.5; need 0.5 mass -> 1 step.
        inst = SUUInstance(np.array([[0.5]]))
        rel = solve_lp1(inst, target=0.5)
        assert rel.t_star == pytest.approx(1.0)

    def test_mass_target_met_fractionally(self, small_independent):
        rel = solve_lp1(small_independent, target=0.5)
        mass = rel.mass_per_job()
        for j in rel.jobs:
            assert mass[j] >= 0.5 * (1 - 1e-6)

    def test_load_bounded_by_t_star(self, small_independent):
        rel = solve_lp1(small_independent, target=0.5)
        loads = rel.x.sum(axis=1)
        assert loads.max() <= rel.t_star * (1 + 1e-6)

    def test_subset_only(self, small_independent):
        rel = solve_lp1(small_independent, jobs=[1, 3], target=0.5)
        assert rel.jobs == (1, 3)
        others = [j for j in range(small_independent.n_jobs) if j not in (1, 3)]
        assert rel.x[:, others].sum() == 0.0

    def test_empty_subset(self, small_independent):
        rel = solve_lp1(small_independent, jobs=[], target=0.5)
        assert rel.t_star == 0.0
        assert rel.jobs == ()

    def test_monotone_in_target(self, small_independent):
        t_half = solve_lp1(small_independent, target=0.5).t_star
        t_two = solve_lp1(small_independent, target=2.0).t_star
        assert t_two >= t_half

    def test_rejects_nonpositive_target(self, small_independent):
        with pytest.raises(ValueError):
            solve_lp1(small_independent, target=0.0)

    def test_rejects_bad_jobs(self, small_independent):
        with pytest.raises(ValueError):
            solve_lp1(small_independent, jobs=[99])

    def test_capping_changes_nothing_for_integral_use(self):
        # A machine with huge mass: l' = L, so one step suffices.
        inst = SUUInstance(np.array([[1e-9]]))  # l ~ 30
        rel = solve_lp1(inst, target=0.5)
        assert rel.t_star == pytest.approx(1.0)
        assert rel.ell_capped[0, 0] == pytest.approx(0.5)


class TestRounding:
    @pytest.mark.parametrize("model", ["uniform", "specialist", "powerlaw"])
    @pytest.mark.parametrize("target", [0.5, 1.0, 4.0])
    def test_feasibility(self, model, target):
        inst = independent_instance(15, 5, model, rng=3)
        rel = solve_lp1(inst, target=target)
        rounded = round_assignment(rel)
        mass = rounded.mass_per_job(rel.ell_capped)
        for j in rel.jobs:
            assert mass[j] >= target * (1 - 1e-6)

    def test_load_bound(self):
        inst = independent_instance(20, 6, "specialist", rng=4)
        rel = solve_lp1(inst, target=0.5)
        rounded = round_assignment(rel)
        assert rounded.load <= int(np.ceil(6 * max(rel.t_star, rel.x.sum(axis=1).max()))) + 1

    def test_integrality(self, small_independent):
        rel = solve_lp1(small_independent, target=0.5)
        rounded = round_assignment(rel)
        assert rounded.x.dtype.kind == "i"
        assert (rounded.x >= 0).all()

    def test_per_job_caps_respected(self):
        inst = independent_instance(12, 4, "uniform", rng=5)
        rel = solve_lp1(inst, target=1.0)
        caps = np.full(inst.n_jobs, 50, dtype=np.int64)
        rounded = round_assignment(rel, per_job_caps=caps)
        assert (rounded.x <= 50).all()

    def test_empty_jobs(self, small_independent):
        rel = solve_lp1(small_independent, jobs=[], target=0.5)
        rounded = round_assignment(rel)
        assert rounded.x.sum() == 0

    def test_rejects_bad_scale(self, small_independent):
        rel = solve_lp1(small_independent, target=0.5)
        with pytest.raises(ValueError):
            round_assignment(rel, scale=0)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_always_feasible_at_scale_6(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        m = int(rng.integers(2, 8))
        model = ["uniform", "specialist", "powerlaw", "related"][int(rng.integers(4))]
        inst = independent_instance(n, m, model, rng=rng)
        rel = solve_lp1(inst, target=0.5)
        rounded = round_assignment(rel)  # raises RoundingError on miss
        assert rounded.load >= 1

    def test_schedule_gives_constant_success(self):
        # The oblivious schedule built from the rounding gives every job a
        # per-pass failure probability at most 2^-L.
        inst = independent_instance(18, 5, "specialist", rng=6)
        rel = solve_lp1(inst, target=0.5)
        rounded = round_assignment(rel)
        sched = FiniteObliviousSchedule.from_assignment(rounded)
        mass = sched.mass_per_step(inst.ell).sum(axis=0)
        # Uncapped masses dominate capped ones.
        assert (mass >= 0.5 * (1 - 1e-6)).all()


class TestRoundingGroups:
    def test_grouping_loses_at_most_factor_two(self):
        # Build a job where all machines share a group: rounding exact.
        q = np.full((4, 1), 0.5)  # l = 1, group 0
        inst = SUUInstance(q)
        rel = solve_lp1(inst, target=2.0)
        rounded = round_assignment(rel)
        mass = rounded.mass_per_job(rel.ell_capped)[0]
        assert mass >= 2.0
        # Scale-6 flooring cannot overshoot absurdly either.
        assert mass <= 6 * 2.0 + 4.0
