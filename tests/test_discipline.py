"""Tests for the versioned RNG discipline axis (v1 serial replay / v2
batch native).

Four layers of guarantees:

* **v1 bit-identity regression**: under ``discipline="v1"`` every
  registered policy, on its canonical precedence shape and under both
  semantics, produces batch samples trial-for-trial identical to the
  pre-batch scalar loop (the contract PR 2/3 established, now pinned by
  name).
* **v2 statistical equivalence**: v2 samples are *different* streams but
  the same distributions — matched makespan means within combined 95% CI
  half-widths, matched medians within a step.
* **Chain-cursor cross-checks**: SUU-C/SUU-T's v2 array cursors replay the
  v1 object cursors *bit-for-bit* when fed the same delays and thresholds
  — the array refactor changes layout, not semantics.
* **Determinism and chunk invariance**: v2 is a pure function of the seed
  and of global trial indices, so backends/chunk layouts cannot change
  samples; the env-resolved default (`REPRO_DISCIPLINE`) selects it
  end to end.
"""

import numpy as np
import pytest

from repro.api import SimConfig, simulate
from repro.api.registry import list_policies, policy_factory
from repro.api.scenario import Scenario
from repro.api.service import evaluate_grid
from repro.core.phased import (
    clear_solve_cache,
    shared_solve_cache,
    solve_cache_stats,
)
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_t import SUUTPolicy
from repro.errors import InvalidScenarioError
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
    prelude_chain_instance,
)
from repro.instance.generators import random_dag_instance
from repro.schedule.pseudo import draw_delays
from repro.sim import compare_policies, run_policy, run_policy_batch
from repro.sim.engine import draw_thresholds
from repro.util.rng import (
    DISCIPLINES,
    BatchStreams,
    ensure_rng,
    resolve_discipline,
    run_seed_sequence,
)


@pytest.fixture(autouse=True)
def _clean_discipline_env(monkeypatch):
    """Default every test to an unset REPRO_DISCIPLINE; tests that probe
    the env resolution set it explicitly."""
    monkeypatch.delenv("REPRO_DISCIPLINE", raising=False)


def make_instance(kind):
    if kind == "independent":
        return independent_instance(12, 4, "uniform", rng=3)
    if kind == "chains":
        return chain_instance(12, 4, 3, "uniform", rng=7)
    if kind in ("out_forest", "in_forest", "mixed_forest", "forest"):
        return forest_instance(12, 4, 2, rng=5)
    if kind == "layered":
        return layered_instance([5, 5], 4, rng=6)
    if kind == "random_dag":
        return random_dag_instance(12, 4, rng=11)
    raise ValueError(kind)


#: Which shape each registered policy is exercised on (its canonical
#: precedence class where it has one, independent otherwise).
def policy_shape(info):
    if info.default_for:
        pc = info.default_for[0]
        if pc == "general":
            return "random_dag"
        return pc
    return "independent"


def scalar_samples(instance, factory, n_trials, seed, semantics):
    """The pre-batch serial Monte Carlo loop, verbatim."""
    rngs = ensure_rng(seed).spawn(n_trials)
    return np.array(
        [
            run_policy(instance, factory(), r, semantics=semantics).makespan
            for r in rngs
        ],
        dtype=np.int64,
    )


# ----------------------------------------------------------------------
# Resolution and config plumbing
# ----------------------------------------------------------------------
class TestResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        assert resolve_discipline("v1") == "v1"
        assert resolve_discipline("v2") == "v2"

    def test_env_default(self, monkeypatch):
        assert resolve_discipline(None) == "v1"
        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        assert resolve_discipline(None) == "v2"
        monkeypatch.setenv("REPRO_DISCIPLINE", "")
        assert resolve_discipline(None) == "v1"

    def test_bad_values_fail_loudly(self, monkeypatch):
        with pytest.raises(ValueError, match="discipline"):
            resolve_discipline("v3")
        monkeypatch.setenv("REPRO_DISCIPLINE", "nonsense")
        with pytest.raises(ValueError, match="discipline"):
            resolve_discipline(None)

    def test_simconfig_field_roundtrip(self):
        config = SimConfig(n_trials=5, discipline="v2")
        assert config.resolved_discipline() == "v2"
        assert SimConfig.from_dict(config.to_dict()) == config
        # Pre-discipline JSON (no key) still loads, resolving to v1.
        legacy = {"n_trials": 3, "seed": 1, "semantics": "suu", "max_steps": 10}
        assert SimConfig.from_dict(legacy).resolved_discipline() == "v1"

    def test_simconfig_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        assert SimConfig().resolved_discipline() == "v2"
        assert SimConfig(discipline="v1").resolved_discipline() == "v1"

    def test_simconfig_validates(self):
        with pytest.raises(InvalidScenarioError, match="discipline"):
            SimConfig(discipline="v9")

    def test_disciplines_constant(self):
        assert DISCIPLINES == ("v1", "v2")


# ----------------------------------------------------------------------
# v1 bit-identity regression: every registered policy, both semantics
# ----------------------------------------------------------------------
class TestV1BitIdentityAllPolicies:
    @pytest.mark.parametrize(
        "name", [info.name for info in list_policies()]
    )
    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_batch_matches_scalar_loop(self, name, semantics):
        from repro.api.registry import policy_info

        info = policy_info(name)
        inst = make_instance(policy_shape(info))
        factory = policy_factory(name)
        expect = scalar_samples(inst, factory, 6, 29, semantics)
        got = run_policy_batch(
            inst, factory, 6, rng=29, semantics=semantics, discipline="v1"
        )
        assert got.discipline == "v1"
        assert np.array_equal(expect, got.makespans)

    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_v1_pinned_under_v2_env(self, semantics, monkeypatch):
        """An explicit v1 request must replay the serial tree even when
        the environment selects v2."""
        monkeypatch.setenv("REPRO_DISCIPLINE", "v2")
        inst = make_instance("random_dag")
        factory = policy_factory("layered")
        expect = scalar_samples(inst, factory, 5, 13, semantics)
        got = run_policy_batch(
            inst, factory, 5, rng=13, semantics=semantics, discipline="v1"
        )
        assert np.array_equal(expect, got.makespans)


# ----------------------------------------------------------------------
# v2 statistical equivalence
# ----------------------------------------------------------------------
def assert_statistically_equivalent(a, b, label):
    """Means within combined 95% CI half-widths, medians within a step."""
    half_a = (a.ci95[1] - a.ci95[0]) / 2
    half_b = (b.ci95[1] - b.ci95[0]) / 2
    assert abs(a.mean - b.mean) <= half_a + half_b, (
        f"{label}: v1 mean {a.mean:.3f} (±{half_a:.3f}) vs "
        f"v2 mean {b.mean:.3f} (±{half_b:.3f})"
    )
    assert abs(np.median(a.samples) - np.median(b.samples)) <= 1.0, label


class TestV2StatisticalEquivalence:
    @pytest.mark.parametrize(
        "name,kind,kwargs",
        [
            ("sem", "independent", {}),
            ("obl", "independent", {}),
            ("suu-c", "chains", {}),
            ("suu-c", "chains", {"inner": "obl"}),
            ("suu-c", "chains", {"inner": "repeat"}),
            ("suu-t", "forest", {}),
            ("suu-t", "forest", {"inner": "obl"}),
        ],
    )
    @pytest.mark.parametrize("semantics", ["suu", "suu_star"])
    def test_matched_makespan_distribution(self, name, kind, kwargs, semantics):
        inst = make_instance(kind)
        factory = policy_factory(name, **kwargs)
        v1 = run_policy_batch(
            inst, factory, 160, rng=5, semantics=semantics, discipline="v1"
        )
        v2 = run_policy_batch(
            inst, factory, 160, rng=5, semantics=semantics, discipline="v2"
        )
        assert v2.discipline == "v2"
        assert_statistically_equivalent(
            v1.stats(), v2.stats(), f"{name}/{semantics}"
        )

    def test_v2_streams_differ_from_v1(self):
        """The documented break: same seed, different sample stream (the
        distribution-level equality is what the test above checks)."""
        inst = make_instance("independent")
        factory = policy_factory("obl")
        v1 = run_policy_batch(inst, factory, 64, rng=2, discipline="v1")
        v2 = run_policy_batch(inst, factory, 64, rng=2, discipline="v2")
        assert not np.array_equal(v1.makespans, v2.makespans)

    def test_compare_policies_v2_pairs_identically(self):
        """Common-random-number pairing (shared thresholds) survives v2:
        deterministic policies still coincide sample-for-sample."""
        inst = make_instance("independent")
        out = compare_policies(
            inst,
            {"a": policy_factory("sem"), "b": policy_factory("sem")},
            10,
            rng=2,
            discipline="v2",
        )
        assert np.array_equal(out["a"].samples, out["b"].samples)


# ----------------------------------------------------------------------
# Chain-cursor cross-checks: array state == object state
# ----------------------------------------------------------------------
class TestChainCursorCrossCheck:
    def suu_c_delay_matrix(self, inst, plan, n_trials, seed, enabled=True):
        """Replay v1's per-trial delay draws as a matrix."""
        delays = np.empty((n_trials, len(plan.chains)), dtype=np.int64)
        for k, r in enumerate(ensure_rng(seed).spawn(n_trials)):
            policy_rng, _ = r.spawn(2)
            delays[k] = draw_delays(
                len(plan.chains), plan.horizon, policy_rng,
                unit=plan.unit, enabled=enabled,
            )
        return delays

    def crosscheck_suu_c(self, inst, kwargs, B=10, seed=41):
        """Fed v1's delays and shared thresholds, the v2 array cursors
        must replay the v1 replica execution exactly."""
        probe = SUUCPolicy(**kwargs)
        plan = probe.prepare_plan(inst)
        delays = self.suu_c_delay_matrix(
            inst, plan, B, seed, enabled=probe.enable_delays
        )
        theta = np.vstack(
            [draw_thresholds(inst.n_jobs, ensure_rng(900 + k)) for k in range(B)]
        )

        class Injected(SUUCPolicy):
            def _draw_v2_delays(self, streams, n_trials, plan, *key):
                # Slice by the stream offset so the injection survives
                # the kernel_threads trial-shard route (each shard draws
                # its own span of the batch-global matrix).
                return delays[streams.offset:streams.offset + n_trials]

        v1 = run_policy_batch(
            inst, lambda: SUUCPolicy(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v1",
            max_steps=2_000_000,
        )
        v2 = run_policy_batch(
            inst, lambda: Injected(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v2",
            max_steps=2_000_000,
        )
        assert np.array_equal(v1.makespans, v2.makespans)
        assert np.array_equal(v1.completion_times, v2.completion_times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"enable_segments": False},
            {"enable_delays": False},
            {"enable_fallback": False},
            {"inner": "obl"},
            {"inner": "repeat"},
            # Fallback-trigger agreement: both disciplines must take the
            # same congestion / superstep-limit decisions on equal inputs.
            {"length_factor": 1e-6},
            {
                "enable_delays": False,
                "enable_segments": False,
                "congestion_factor": 0.1,
            },
        ],
    )
    def test_suu_c_array_equals_object_cursors(self, kwargs):
        inst = chain_instance(12, 4, 3, "uniform", rng=7)
        self.crosscheck_suu_c(inst, kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{}, {"inner": "obl"}, {"inner": "repeat"}]
    )
    def test_suu_c_prelude_array_equals_object_cursors(self, kwargs):
        """The ``unit > 1`` regime: solo prelude rows must interleave
        bit-identically between the solo queue (v1 object cursors) and
        the signature-compiled prefix rows (v2 array cursors)."""
        inst = prelude_chain_instance()
        plan = SUUCPolicy(**kwargs).prepare_plan(inst)
        assert plan.unit > 1
        assert any(
            getattr(item, "prelude", ())
            for prog in plan.programs
            for item in prog.items
        )
        self.crosscheck_suu_c(inst, kwargs, B=6)

    @pytest.mark.parametrize(
        "kwargs", [{}, {"inner": "obl"}, {"inner": "repeat"}]
    )
    def test_suu_t_array_equals_object_cursors(self, kwargs):
        inst = forest_instance(12, 4, 2, rng=5)
        B, seed = 8, 31
        probe = SUUTPolicy(**kwargs)
        probe._instance = inst
        shared = probe._shared_block_plans(inst)
        block_delays = [
            np.empty((B, len(plan.chains)), dtype=np.int64)
            for _, _, plan in shared
        ]
        # v1 replicas spawn one child per block entered, in block order.
        for k, r in enumerate(ensure_rng(seed).spawn(B)):
            policy_rng, _ = r.spawn(2)
            for b, (_, _, plan) in enumerate(shared):
                child = policy_rng.spawn(1)[0]
                block_delays[b][k] = draw_delays(
                    len(plan.chains), plan.horizon, child, unit=plan.unit,
                    enabled=True,
                )
        theta = np.vstack(
            [draw_thresholds(inst.n_jobs, ensure_rng(500 + k)) for k in range(B)]
        )

        class Injected(SUUTPolicy):
            def _draw_block_delays(self, streams, n_trials, plan, block, probe):
                # Offset-sliced so the injection survives trial sharding.
                return block_delays[block][
                    streams.offset:streams.offset + n_trials
                ]

        v1 = run_policy_batch(
            inst, lambda: SUUTPolicy(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v1",
        )
        v2 = run_policy_batch(
            inst, lambda: Injected(**kwargs), B, rng=seed,
            semantics="suu_star", thresholds=theta, discipline="v2",
        )
        assert np.array_equal(v1.makespans, v2.makespans)
        assert np.array_equal(v1.completion_times, v2.completion_times)

    def test_v2_suu_c_is_keyed_not_replica(self):
        """Under v2, SUU-C advertises keyed grouping (the refactor's
        point: grouped dispatch is no longer degenerate)."""
        assert SUUCPolicy.phase_grouping == "replica"
        assert SUUCPolicy.phase_grouping_v2 == "keyed"
        assert SUUTPolicy.phase_grouping_v2 == "keyed"

    @pytest.mark.parametrize("inner", ["sem", "obl", "repeat"])
    def test_v2_runs_every_inner_on_array_cursors(self, inner):
        """No configuration keeps the replica path under v2 anymore:
        every inner subroutine installs the array cursors."""
        inst = chain_instance(12, 4, 3, "uniform", rng=7)
        policy = SUUCPolicy(inner=inner)
        got = run_policy_batch(
            inst, policy, 6, rng=3, semantics="suu_star", discipline="v2"
        )
        assert got.vectorized
        assert policy._v2 is not None  # array cursors, not replicas
        assert policy.accepts_discipline_v2()

    def test_v2_runs_preludes_on_array_cursors(self):
        """Plans with ``unit > 1`` no longer decline start_phased_v2."""
        inst = prelude_chain_instance()
        policy = SUUCPolicy()
        assert policy.prepare_plan(inst).unit > 1
        got = run_policy_batch(
            inst, policy, 4, rng=3, semantics="suu_star", discipline="v2",
            max_steps=2_000_000,
        )
        assert got.vectorized
        assert policy._v2 is not None

    def test_suu_t_v2_runs_every_inner_on_array_cursors(self):
        inst = forest_instance(12, 4, 2, rng=5)
        for inner in ("sem", "obl", "repeat"):
            policy = SUUTPolicy(inner=inner)
            got = run_policy_batch(
                inst, policy, 6, rng=3, semantics="suu_star", discipline="v2"
            )
            assert got.vectorized
            assert policy._v2_cursors is not None
            assert policy.accepts_discipline_v2()


# ----------------------------------------------------------------------
# Determinism, chunk invariance, service routing
# ----------------------------------------------------------------------
class TestV2Determinism:
    def test_same_seed_same_samples(self):
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        a = run_policy_batch(inst, factory, 24, rng=11, discipline="v2")
        b = run_policy_batch(inst, factory, 24, rng=11, discipline="v2")
        assert np.array_equal(a.makespans, b.makespans)

    def test_v2_with_trial_rngs_requires_seed_root(self):
        """Pre-spawned trial_rngs carry no v2 root: without rng/streams
        the kernel must refuse rather than silently draw fresh entropy
        (v2 promises determinism in the seed)."""
        inst = make_instance("independent")
        rngs = ensure_rng(5).spawn(4)
        with pytest.raises(ValueError, match="seed root"):
            run_policy_batch(
                inst, policy_factory("obl"), trial_rngs=rngs, discipline="v2"
            )
        # With an explicit rng (or streams) it runs, deterministically.
        a = run_policy_batch(
            inst, policy_factory("obl"), trial_rngs=rngs, rng=5,
            discipline="v2",
        )
        b = run_policy_batch(
            inst, policy_factory("obl"),
            trial_rngs=ensure_rng(5).spawn(4), rng=5, discipline="v2",
        )
        assert np.array_equal(a.makespans, b.makespans)

    def test_chunk_invariance_kernel_level(self):
        """Rows are addressed by global trial index: two chunks with
        rebased streams reproduce the single-batch samples exactly."""
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        root = run_seed_sequence(5)
        rngs = ensure_rng(5).spawn(20)
        full = run_policy_batch(
            inst, factory, trial_rngs=rngs, semantics="suu",
            discipline="v2", streams=BatchStreams(root),
        )
        parts = [
            run_policy_batch(
                inst, factory, trial_rngs=rngs[lo:hi], semantics="suu",
                discipline="v2", streams=BatchStreams(root).with_offset(lo),
            ).makespans
            for lo, hi in [(0, 7), (7, 20)]
        ]
        assert np.array_equal(full.makespans, np.concatenate(parts))

    def test_backends_bit_identical_under_v2(self):
        """The serial/process invariance contract holds under v2."""
        inst = make_instance("independent")
        config = SimConfig(n_trials=8, seed=6, discipline="v2")
        serial = simulate(inst, "sem", config, backend="serial")
        process = simulate(inst, "sem", config, backend="process")
        assert np.array_equal(serial.stats.samples, process.stats.samples)

    def test_simulate_discipline_changes_samples(self):
        inst = make_instance("independent")
        v1 = simulate(inst, "obl", SimConfig(n_trials=20, seed=3, discipline="v1"))
        v2 = simulate(inst, "obl", SimConfig(n_trials=20, seed=3, discipline="v2"))
        assert not np.array_equal(v1.stats.samples, v2.stats.samples)

    def test_cli_discipline_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.instance import save_instance

        path = str(tmp_path / "inst.json")
        save_instance(make_instance("chains"), path)
        assert main(["run", path, "--policy", "suu-c", "--trials", "4",
                     "--discipline", "v2"]) == 0
        assert "E[T]" in capsys.readouterr().out


class TestShardInvariance:
    """The trial-shard layer (``kernel_threads > 1`` on serial backends)
    splits a batch along the same seam the process backend chunks on.
    Under v2 the Philox streams are addressed by *global* trial index, so
    shard layout is invisible by construction — assert it across thread
    counts, backends, and chunked runs."""

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    @pytest.mark.parametrize("kernel_threads", [1, 2, 4])
    def test_v2_bit_identical_across_thread_counts(self, kernel,
                                                   kernel_threads):
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        ref = run_policy_batch(inst, factory, 12, rng=11, discipline="v2")
        got = run_policy_batch(
            inst, factory, 12, rng=11, discipline="v2", kernel=kernel,
            kernel_threads=kernel_threads,
        )
        assert np.array_equal(ref.makespans, got.makespans)
        assert np.array_equal(ref.completion_times, got.completion_times)

    @pytest.mark.parametrize("kernel_threads", [2, 4])
    def test_chunk_invariance_survives_sharding(self, kernel_threads):
        # Chunks arrive with pre-offset streams (the service seam); the
        # shard layer must rebase on top of that offset, not replace it.
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        root = run_seed_sequence(5)
        rngs = ensure_rng(5).spawn(20)
        full = run_policy_batch(
            inst, factory, trial_rngs=rngs, semantics="suu",
            discipline="v2", streams=BatchStreams(root),
        )
        parts = [
            run_policy_batch(
                inst, factory, trial_rngs=rngs[lo:hi], semantics="suu",
                discipline="v2", streams=BatchStreams(root).with_offset(lo),
                kernel_threads=kernel_threads,
            ).makespans
            for lo, hi in [(0, 7), (7, 20)]
        ]
        assert np.array_equal(full.makespans, np.concatenate(parts))

    @pytest.mark.parametrize("discipline", ["v1", "v2"])
    def test_per_policy_substreams_unaffected_by_sharding(self, discipline):
        sc = Scenario(shape="independent", n_jobs=10, n_machines=4,
                      model="specialist", seed=3)
        serial = SimConfig(n_trials=8, seed=5, discipline=discipline,
                           substreams="per-policy")
        sharded = SimConfig(n_trials=8, seed=5, discipline=discipline,
                            substreams="per-policy", kernel_threads=2)
        a1, b1 = evaluate_grid([sc], ("sem", "sem"), config=serial)
        a2, b2 = evaluate_grid([sc], ("sem", "sem"), config=sharded)
        assert np.array_equal(a1.stats.samples, a2.stats.samples)
        assert np.array_equal(b1.stats.samples, b2.stats.samples)

    def test_v1_bit_identical_across_thread_counts(self):
        # v1 replays the per-trial spawned RNG tree; contiguous shards
        # slice that tree, so sharding cannot change a sample there either.
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        ref = run_policy_batch(inst, factory, 12, rng=11, discipline="v1")
        got = run_policy_batch(inst, factory, 12, rng=11, discipline="v1",
                               kernel_threads=3)
        assert np.array_equal(ref.makespans, got.makespans)


# ----------------------------------------------------------------------
# Cross-chunk solve cache
# ----------------------------------------------------------------------
class TestCrossChunkSolveCache:
    def test_second_batch_hits_for_round_schedules(self):
        """Two batches (two chunks of a sweep, in miniature) share the
        round-1 LP: the second batch's round solves are all cache hits."""
        clear_solve_cache()
        inst = make_instance("independent")
        factory = policy_factory("sem")
        run_policy_batch(inst, factory, 8, rng=1, discipline="v1")
        first = solve_cache_stats()
        assert first["solves"] > 0
        run_policy_batch(inst, factory, 8, rng=2, discipline="v1")
        second = solve_cache_stats()
        # Round-1 (target 1/2, full survivor set) is shared; later rounds
        # with coinciding survivor sets hit too.  At minimum, no batch
        # re-solves round 1.
        assert second["hits"] > first["hits"]
        round1_keys = [
            k for k in shared_solve_cache()._entries if k[0] == "lp1-round"
            and k[3] == 0.5
        ]
        assert len(round1_keys) == 1  # one (instance, target=1/2) entry
        clear_solve_cache()

    def test_chain_plan_shared_across_batches(self):
        clear_solve_cache()
        inst = make_instance("chains")
        factory = policy_factory("suu-c")
        run_policy_batch(inst, factory, 4, rng=1, discipline="v2")
        solves_after_first = solve_cache_stats()["solves"]
        run_policy_batch(inst, factory, 4, rng=2, discipline="v2")
        stats = solve_cache_stats()
        plan_keys = [
            k for k in shared_solve_cache()._entries if k[0] == "chain-plan"
        ]
        assert len(plan_keys) == 1  # LP2 solved once across both batches
        assert stats["hits"] >= 1
        assert stats["solves"] >= solves_after_first
        clear_solve_cache()

    def test_grid_sweep_shares_round1_lp(self):
        """Two policies on the same scenario in one sweep: the shared
        round-1 LP is solved once for the whole grid."""
        clear_solve_cache()
        grid = [Scenario(shape="independent", n_jobs=10, n_machines=4, seed=3)]
        evaluate_grid(grid, ("sem", "adapt"), config=SimConfig(n_trials=5, seed=1))
        # Round 1 = target 1/2 on the full survivor set; both policies'
        # cells (every trial) share the one entry.  (adapt re-solves
        # target 1/2 on *shrinking* survivor sets — distinct keys.)
        full_set = np.arange(10, dtype=np.int64).tobytes()
        round1 = [
            k for k in shared_solve_cache()._entries
            if k[0] == "lp1-round" and k[3] == 0.5 and k[4] == full_set
        ]
        assert len(round1) == 1
        clear_solve_cache()

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        clear_solve_cache()
        inst = make_instance("independent")
        factory = policy_factory("sem")
        run_policy_batch(inst, factory, 4, rng=1, discipline="v1")
        assert solve_cache_stats()["entries"] == 0
        clear_solve_cache()

    def test_results_identical_with_and_without_cache(self, monkeypatch):
        inst = make_instance("independent")
        factory = policy_factory("sem")
        clear_solve_cache()
        warm = run_policy_batch(inst, factory, 6, rng=4, discipline="v1")
        again = run_policy_batch(inst, factory, 6, rng=4, discipline="v1")
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        cold = run_policy_batch(inst, factory, 6, rng=4, discipline="v1")
        assert np.array_equal(warm.makespans, again.makespans)
        assert np.array_equal(warm.makespans, cold.makespans)
        clear_solve_cache()

    def test_instance_digest_stability(self):
        a = make_instance("chains")
        b = chain_instance(12, 4, 3, "uniform", rng=7)
        c = chain_instance(12, 4, 3, "uniform", rng=8)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


# ----------------------------------------------------------------------
# BatchStreams unit behavior
# ----------------------------------------------------------------------
class TestBatchStreams:
    def test_offset_reads_global_rows(self):
        s = BatchStreams(np.random.SeedSequence(7))
        full = s.step_uniforms(3, 10, 5)
        part = s.with_offset(4).step_uniforms(3, 6, 5)
        assert np.allclose(full[4:], part)
        th_full = s.thresholds(10, 5)
        th_part = s.with_offset(4).thresholds(6, 5)
        assert np.allclose(th_full[4:], th_part)

    def test_streams_are_independent_per_key(self):
        s = BatchStreams(np.random.SeedSequence(7))
        a = s.step_uniforms(0, 4, 4)
        b = s.step_uniforms(1, 4, 4)
        c = s.child(0).step_uniforms(0, 4, 4)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_policy_integers_range_and_offset(self):
        s = BatchStreams(np.random.SeedSequence(3))
        ints = s.policy_integers(50, 4, 7)
        assert ints.min() >= 0 and ints.max() < 7
        part = s.with_offset(20).policy_integers(30, 4, 7)
        assert np.array_equal(ints[20:], part)

    def test_thresholds_distribution(self):
        """theta = -log2 r is exponential with mean 1/ln 2 ~ 1.4427."""
        s = BatchStreams(np.random.SeedSequence(11))
        theta = s.thresholds(400, 25)
        assert theta.min() >= 0
        assert abs(theta.mean() - 1.0 / np.log(2)) < 0.05

    def test_picklable(self):
        import pickle

        s = BatchStreams(np.random.SeedSequence(9), offset=3)
        s2 = pickle.loads(pickle.dumps(s))
        assert np.allclose(s.step_uniforms(0, 3, 3), s2.step_uniforms(0, 3, 3))
