"""Declarative scenarios: validation, determinism, JSON round-trips, grids."""

import json

import numpy as np
import pytest

from repro.api.scenario import (
    FAILURE_MODELS,
    SCENARIO_SHAPES,
    Scenario,
    ScenarioGrid,
    SimConfig,
)
from repro.errors import InvalidScenarioError
from repro.instance.generators import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
)
from repro.instance.precedence import PrecedenceClass


class TestScenarioValidation:
    def test_unknown_shape_raises(self):
        with pytest.raises(InvalidScenarioError, match="shape"):
            Scenario(shape="pentagon")

    def test_unknown_model_raises(self):
        with pytest.raises(InvalidScenarioError, match="model"):
            Scenario(model="bimodal")

    def test_bad_dimensions_raise(self):
        with pytest.raises(InvalidScenarioError):
            Scenario(n_jobs=0)
        with pytest.raises(InvalidScenarioError):
            Scenario(n_machines=0)

    def test_all_declared_shapes_and_models_materialize(self):
        for shape in SCENARIO_SHAPES:
            for model in FAILURE_MODELS:
                inst = Scenario(
                    shape=shape, model=model, n_jobs=6, n_machines=3, seed=4
                ).to_instance()
                assert inst.n_jobs == 6 and inst.n_machines == 3


class TestScenarioDeterminism:
    def test_to_instance_is_deterministic(self):
        sc = Scenario(shape="random_dag", n_jobs=10, n_machines=4, seed=3)
        a, b = sc.to_instance(), sc.to_instance()
        assert np.array_equal(a.q, b.q)
        assert a.graph.edges == b.graph.edges

    def test_matches_direct_generator_calls(self):
        sc = Scenario(shape="independent", n_jobs=12, n_machines=4,
                      model="powerlaw", seed=9)
        direct = independent_instance(12, 4, "powerlaw", rng=9)
        assert np.array_equal(sc.to_instance().q, direct.q)

        sc = Scenario(shape="chains", n_jobs=12, n_machines=4, model="uniform",
                      seed=8, n_chains=3)
        direct = chain_instance(12, 4, 3, "uniform", rng=8)
        via = sc.to_instance()
        assert np.array_equal(via.q, direct.q)
        assert via.graph.edges == direct.graph.edges

    @pytest.mark.parametrize(
        "shape,expected",
        [
            ("independent", PrecedenceClass.INDEPENDENT),
            ("chains", PrecedenceClass.CHAINS),
            ("tree", PrecedenceClass.OUT_FOREST),
        ],
    )
    def test_shapes_hit_their_precedence_class(self, shape, expected):
        sc = Scenario(shape=shape, n_jobs=12, n_machines=3, seed=1)
        assert sc.to_instance().precedence_class == expected

    def test_random_dag_is_general(self):
        sc = Scenario(shape="random_dag", n_jobs=10, n_machines=3, seed=0,
                      edge_prob=0.5)
        assert sc.to_instance().precedence_class == PrecedenceClass.GENERAL

    def test_layered_split_matches_pre11_cli(self):
        # The historical CLI put the extra job of an odd count in the
        # *second* layer ([half, n - half]); seeded output must not change.
        sc = Scenario(shape="layered", n_jobs=21, n_machines=3, n_layers=2,
                      model="uniform", seed=6)
        direct = layered_instance([10, 11], 3, "uniform", rng=6)
        via = sc.to_instance()
        assert np.array_equal(via.q, direct.q)
        assert via.graph.edges == direct.graph.edges
        with pytest.raises(InvalidScenarioError, match="layers"):
            Scenario(shape="layered", n_jobs=2, n_layers=3).to_instance()

    def test_forest_defaults_to_mixed_orientation(self):
        # generate and sweep must describe the same forest workload.
        sc = Scenario(shape="forest", n_jobs=12, n_machines=3, model="uniform",
                      seed=5)
        direct = forest_instance(12, 3, 1, "mixed", "uniform", rng=5)
        assert sc.to_instance().graph.edges == direct.graph.edges

    def test_bad_orientation_rejected(self):
        with pytest.raises(InvalidScenarioError, match="orientation"):
            Scenario(shape="tree", orientation="sideways")


class TestScenarioJSON:
    def test_round_trip_equality(self):
        sc = Scenario(shape="forest", n_jobs=15, n_machines=4, model="related",
                      seed=5, n_trees=3, orientation="mixed")
        assert Scenario.from_json(sc.to_json()) == sc

    def test_json_is_plain_data(self):
        data = json.loads(Scenario().to_json())
        assert data["format"] == "repro-scenario-v1"
        assert data["shape"] == "independent"

    def test_unknown_field_rejected(self):
        with pytest.raises(InvalidScenarioError, match="unknown scenario fields"):
            Scenario.from_dict({"shape": "chains", "flavor": "mint"})

    def test_bad_format_tag_rejected(self):
        with pytest.raises(InvalidScenarioError, match="format"):
            Scenario.from_dict({"format": "repro-scenario-v999"})

    def test_label_mentions_shape_and_size(self):
        label = Scenario(shape="chains", n_jobs=24, n_machines=6).label()
        assert "chains" in label and "24" in label


class TestSimConfig:
    def test_defaults_and_round_trip(self):
        cfg = SimConfig(n_trials=7, seed=3, semantics="suu_star", max_steps=99)
        assert SimConfig.from_dict(cfg.to_dict()) == cfg

    def test_validation(self):
        with pytest.raises(InvalidScenarioError):
            SimConfig(n_trials=0)
        with pytest.raises(InvalidScenarioError):
            SimConfig(semantics="classical")
        with pytest.raises(InvalidScenarioError):
            SimConfig(max_steps=0)


class TestScenarioGrid:
    def test_product_size_and_order(self):
        grid = ScenarioGrid(
            Scenario(model="uniform"),
            shape=["independent", "chains"],
            n_jobs=[10, 20, 30],
        )
        scenarios = grid.scenarios()
        assert len(grid) == 6 and len(scenarios) == 6
        # First axis varies slowest.
        assert [s.shape for s in scenarios] == ["independent"] * 3 + ["chains"] * 3
        assert [s.n_jobs for s in scenarios[:3]] == [10, 20, 30]
        # Unswept base fields carry through.
        assert all(s.model == "uniform" for s in scenarios)

    def test_empty_axes_is_single_point(self):
        grid = ScenarioGrid(Scenario(n_jobs=11))
        assert len(grid) == 1
        assert grid.scenarios() == [Scenario(n_jobs=11)]

    def test_unknown_axis_rejected(self):
        with pytest.raises(InvalidScenarioError, match="axes"):
            ScenarioGrid(Scenario(), flavor=["mint"])

    def test_empty_axis_rejected(self):
        with pytest.raises(InvalidScenarioError, match="no values"):
            ScenarioGrid(Scenario(), n_jobs=[])

    def test_dict_round_trip(self):
        grid = ScenarioGrid(Scenario(model="related"), n_jobs=[5, 10])
        again = ScenarioGrid.from_dict(grid.to_dict())
        assert again.scenarios() == grid.scenarios()
