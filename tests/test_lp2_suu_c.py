"""Tests for (LP2), Lemma 6 rounding, and the SUU-C policy (Theorem 9)."""

import numpy as np
import pytest

from repro.core.lp2 import round_lp2, solve_lp2
from repro.core.suu_c import SUUCPolicy
from repro.errors import InvalidInstanceError
from repro.instance import SUUInstance, chain_instance, extract_chains
from repro.sim import run_policy


class TestSolveLP2:
    def test_constraints_hold(self, small_chains):
        chains = extract_chains(small_chains.graph)
        rel = solve_lp2(small_chains, chains)
        mass = (rel.x * rel.ell_capped).sum(axis=0)
        assert (mass >= 1 - 1e-6).all()
        assert rel.x.sum(axis=1).max() <= rel.t_star * (1 + 1e-6)
        assert (rel.d >= 1).all()
        for chain in chains:
            assert sum(rel.d[j] for j in chain) <= rel.t_star * (1 + 1e-6)
        # x_ij <= d_j
        assert (rel.x <= rel.d[None, :] * (1 + 1e-6)).all()

    def test_chain_length_drives_value(self):
        """One long chain forces t* >= chain length even with many machines."""
        inst = chain_instance(10, 20, 1, "uniform", rng=0)
        chains = extract_chains(inst.graph)
        rel = solve_lp2(inst, chains)
        assert rel.t_star >= 10 - 1e-6  # d_j >= 1 summed over the chain

    def test_rejects_overlapping_chains(self, small_chains):
        with pytest.raises(InvalidInstanceError, match="overlap"):
            solve_lp2(small_chains, [[0, 1], [1, 2]])

    def test_rejects_empty(self, small_chains):
        with pytest.raises(InvalidInstanceError):
            solve_lp2(small_chains, [])

    def test_subset_of_jobs_allowed(self, small_chains):
        rel = solve_lp2(small_chains, [[0], [1]])
        assert rel.t_star > 0


class TestRoundLP2:
    def test_feasibility_and_caps(self, small_chains):
        chains = extract_chains(small_chains.graph)
        rel = solve_lp2(small_chains, chains)
        rounded = round_lp2(rel)
        mass = rounded.mass_per_job(rel.ell_capped)
        jobs = [j for c in chains for j in c]
        assert (mass[jobs] >= 1 - 1e-6).all()
        # Lemma 6: lengths capped by ceil(6 d*_j).
        lengths = rounded.lengths
        for j in jobs:
            assert lengths[j] <= int(np.ceil(6 * rel.d[j]))

    def test_chain_length_blowup_bounded(self, small_chains):
        chains = extract_chains(small_chains.graph)
        rel = solve_lp2(small_chains, chains)
        rounded = round_lp2(rel)
        lengths = rounded.lengths
        for chain in chains:
            total = int(sum(lengths[j] for j in chain))
            # <= sum ceil(6 d*_j) <= 6 sum d*_j + |chain| <= 7 t*.
            assert total <= 7 * rel.t_star + 1e-6

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_instances(self, seed):
        inst = chain_instance(15, 4, 4, "specialist", rng=seed)
        chains = extract_chains(inst.graph)
        rel = solve_lp2(inst, chains)
        rounded = round_lp2(rel)  # raises on infeasibility
        assert rounded.load <= int(np.ceil(6 * max(rel.t_star, rel.x.sum(axis=1).max())))


class TestSUUCPolicy:
    def test_completes(self, small_chains):
        pol = SUUCPolicy()
        res = run_policy(small_chains, pol, rng=1, max_steps=200_000)
        assert res.makespan >= 1
        assert pol.stats["supersteps"] >= 1

    def test_respects_precedence_always(self, small_chains):
        # The engine itself raises if SUU-C ever violates precedence; run
        # several seeds to exercise retries.
        for seed in range(5):
            run_policy(small_chains, SUUCPolicy(), rng=seed, max_steps=200_000)

    def test_completion_order_within_chain(self, small_chains):
        chains = extract_chains(small_chains.graph)
        res = run_policy(small_chains, SUUCPolicy(), rng=2, max_steps=200_000)
        for chain in chains:
            times = [res.completion_times[j] for j in chain]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_long_job_segments(self):
        inst = chain_instance(16, 3, 4, "specialist", rng=3, q_bad=0.9999)
        pol = SUUCPolicy()
        res = run_policy(inst, pol, rng=4, max_steps=200_000)
        assert res.makespan >= 1
        if pol.stats["n_long_jobs"] > 0:
            assert pol.stats["sem_runs"] >= 1

    def test_segments_disabled_treats_all_short(self):
        inst = chain_instance(12, 3, 3, "specialist", rng=5, q_bad=0.999)
        pol = SUUCPolicy(enable_segments=False)
        run_policy(inst, pol, rng=6, max_steps=400_000)
        assert pol.stats["n_long_jobs"] == 0
        assert pol.stats["sem_runs"] == 0

    def test_delays_disabled(self, small_chains):
        pol = SUUCPolicy(enable_delays=False)
        res = run_policy(small_chains, pol, rng=7, max_steps=200_000)
        assert res.makespan >= 1
        assert (pol._delays == 0).all()

    def test_inner_obl_variant(self):
        inst = chain_instance(12, 3, 3, "specialist", rng=8, q_bad=0.9999)
        pol = SUUCPolicy(inner="obl")
        res = run_policy(inst, pol, rng=9, max_steps=400_000)
        assert res.makespan >= 1

    def test_rejects_bad_inner(self):
        with pytest.raises(ValueError):
            SUUCPolicy(inner="bogus")

    def test_fallback_on_tiny_congestion_limit(self, small_chains):
        pol = SUUCPolicy(congestion_factor=0.0)
        res = run_policy(small_chains, pol, rng=10, max_steps=200_000)
        # With the limit clamped to its floor the run may or may not trip
        # the fallback, but must complete either way.
        assert res.makespan >= 1

    def test_forced_fallback_still_completes(self, small_chains):
        pol = SUUCPolicy(length_factor=0.0)
        res = run_policy(small_chains, pol, rng=11, max_steps=200_000)
        assert res.makespan >= 1
        assert pol.stats["fallback"]

    def test_independent_jobs_as_singleton_chains(self):
        # An instance with no edges: every job is a singleton chain.
        inst = SUUInstance(np.full((2, 5), 0.5))
        res = run_policy(inst, SUUCPolicy(), rng=12, max_steps=200_000)
        assert res.makespan >= 1

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            SUUCPolicy().assign(None)

    def test_explicit_chains_param(self, small_chains):
        chains = extract_chains(small_chains.graph)
        pol = SUUCPolicy(chains=chains)
        res = run_policy(small_chains, pol, rng=13, max_steps=200_000)
        assert res.makespan >= 1

    def test_unit_rounding_structure(self):
        """Force the non-polynomial trick on and check solo preludes run."""
        inst = chain_instance(6, 2, 2, "uniform", rng=14)
        pol = SUUCPolicy()
        pol.start(inst, np.random.default_rng(0))
        # Recompute programs with a forced unit > 1 to exercise preludes.
        from repro.schedule.pseudo import build_chain_programs
        from repro.core.lp2 import round_lp2, solve_lp2
        from repro.instance.chains import extract_chains as ec

        chains = ec(inst.graph)
        rel = solve_lp2(inst, chains)
        rounded = round_lp2(rel)
        programs = build_chain_programs(chains, rounded, unit=2)
        has_prelude = any(
            getattr(item, "prelude", ()) != ()
            for p in programs
            for item in p.items
        )
        odd_steps = (rounded.x % 2 == 1) & (rounded.x > 0)
        assert has_prelude == bool(odd_steps.any())

    def test_suu_star_semantics(self, small_chains):
        res = run_policy(small_chains, SUUCPolicy(), rng=15, semantics="suu_star",
                         max_steps=200_000)
        assert res.makespan >= 1
