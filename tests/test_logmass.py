"""Tests for log-mass conversions (repro.util.logmass)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.logmass import (
    LOGMASS_CAP,
    capped_logmass,
    failure_to_logmass,
    group_index,
    logmass_matrix,
    logmass_to_failure,
    success_probability,
)


class TestFailureToLogmass:
    def test_half_gives_one(self):
        assert failure_to_logmass(0.5) == pytest.approx(1.0)

    def test_quarter_gives_two(self):
        assert failure_to_logmass(0.25) == pytest.approx(2.0)

    def test_one_gives_zero(self):
        assert failure_to_logmass(1.0) == 0.0

    def test_zero_clamps_to_cap(self):
        assert failure_to_logmass(0.0) == LOGMASS_CAP

    def test_scalar_returns_float(self):
        assert isinstance(failure_to_logmass(0.5), float)

    def test_array_shape_preserved(self):
        q = np.array([[0.5, 0.25], [1.0, 0.0]])
        out = failure_to_logmass(q)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(1.0)
        assert out[1, 1] == LOGMASS_CAP

    @given(st.floats(min_value=1e-18, max_value=1.0))
    def test_roundtrip(self, q):
        ell = failure_to_logmass(q)
        back = logmass_to_failure(ell)
        assert back == pytest.approx(q, rel=1e-9)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_range(self, q):
        ell = failure_to_logmass(q)
        assert 0.0 <= ell <= LOGMASS_CAP


class TestLogmassToFailure:
    def test_one_gives_half(self):
        assert logmass_to_failure(1.0) == pytest.approx(0.5)

    def test_zero_gives_one(self):
        assert logmass_to_failure(0.0) == 1.0

    def test_huge_clamps(self):
        assert logmass_to_failure(1e9) == pytest.approx(2.0**-LOGMASS_CAP)

    def test_array(self):
        out = logmass_to_failure(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(out, [1.0, 0.5, 0.25])


class TestLogmassMatrix:
    def test_matches_scalar(self):
        q = np.array([[0.5, 0.25]])
        assert np.allclose(logmass_matrix(q), [[1.0, 2.0]])


class TestCappedLogmass:
    def test_caps_large_values(self):
        out = capped_logmass(np.array([0.2, 5.0]), 1.0)
        assert np.allclose(out, [0.2, 1.0])

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            capped_logmass(np.array([1.0]), 0.0)

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    def test_never_exceeds_cap(self, ell, cap):
        assert capped_logmass(np.array([ell]), cap)[0] <= cap


class TestSuccessProbability:
    def test_mass_one_is_half(self):
        assert success_probability(1.0) == pytest.approx(0.5)

    def test_mass_zero_is_zero(self):
        assert success_probability(0.0) == 0.0

    def test_small_mass_accuracy(self):
        # 1 - 2^-x ~ x ln 2 for small x; naive evaluation would cancel.
        mass = 1e-12
        assert success_probability(mass) == pytest.approx(
            mass * math.log(2.0), rel=1e-6
        )

    @given(st.floats(min_value=0.0, max_value=80.0))
    def test_matches_definition(self, mass):
        expected = 1.0 - 2.0**-mass
        assert success_probability(mass) == pytest.approx(expected, abs=1e-12)


class TestGroupIndex:
    def test_powers_of_two(self):
        assert group_index(1.0) == 0
        assert group_index(2.0) == 1
        assert group_index(0.5) == -1

    def test_interval_membership(self):
        # l' in [2^k, 2^(k+1)) must map to group k.
        for ell, k in [(1.5, 0), (3.99, 1), (0.75, -1), (0.26, -2)]:
            assert group_index(ell) == k

    def test_zero_returns_none(self):
        assert group_index(0.0) is None

    def test_below_floor_returns_none(self):
        assert group_index(2.0**-70) is None

    @given(st.floats(min_value=1e-15, max_value=64.0))
    def test_group_bounds(self, ell):
        k = group_index(ell)
        if k is not None:
            assert 2.0**k <= ell * (1 + 1e-12)
            assert ell < 2.0 ** (k + 1) * (1 + 1e-12)
