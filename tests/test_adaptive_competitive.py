"""Tests for the adaptive-LP policy and the competitive experiment."""

import numpy as np
import pytest

from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.experiments.competitive import (
    _threshold_profile,
    offline_threshold_bound,
    run_competitive,
)
from repro.instance import SUUInstance, independent_instance
from repro.sim import estimate_expected_makespan, run_policy


class TestAdaptivePolicy:
    def test_completes(self, small_independent):
        pol = SUUIAdaptiveLPPolicy()
        res = run_policy(small_independent, pol, rng=1)
        assert res.makespan >= 1
        assert pol.lp_solves >= 1

    def test_resolve_factor_one_resolves_often(self, small_independent):
        eager = SUUIAdaptiveLPPolicy(resolve_factor=1.0)
        lazy = SUUIAdaptiveLPPolicy(resolve_factor=100.0)
        run_policy(small_independent, eager, rng=2)
        run_policy(small_independent, lazy, rng=2)
        assert eager.lp_solves >= lazy.lp_solves

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SUUIAdaptiveLPPolicy(resolve_factor=0.5)

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            SUUIAdaptiveLPPolicy().assign(None)

    def test_job_subset(self, small_independent):
        from repro.schedule.base import SimulationState

        pol = SUUIAdaptiveLPPolicy(jobs=[1, 4])
        pol.start(small_independent, np.random.default_rng(0))
        n = small_independent.n_jobs
        state = SimulationState(
            t=0,
            remaining=np.ones(n, dtype=bool),
            eligible=np.ones(n, dtype=bool),
            mass_accrued=np.zeros(n),
        )
        row = pol.assign(state)
        assert set(row[row >= 0].tolist()) <= {1, 4}

    def test_competitive_with_sem(self):
        """The conjecture's candidate should at least track SEM."""
        inst = independent_instance(15, 5, "specialist", rng=3)
        adapt = estimate_expected_makespan(inst, SUUIAdaptiveLPPolicy, 25, rng=4)
        sem = estimate_expected_makespan(inst, SUUISemPolicy, 25, rng=5)
        assert adapt.mean <= sem.mean * 1.5


class TestOfflineBound:
    def test_single_job_exact(self):
        # One machine l = 1, theta = 3 -> needs 3 steps.
        inst = SUUInstance(np.array([[0.5]]))
        assert offline_threshold_bound(inst, np.array([3.0])) == pytest.approx(3.0)

    def test_scales_with_thresholds(self, small_independent):
        n = small_independent.n_jobs
        small = offline_threshold_bound(small_independent, np.full(n, 0.5))
        big = offline_threshold_bound(small_independent, np.full(n, 8.0))
        assert big > small

    def test_lower_bounds_actual_run(self):
        """Any execution with fixed thresholds takes >= the LP bound."""
        inst = independent_instance(8, 3, "uniform", rng=6)
        rng = np.random.default_rng(7)
        for _ in range(3):
            theta = _threshold_profile("random", 8, rng)
            bound = offline_threshold_bound(inst, theta)
            res = run_policy(
                inst, SUUISemPolicy(), rng, semantics="suu_star", thresholds=theta
            )
            assert res.makespan >= bound * (1 - 1e-9) - 1.0

    def test_profiles(self):
        rng = np.random.default_rng(8)
        assert (_threshold_profile("point-4", 5, rng) == 4.0).all()
        heavy = _threshold_profile("one-heavy", 5, rng)
        assert heavy.max() == pytest.approx(24.0)
        with pytest.raises(ValueError):
            _threshold_profile("bogus", 5, rng)


class TestRunCompetitive:
    def test_tiny_run(self):
        res = run_competitive(
            n=10, m=4, profiles=("point-1", "point-8"), n_trials=3
        )
        assert len(res.rows) == 2
        # OBL should degrade from point-1 to point-8 at least as much as SEM.
        sem_growth = res.rows[1][2] / max(res.rows[0][2], 1e-9)
        obl_growth = res.rows[1][3] / max(res.rows[0][3], 1e-9)
        assert obl_growth >= sem_growth * 0.5  # loose sanity, full run in bench
