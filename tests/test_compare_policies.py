"""Tests for paired policy comparison with common random numbers."""

import numpy as np
import pytest

from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.baselines.naive import SerialAllMachinesPolicy
from repro.core.suu_i_obl import SUUIOblPolicy
from repro.instance import SUUInstance, independent_instance
from repro.sim import compare_policies, estimate_expected_makespan


class TestComparePolicies:
    def test_shapes_and_labels(self, small_independent):
        out = compare_policies(
            small_independent,
            {"greedy": GreedyLRPolicy, "serial": SerialAllMachinesPolicy},
            8,
            rng=1,
        )
        assert set(out) == {"greedy", "serial"}
        assert out["greedy"].n_trials == 8
        assert out["greedy"].policy_name == "greedy"

    def test_reproducible(self, small_independent):
        kwargs = dict(
            policy_factories={"a": GreedyLRPolicy, "b": SerialAllMachinesPolicy},
            n_trials=6,
        )
        x = compare_policies(small_independent, rng=3, **kwargs)
        y = compare_policies(small_independent, rng=3, **kwargs)
        assert np.array_equal(x["a"].samples, y["a"].samples)
        assert np.array_equal(x["b"].samples, y["b"].samples)

    def test_rejects_zero_trials(self, small_independent):
        with pytest.raises(ValueError):
            compare_policies(small_independent, {"a": GreedyLRPolicy}, 0, rng=0)

    def test_pairing_reduces_variance(self):
        """Paired differences must be much tighter than independent ones.

        Two policies that differ only by a small perturbation: serial order
        vs serial order (identical) would be exactly zero-variance; compare
        a policy against itself to verify perfect pairing, then greedy vs
        serial for strict improvement.
        """
        inst = independent_instance(10, 3, "uniform", rng=5)
        paired = compare_policies(
            inst, {"s1": SerialAllMachinesPolicy, "s2": SerialAllMachinesPolicy},
            30, rng=6,
        )
        diff = paired["s1"].samples - paired["s2"].samples
        # Same deterministic policy + same thresholds => identical runs.
        assert (diff == 0).all()

    def test_marginals_match_independent_estimates(self):
        """Common thresholds must not bias the marginal mean (Thm 10)."""
        inst = independent_instance(8, 3, "uniform", rng=7)
        paired = compare_policies(inst, {"obl": SUUIOblPolicy}, 300, rng=8)
        indep = estimate_expected_makespan(inst, SUUIOblPolicy, 300, rng=9)
        sem = np.hypot(paired["obl"].sem, indep.sem)
        assert abs(paired["obl"].mean - indep.mean) <= 5 * sem + 0.3

    def test_single_machine_exact_pairing(self):
        """With one machine and one job, both policies tie trial-by-trial."""
        inst = SUUInstance(np.array([[0.5]]))
        out = compare_policies(
            inst, {"a": GreedyLRPolicy, "b": SerialAllMachinesPolicy}, 50, rng=10
        )
        assert np.array_equal(out["a"].samples, out["b"].samples)
