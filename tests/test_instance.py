"""Tests for SUUInstance and serialization (repro.instance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.instance import (
    PrecedenceGraph,
    SUUInstance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)


class TestValidation:
    def test_basic(self, tiny_instance):
        assert tiny_instance.n_jobs == 3
        assert tiny_instance.n_machines == 2
        assert tiny_instance.is_independent()

    def test_rejects_1d(self):
        with pytest.raises(InvalidInstanceError, match="2-D"):
            SUUInstance(np.array([0.5, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            SUUInstance(np.zeros((0, 3)))

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            SUUInstance(np.array([[1.5]]))
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            SUUInstance(np.array([[-0.1]]))

    def test_rejects_nan(self):
        with pytest.raises(InvalidInstanceError, match="non-finite"):
            SUUInstance(np.array([[np.nan]]))

    def test_rejects_hopeless_job(self):
        q = np.array([[0.5, 1.0], [0.5, 1.0]])
        with pytest.raises(InvalidInstanceError, match="never complete"):
            SUUInstance(q)

    def test_rejects_graph_size_mismatch(self):
        with pytest.raises(InvalidInstanceError, match="columns"):
            SUUInstance(np.array([[0.5]]), PrecedenceGraph(2, ()))

    def test_q_is_readonly(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.q[0, 0] = 0.1

    def test_ell_matches_q(self, tiny_instance):
        assert np.allclose(tiny_instance.ell, -np.log2(tiny_instance.q))


class TestDerived:
    def test_best_single_step_success(self):
        inst = SUUInstance(np.array([[0.5], [0.5]]))
        assert inst.best_single_step_success()[0] == pytest.approx(0.75)

    def test_equality_and_hash(self):
        q = np.array([[0.5, 0.6]])
        a = SUUInstance(q)
        b = SUUInstance(q.copy())
        assert a == b
        assert hash(a) == hash(b)
        c = SUUInstance(np.array([[0.5, 0.7]]))
        assert a != c

    def test_precedence_class_passthrough(self, small_chains):
        assert small_chains.precedence_class.value == "chains"


class TestSerialization:
    def test_roundtrip_dict(self, small_chains):
        data = instance_to_dict(small_chains)
        back = instance_from_dict(data)
        assert back == small_chains
        assert back.graph.edges == small_chains.graph.edges

    def test_roundtrip_file(self, tmp_path, small_tree):
        path = tmp_path / "inst.json"
        save_instance(small_tree, path)
        back = load_instance(path)
        assert back == small_tree

    def test_rejects_bad_format(self):
        with pytest.raises(InvalidInstanceError, match="format"):
            instance_from_dict({"format": "bogus"})

    def test_rejects_shape_mismatch(self, tiny_instance):
        data = instance_to_dict(tiny_instance)
        data["n_jobs"] = 99
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_exact_probabilities(self, n, m, seed):
        rng = np.random.default_rng(seed)
        q = rng.uniform(0.05, 0.95, size=(m, n))
        inst = SUUInstance(q)
        back = instance_from_dict(instance_to_dict(inst))
        # float -> repr -> float is exact for binary64.
        assert np.array_equal(back.q, inst.q)
