#!/usr/bin/env python
"""MapReduce on unreliable workers (the paper's second motivation).

The dependency graph of a MapReduce computation is a complete bipartite
DAG — every reducer waits on every mapper — which the paper notes is
"equivalent to two phases of independent jobs".  This example schedules a
map phase of 16 tasks and a reduce phase of 8 tasks on 6 unreliable
workers using :class:`repro.LayeredPolicy` (level-by-level SUU-I-SEM), and
shows the phase barrier in the simulated execution.

Run:  python examples/mapreduce_phases.py
"""

import repro

SEED = 11


def main() -> None:
    # Map phase (16 tasks) -> complete bipartite edges -> reduce phase (8).
    inst = repro.layered_instance([16, 8], 6, "specialist", rng=SEED)
    print(f"instance: {inst}  (edges: {inst.graph.n_edges})")

    policy = repro.LayeredPolicy()
    result = repro.run_policy(inst, policy, rng=SEED + 1)

    mappers = range(16)
    reducers = range(16, 24)
    map_done = max(result.completion_times[j] for j in mappers)
    red_start = min(result.completion_times[j] for j in reducers)
    print(f"makespan: {result.makespan} steps")
    print(f"last mapper finished at t={map_done}")
    print(f"first reducer finished at t={red_start} (> {map_done}: phase barrier)")
    print(f"SEM rounds per completed level: {policy.stats['rounds_per_level']}")

    # Expected makespan vs a per-phase lower bound: the sum of the two
    # phases' independent-jobs bounds is itself a valid lower bound here,
    # because every reducer waits for every mapper.
    stats = repro.estimate_expected_makespan(
        inst, repro.LayeredPolicy, n_trials=40, rng=SEED + 2
    )
    map_inst = repro.SUUInstance(inst.q[:, :16])
    red_inst = repro.SUUInstance(inst.q[:, 16:])
    phase_bound = max(
        repro.lower_bound(map_inst) + repro.lower_bound(red_inst),
        repro.lower_bound(inst),
    )
    print(f"\nE[T] = {stats.mean:.2f}, phase-sum lower bound = {phase_bound:.2f}")
    print(f"=> measured ratio <= {stats.mean / phase_bound:.2f}")


if __name__ == "__main__":
    main()
