#!/usr/bin/env python
"""Volunteer computing (the SETI@home motivation from the paper's intro).

Scenario: a project distributes 60 work units to a pool of volunteer
machines.  Machines are wildly heterogeneous — a few dedicated hosts
almost always return results, most are flaky.  Jobs are independent
(SUU-I).  The question a scheduler faces every timestep: replicate work
units across several flaky hosts, or keep reliable hosts focused?

This example compares four strategies on that workload:

* SUU-I-SEM (the paper's O(log log) algorithm),
* SUU-I-OBL (the LP schedule repeated — O(log n)),
* the Lin–Rajaraman-style greedy,
* naive round-robin.

Run:  python examples/volunteer_computing.py
"""

import numpy as np

import repro

SEED = 7


def build_volunteer_pool(n_jobs: int = 60, rng_seed: int = SEED) -> repro.SUUInstance:
    """A volunteer pool: 3 reliable hosts, 9 flaky ones, 4 nearly dead."""
    rng = np.random.default_rng(rng_seed)
    reliable = rng.uniform(0.05, 0.2, size=(3, n_jobs))   # ~90% success
    flaky = rng.uniform(0.5, 0.9, size=(9, n_jobs))       # coin-flippy
    dying = rng.uniform(0.97, 0.995, size=(4, n_jobs))    # nearly useless
    q = np.vstack([reliable, flaky, dying])
    return repro.SUUInstance(q)


def main() -> None:
    inst = build_volunteer_pool()
    bound = repro.lower_bound(inst)
    print(f"instance: {inst}")
    print(f"lower bound on E[T_OPT]: {bound:.2f}\n")

    contenders = {
        "SUU-I-SEM (paper)": repro.SUUISemPolicy,
        "SUU-I-OBL (repeat LP)": repro.SUUIOblPolicy,
        "greedy (Lin-Rajaraman)": repro.GreedyLRPolicy,
        "round-robin": repro.RoundRobinPolicy,
    }
    rows = []
    for name, factory in contenders.items():
        stats = repro.estimate_expected_makespan(
            inst, factory, n_trials=40, rng=SEED + hash(name) % 1000
        )
        rows.append([name, stats.mean, stats.mean / bound])
    rows.sort(key=lambda r: r[1])
    print(repro.format_table(["strategy", "E[T] (steps)", "ratio vs LB"], rows))

    # How much replication does the winning LP-based schedule use?
    schedule = repro.build_obl_schedule(inst)
    per_step = (schedule.table >= 0).sum(axis=1)
    print(
        f"\nLP schedule: {schedule.length} steps/pass, busy machines per "
        f"step: mean {per_step.mean():.1f} of {inst.n_machines}"
    )


if __name__ == "__main__":
    main()
