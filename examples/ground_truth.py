#!/usr/bin/env python
"""Ground truth: exact optimal schedules on small instances.

SUU's expected makespan is a stochastic shortest-path problem; on small
instances we can solve it *exactly*.  This example shows both exact
engines and what they are for:

* the generic subset DP (any precedence, n <= 16 jobs), which also yields
  the optimal stationary policy itself;
* the Malewicz-style chain-progress DP (constant width), which handles
  far longer chains than the subset DP;
* using them to measure how loose the scalable lower bounds are, and the
  *true* approximation ratio of the paper's algorithm and the greedy.

Also renders an ASCII Gantt chart of one optimal-vs-greedy execution.

Run:  python examples/ground_truth.py
"""

import numpy as np

import repro

SEED = 5


def main() -> None:
    # --- subset DP on an independent instance --------------------------
    inst = repro.independent_instance(6, 2, "uniform", rng=SEED)
    opt = repro.optimal_expected_makespan(inst)
    bound = repro.lower_bound(inst)
    print(f"independent {inst.n_jobs} jobs x {inst.n_machines} machines:")
    print(f"  E[T_OPT] (exact DP over {opt.n_states} states) = {opt.value:.4f}")
    print(f"  scalable lower bound = {bound:.4f}  (OPT/LB = {opt.value / bound:.2f})")

    sem = repro.estimate_expected_makespan(inst, repro.SUUISemPolicy, 300, rng=SEED + 1)
    greedy = repro.estimate_expected_makespan(inst, repro.GreedyLRPolicy, 300, rng=SEED + 2)
    print(f"  SEM    true ratio = {sem.mean / opt.value:.3f}")
    print(f"  greedy true ratio = {greedy.mean / opt.value:.3f}")

    # The DP also gives the optimal action at every state; show the root.
    full_state = (1 << inst.n_jobs) - 1
    print(f"  optimal first-step assignment (machine -> job): "
          f"{list(opt.policy[full_state])}")

    # --- chain-progress DP beyond the subset DP's reach ----------------
    chain_inst = repro.chain_instance(24, 3, 2, "uniform", rng=SEED + 3)
    chain_opt = repro.optimal_chains_expected_makespan(chain_inst)
    chain_bound = repro.lower_bound(chain_inst)
    print(f"\nchains: 24 jobs in 2 chains x 3 machines "
          f"({chain_opt.n_states} progress states — 2^24 would be 16.7M):")
    print(f"  E[T_OPT] = {chain_opt.value:.3f}, LB = {chain_bound:.3f} "
          f"(OPT/LB = {chain_opt.value / chain_bound:.2f})")
    suuc = repro.estimate_expected_makespan(chain_inst, repro.SUUCPolicy, 60, rng=SEED + 4)
    print(f"  SUU-C true ratio = {suuc.mean / chain_opt.value:.3f}")

    # --- one traced execution as ASCII Gantt ---------------------------
    print("\none greedy execution on the independent instance:")
    traced = repro.TracingPolicy(repro.GreedyLRPolicy())
    result = repro.run_policy(inst, traced, rng=SEED + 5)
    print(repro.render_gantt(traced.trace, completion_times=result.completion_times))


if __name__ == "__main__":
    main()
