#!/usr/bin/env python
"""Software-build-style trees (SUU-T, Appendix B / Theorem 12).

Scenario: an in-tree of build targets — many leaf compilations feed
intermediate links that feed one final target — executed by a farm of
unreliable build workers.  SUU-T decomposes the tree into O(log n) blocks
of chains (heavy-path decomposition) and runs SUU-C per block.

Run:  python examples/build_dag_trees.py
"""

import repro
from repro.instance import decompose_forest

SEED = 31


def main() -> None:
    # In-tree: children (dependencies) point at their parent target.
    inst = repro.tree_instance(40, 6, "in", "specialist", rng=SEED)
    print(f"instance: {inst}")

    blocks = decompose_forest(inst.graph)
    print(f"\nheavy-path decomposition: {len(blocks)} blocks "
          f"(Theorem 12 bound: floor(log2 40)+1 = 6)")
    for b, blk in enumerate(blocks):
        sizes = sorted((len(c) for c in blk), reverse=True)
        print(f"  block {b}: {len(blk)} chains, sizes {sizes}")

    policy = repro.SUUTPolicy()
    result = repro.run_policy(inst, policy, rng=SEED + 1)
    print(f"\none SUU-T run: makespan={result.makespan} steps, "
          f"{policy.stats['n_blocks']} blocks")

    # Every dependency finished before its dependent (engine-enforced,
    # shown here for the reader).
    violations = sum(
        1
        for u, v in inst.graph.edges
        if result.completion_times[u] >= result.completion_times[v]
    )
    print(f"precedence violations: {violations}")

    bound = repro.lower_bound(inst)
    stats = repro.estimate_expected_makespan(inst, repro.SUUTPolicy, 25, rng=SEED + 2)
    serial = repro.estimate_expected_makespan(
        inst, repro.SerialAllMachinesPolicy, 25, rng=SEED + 3
    )
    print(f"\nE[T] SUU-T  = {stats.mean:.2f}  (ratio <= {stats.mean / bound:.2f})")
    print(f"E[T] serial = {serial.mean:.2f}  (ratio <= {serial.mean / bound:.2f})")


if __name__ == "__main__":
    main()
