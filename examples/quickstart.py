#!/usr/bin/env python
"""Quickstart: build an SUU instance, schedule it, measure the result.

Covers the core loop of the library in ~40 lines:

1. declare and measure a workload through the ``repro.api`` facade,
2. run the paper's SUU-I-SEM policy once and inspect the execution,
3. estimate its expected makespan by Monte Carlo,
4. compare against a provable lower bound and a naive baseline.

Run:  python examples/quickstart.py
"""

import repro

SEED = 42


def main() -> None:
    # The one-call path: declare the workload, let the policy registry pick
    # the paper's algorithm for its precedence class, get stats + bound back.
    scenario = repro.Scenario(shape="independent", n_jobs=20, n_machines=6,
                              model="specialist", seed=SEED)
    report = repro.simulate(scenario, policy="auto",
                            config=repro.SimConfig(n_trials=60, seed=SEED + 1))
    print(f"facade:   {report!r}")

    # Everything below does the same measurement with the low-level pieces.
    # 20 independent unit jobs, 6 machines; each job has 2 "specialist"
    # machines that mostly succeed and 4 that mostly fail -- the unrelated
    # machines regime the paper targets.
    inst = repro.independent_instance(20, 6, "specialist", rng=SEED)
    print(f"instance: {inst}")

    # One simulated execution under the paper's semantics.
    policy = repro.SUUISemPolicy()
    result = repro.run_policy(inst, policy, rng=SEED)
    print(
        f"single run: makespan={result.makespan} steps, "
        f"LP rounds used={policy.rounds_used}, "
        f"machine-steps of real work={result.busy_machine_steps}"
    )

    # Expected makespan, with a 95% confidence interval.
    stats = repro.estimate_expected_makespan(
        inst, repro.SUUISemPolicy, n_trials=60, rng=SEED + 1
    )
    lo, hi = stats.ci95
    print(f"SUU-I-SEM:  E[T] = {stats.mean:.2f}  (95% CI [{lo:.2f}, {hi:.2f}])")

    # A provable lower bound on ANY schedule's expected makespan.
    bound = repro.lower_bound(inst)
    print(f"lower bound on E[T_OPT]: {bound:.2f}")
    print(f"=> measured approximation ratio <= {stats.mean / bound:.2f}")

    # Contrast with the trivial serial strategy (the paper's O(n) fallback).
    serial = repro.estimate_expected_makespan(
        inst, repro.SerialAllMachinesPolicy, n_trials=60, rng=SEED + 2
    )
    print(f"serial-all-machines baseline: E[T] = {serial.mean:.2f}")


if __name__ == "__main__":
    main()
