#!/usr/bin/env python
"""Sweep a scenario grid across policies with the batched service.

Declares a 2x2 grid (two precedence shapes x two sizes), measures the
registry's auto-selected paper algorithm against the Lin-Rajaraman greedy
baseline on every cell, and prints one line per report.  Pass ``--process``
to fan the Monte Carlo trials out over a worker pool — the results are
bit-identical to the serial run because every trial's RNG stream is spawned
up-front from the config seed.

Run:  python examples/sweep_grid.py [--process]
"""

import sys
import time

import repro


def main() -> None:
    backend = "process" if "--process" in sys.argv[1:] else "serial"
    grid = repro.ScenarioGrid(
        repro.Scenario(model="specialist", n_machines=6, seed=7),
        shape=["independent", "chains"],
        n_jobs=[20, 40],
    )
    config = repro.SimConfig(n_trials=30, seed=1)
    print(f"{len(grid)} scenarios x 2 policies, {config.n_trials} trials each "
          f"({backend} backend)")

    start = time.perf_counter()
    reports = repro.evaluate_grid(grid, ["auto", "greedy"],
                                  config=config, backend=backend)
    elapsed = time.perf_counter() - start

    for rep in reports:
        lo, hi = rep.stats.ci95
        print(f"  {rep.scenario.label():44s} {rep.policy:8s} "
              f"E[T]={rep.mean:7.2f}  CI=[{lo:6.2f}, {hi:6.2f}]  "
              f"ratio<={rep.ratio:5.2f}")
    print(f"done in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
