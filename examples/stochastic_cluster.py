#!/usr/bin/env python
"""Stochastic job lengths on an unrelated cluster (Appendix C / STC-I).

Scenario: a batch cluster runs jobs whose durations are exponentially
distributed with known rates (historical averages), on machines with
job-dependent speeds.  Only rates are known in advance; realized lengths
reveal themselves as jobs run.  STC-I schedules doubling-guess
Lawler–Labetoulle preemptive rounds; the restart variant does the same
with non-preemptive LST assignments.

Run:  python examples/stochastic_cluster.py
"""

import numpy as np

import repro
from repro.core.stoch import (
    estimate_stochastic,
    serial_fastest_trial,
    static_mean_trial,
    stc_i_trial,
    stochastic_round_count,
)
from repro.stochastic import decompose_timetable, solve_r_pmtn_cmax

SEED = 47


def main() -> None:
    inst = repro.stochastic_instance(24, 6, rng=SEED, speed_model="specialist")
    print(f"instance: {inst}")
    print(f"STC-I round budget K = {stochastic_round_count(inst.n_jobs)}\n")

    # Peek at one Lawler-Labetoulle round: guess mean lengths, solve, and
    # decompose into a preemptive timetable.
    guesses = inst.mean_lengths() / 2.0  # round 1 guesses: 2^-1 / lambda
    c_star, X = solve_r_pmtn_cmax(inst.speeds, guesses)
    timetable = decompose_timetable(X, c_star)
    print(f"round 1: C* = {c_star:.3f}, timetable has {len(timetable.segments)} "
          "constant-assignment segments (no job ever on 2 machines)")

    # One full trial with visible internals.
    rng = np.random.default_rng(SEED + 1)
    realized = inst.sample_lengths(rng)
    trial = stc_i_trial(inst, realized)
    print(f"\none STC-I trial: makespan={trial.makespan:.2f}, "
          f"rounds used={trial.rounds_used}, fallback={trial.fallback}")

    # Monte Carlo comparison (shared length draws per contender).
    print("\nexpected makespans over 25 trials (ratio vs realized optimum):")
    rows = []
    for name, fn in {
        "STC-I (paper)": stc_i_trial,
        "STC-I restart": lambda i, p: stc_i_trial(i, p, variant="restart"),
        "static mean (no doubling)": static_mean_trial,
        "serial fastest": serial_fastest_trial,
    }.items():
        stats, lbs = estimate_stochastic(inst, fn, 25, rng=SEED + 2)
        rows.append([name, stats.mean, stats.mean / lbs.mean])
    rows.sort(key=lambda r: r[1])
    print(repro.format_table(["strategy", "E[T]", "ratio"], rows))


if __name__ == "__main__":
    main()
