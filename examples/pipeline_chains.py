#!/usr/bin/env python
"""Disjoint pipelines on unreliable machines (SUU-C, Section 4).

Scenario: 5 independent data pipelines, each a chain of stages
(ingest -> clean -> transform -> ... ).  A stage can be attempted by
several machines at once; stages within a pipeline are strictly ordered.
This is exactly SUU-C, and the example walks through the algorithm's
moving parts: the (LP2) solution, the rounded assignment's load and chain
lengths, the random delays, and the end-to-end makespan against baselines.

Run:  python examples/pipeline_chains.py
"""

import repro
from repro.core.lp2 import round_lp2, solve_lp2
from repro.instance import extract_chains

SEED = 23


def main() -> None:
    inst = repro.chain_instance(30, 6, 5, "specialist", rng=SEED)
    chains = extract_chains(inst.graph)
    print(f"instance: {inst}")
    print("pipelines:", [len(c) for c in chains], "stages each\n")

    # Peek inside the algorithm: LP2 + Lemma 6 rounding.
    relaxation = solve_lp2(inst, chains)
    assignment = round_lp2(relaxation)
    lengths = assignment.lengths
    print(f"(LP2) optimal value t* = {relaxation.t_star:.2f}")
    print(f"rounded assignment: machine load = {assignment.load} "
          f"(<= ceil(6 t*) = {int(6 * relaxation.t_star) + 1})")
    for k, chain in enumerate(chains):
        total = int(sum(lengths[j] for j in chain))
        print(f"  pipeline {k}: rounded length {total} (<= 7 t*)")

    # Execute SUU-C and collect its diagnostics.
    policy = repro.SUUCPolicy()
    result = repro.run_policy(inst, policy, rng=SEED + 1)
    s = policy.stats
    print(f"\none SUU-C run: makespan={result.makespan}, "
          f"supersteps={s['supersteps']}, max congestion={s['max_congestion']}, "
          f"long jobs={s['n_long_jobs']}, segment SEM runs={s['sem_runs']}")

    # Expected makespans.
    bound = repro.lower_bound(inst)
    rows = []
    for name, factory in {
        "SUU-C (paper)": repro.SUUCPolicy,
        "greedy": repro.GreedyLRPolicy,
        "serial": repro.SerialAllMachinesPolicy,
    }.items():
        stats = repro.estimate_expected_makespan(inst, factory, 30, rng=SEED + 2)
        rows.append([name, stats.mean, stats.mean / bound])
    print()
    print(repro.format_table(["strategy", "E[T]", "ratio vs LB"], rows))


if __name__ == "__main__":
    main()
