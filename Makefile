# Developer entry points.  `make test` is the tier-1 gate; `make bench`
# produces a pytest-benchmark json; `make bench-check` additionally fails
# when the scalar-vs-batch speedup ratios regress >25% against the
# committed baseline (the latest BENCH_<n>.json).  Ratios are machine-
# independent — both sides of each ratio are measured in the same run —
# so the gate holds on slow shared runners where absolute means drift.

PYTHON ?= python
BENCH_JSON ?= bench_current.json
BENCH_BASELINE ?= BENCH_4.json
BENCH_TOLERANCE ?= 0.25

.PHONY: test test-v2 bench bench-check tables

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 under RNG discipline v2 (env-selected default): exercises the
# batch-native streams through every service/montecarlo test while the
# pinned bit-identity suites keep checking v1.
test-v2:
	PYTHONPATH=src REPRO_DISCIPLINE=v2 $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_kernels.py \
		benchmarks/bench_batch.py benchmarks/bench_adaptive.py \
		--benchmark-json=$(BENCH_JSON) -q

bench-check: bench
	$(PYTHON) benchmarks/check_regression.py $(BENCH_BASELINE) $(BENCH_JSON) \
		--mode ratio --tolerance $(BENCH_TOLERANCE)

# Regenerate every experiment table at bench size (slow).
tables:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only
