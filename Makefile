# Developer entry points.  `make test` is the tier-1 gate; `make lint`
# mirrors CI's lint job (ruff + mypy; `pip install -e ".[lint]"` once);
# `make bench` produces a pytest-benchmark json; `make bench-check`
# additionally fails when the scalar-vs-batch speedup ratios regress >25%
# against the committed baseline (the latest BENCH_<n>.json).  Ratios are
# machine-independent — both sides of each ratio are measured in the same
# run — so the gate holds on slow shared runners where absolute means
# drift.

PYTHON ?= python
BENCH_JSON ?= bench_current.json
BENCH_BASELINE ?= BENCH_5.json
BENCH_TOLERANCE ?= 0.25
SERVICE_JSON ?= bench_service_current.json
SERVICE_BASELINE ?= BENCH_6.json
# Service ratios fold in OS scheduling and pool spawn, so they are
# noisier than kernel ratios; the wider tolerance still catches a lost
# warm pool (the gated ratio collapses ~10x when every request respawns).
SERVICE_TOLERANCE ?= 0.5
LPWALL_JSON ?= bench_lpwall_current.json
LPWALL_BASELINE ?= BENCH_7.json
# The gated exact/subset wall-clock ratio is ~1.5-2.1x (the sim engine
# shares both sides; only the solver work differs), so noise is a larger
# fraction of it; the hard solve-count floor (>= 5x fewer solves) is
# asserted inside bench_lpwall.py itself and does not depend on timing.
LPWALL_TOLERANCE ?= 0.3
KERNELS_JSON ?= bench_kernels_current.json
KERNELS_BASELINE ?= BENCH_8.json
# The checked/trusted validation-hoist ratio is ~1.0x on the numpy
# backend (its checks are whole-batch array ops), so almost all of it is
# noise; the pair is there to *measure* the delta and keep the gate
# non-empty without numba.  The numpy/numba pairs hard-assert their
# bit-identity and >= 2x floor inside bench_kernels.py itself.
KERNELS_TOLERANCE ?= 0.5
PARALLEL_JSON ?= bench_parallel_current.json
PARALLEL_BASELINE ?= BENCH_9.json
# Serial-vs-threaded ratios depend on how loaded the runner's cores are;
# the hard guarantees (bit-identity always, the 2x prange floor on
# >= 4-core boxes) are asserted inside bench_parallel.py itself.
PARALLEL_TOLERANCE ?= 0.5
COV_FLOOR ?= 85

.PHONY: test test-v2 test-kernel-python lint cov bench bench-check \
	bench-service bench-service-check bench-lpwall bench-lpwall-check \
	bench-kernels bench-kernels-check bench-parallel \
	bench-parallel-check smoke suite-smoke tables

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Tier-1 under RNG discipline v2 (env-selected default): exercises the
# batch-native streams through every service/montecarlo test while the
# pinned bit-identity suites keep checking v1.
test-v2:
	PYTHONPATH=src REPRO_DISCIPLINE=v2 $(PYTHON) -m pytest -x -q

# Tier-1 on the uncompiled loop-nest kernel backend: every test that
# drives the batch engine re-checks bit-identity of the fused logic the
# numba backend compiles — no numba required.  (CI's numba leg runs the
# same suite with REPRO_KERNEL=numba when the [kernels] extra installs.)
test-kernel-python:
	PYTHONPATH=src REPRO_KERNEL=python $(PYTHON) -m pytest -x -q

# CI's lint job, locally: ruff for style/imports, ruff format for layout,
# mypy (permissive config in pyproject.toml) for obvious type breakage.
lint:
	$(PYTHON) -m ruff check src tests benchmarks
	$(PYTHON) -m ruff format --check src tests benchmarks
	$(PYTHON) -m mypy src/repro

# CI's coverage leg, locally (needs pytest-cov: `pip install pytest-cov`).
cov:
	PYTHONPATH=src $(PYTHON) -m pytest -q --cov=repro \
		--cov-report=term --cov-report=xml --cov-fail-under=$(COV_FLOOR)

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_kernels.py \
		benchmarks/bench_batch.py benchmarks/bench_adaptive.py \
		benchmarks/bench_ablation_adaptive.py \
		benchmarks/bench_ablation_rounds.py \
		benchmarks/bench_ablation_segments.py \
		benchmarks/bench_ablation_rounding.py \
		--benchmark-json=$(BENCH_JSON) -q

bench-check: bench
	$(PYTHON) benchmarks/check_regression.py $(BENCH_BASELINE) $(BENCH_JSON) \
		--mode ratio --tolerance $(BENCH_TOLERANCE)

# Scheduling-as-a-service benchmarks: executor lifecycle ratios
# (per-request pool spawn vs warm pool) and full-stack latency columns.
bench-service:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_service.py \
		--benchmark-json=$(SERVICE_JSON) -q

bench-service-check: bench-service
	$(PYTHON) benchmarks/check_regression.py $(SERVICE_BASELINE) \
		$(SERVICE_JSON) --mode ratio --tolerance $(SERVICE_TOLERANCE)

# LP-wall benchmarks: 10k-trial exact-vs-subset survivor-reuse pairs for
# suu-c / suu-t / sem (slow: ~6-8 min; each subset row also hard-asserts
# the >= 5x solve-count collapse and mean-makespan proximity).
bench-lpwall:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_lpwall.py \
		--benchmark-json=$(LPWALL_JSON) -q

bench-lpwall-check: bench-lpwall
	$(PYTHON) benchmarks/check_regression.py $(LPWALL_BASELINE) \
		$(LPWALL_JSON) --mode ratio --tolerance $(LPWALL_TOLERANCE)

# Kernel-backend benchmarks: numpy-vs-numba pairs at 10k trials (skipped
# without numba; bit-identity + the 2x floor are hard-asserted in-bench)
# plus the checked/trusted validation-hoist pair, runnable everywhere.
bench-kernels:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_kernels.py \
		--benchmark-json=$(KERNELS_JSON) -q

bench-kernels-check: bench-kernels
	$(PYTHON) benchmarks/check_regression.py $(KERNELS_BASELINE) \
		$(KERNELS_JSON) --mode ratio --tolerance $(KERNELS_TOLERANCE)

# Trial-parallelism benchmarks: serial vs kernel_threads pairs at 10k
# trials — GIL-bound numpy shard rows everywhere, the in-kernel prange
# row (bit-identity + 2x floor on >= 4 cores, in-bench) with numba.
bench-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_parallel.py \
		--benchmark-json=$(PARALLEL_JSON) -q

bench-parallel-check: bench-parallel
	$(PYTHON) benchmarks/check_regression.py $(PARALLEL_BASELINE) \
		$(PARALLEL_JSON) --mode ratio --tolerance $(PARALLEL_TOLERANCE)

# End-to-end service smoke: boot `repro serve`, drive ~5s of open-loop
# constant-RPS load, assert zero errors + p99 sanity, SIGTERM gracefully.
smoke:
	$(PYTHON) benchmarks/smoke_service.py

# End-to-end suite-runner smoke: run the committed 2-cell suite twice
# through the CLI — first run executes everything, the rerun must be
# 100% content-address cache hits, and deleting one artifact re-executes
# exactly that cell.
suite-smoke:
	$(PYTHON) benchmarks/smoke_suite.py

# Regenerate every experiment table at bench size (slow).
tables:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only
