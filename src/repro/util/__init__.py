"""Shared numeric and RNG utilities used across the library."""

from repro.util.logmass import (
    LOGMASS_CAP,
    capped_logmass,
    failure_to_logmass,
    group_index,
    logmass_matrix,
    logmass_to_failure,
    success_probability,
)
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = [
    "LOGMASS_CAP",
    "failure_to_logmass",
    "logmass_to_failure",
    "logmass_matrix",
    "capped_logmass",
    "success_probability",
    "group_index",
    "ensure_rng",
    "spawn_rngs",
]
