"""Seeding discipline.

Every stochastic entry point in the library accepts either an integer seed
or a ready :class:`numpy.random.Generator`.  Child streams (one per Monte
Carlo trial, one per policy) are derived with ``Generator.spawn`` so trials
are statistically independent and fully reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministically-seeded generator; an int
    (or anything :class:`numpy.random.SeedSequence` accepts) yields a
    deterministic one; an existing generator is passed through unchanged.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Uses ``Generator.spawn`` (SeedSequence-based), so children are
    independent of each other *and* of the parent's future output.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return list(rng.spawn(count))
