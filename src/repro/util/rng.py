"""Seeding and RNG-discipline machinery.

Every stochastic entry point in the library accepts either an integer seed
or a ready :class:`numpy.random.Generator`.  Child streams (one per Monte
Carlo trial, one per policy) are derived with ``Generator.spawn`` so trials
are statistically independent and fully reproducible from a single seed.

Disciplines
-----------
Batched execution supports two *versioned RNG disciplines* selecting how
the batch kernel consumes randomness:

``"v1"`` (serial replay, the default)
    The kernel replays the serial estimators' RNG tree exactly — one
    spawned generator per trial, the engine's per-trial ``spawn(2)`` split,
    per-trial ``Generator.random(k)`` coin flips under ``suu`` semantics.
    Batched, chunked, and scalar runs are **bit-identical**.

``"v2"`` (batch native, a documented break)
    Outcome randomness is drawn in whole-batch blocks from a per-run
    :class:`numpy.random.SeedSequence` spawn tree (:class:`BatchStreams`):
    one ``(n_trials, n_jobs)`` uniform matrix per step under ``suu``, one
    matrix of thresholds under ``suu_star``, and matrix-valued policy
    randomness (SUU-C's chain delays).  Makespan *streams* differ from v1,
    but every draw has the same distribution, so all estimates are
    statistically equivalent; results remain deterministic in the seed and
    independent of chunking (streams are addressed by global trial index,
    not chunk-local position).

The active discipline is resolved by :func:`resolve_discipline`: an
explicit argument wins, then the ``REPRO_DISCIPLINE`` environment
variable, then ``"v1"``.

The v2 spawn-tree contract
--------------------------
All v2 randomness hangs off one :class:`numpy.random.SeedSequence` per
run (:func:`run_seed_sequence`).  Stream keys extend the root's
``spawn_key`` with a fixed marker word plus a purpose tag, so v2 streams
can never collide with the ``rng.spawn(n_trials)`` children the v1 tree
hands out from the same seed:

* ``(marker, 0)`` — SUU* thresholds, one row per trial.
* ``(marker, 1, t)`` — step ``t``'s SUU completion uniforms, one row per
  trial.
* ``(marker, 2, *key)`` — policy randomness (e.g. SUU-C chain delays,
  keyed by block for SUU-T).
* ``(marker, 3, i)`` — per-policy substreams (``compare_policies``).

Rows are addressed by *global* trial index: a chunk simulating trials
``[lo, hi)`` of a larger run reads rows ``lo..hi-1`` of each conceptual
matrix (via :meth:`BatchStreams.with_offset`), which is what makes v2
results invariant under backend and chunk layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "DISCIPLINES",
    "DISCIPLINE_ENV_VAR",
    "resolve_discipline",
    "run_seed_sequence",
    "BatchStreams",
]

#: The recognized RNG disciplines (see module docstring).
DISCIPLINES: tuple[str, ...] = ("v1", "v2")

#: Environment variable supplying the default discipline when none is
#: passed explicitly (CI runs the tier-1 suite once with this set to v2).
DISCIPLINE_ENV_VAR = "REPRO_DISCIPLINE"

#: Marker word prefixed to every v2 stream's spawn key.  ``rng.spawn``
#: children of the same seed extend the spawn key with small counters, so
#: a large fixed word keeps the two trees disjoint.
_V2_MARKER = 0x52455052  # "REPR"

# Purpose tags under the marker (see module docstring).
_TAG_THRESHOLDS = 0
_TAG_STEP = 1
_TAG_POLICY = 2
_TAG_SUBSTREAM = 3


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministically-seeded generator; an int
    (or anything :class:`numpy.random.SeedSequence` accepts) yields a
    deterministic one; an existing generator is passed through unchanged.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Uses ``Generator.spawn`` (SeedSequence-based), so children are
    independent of each other *and* of the parent's future output.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return list(rng.spawn(count))


def resolve_discipline(discipline: str | None = None) -> str:
    """The active RNG discipline: argument, else env var, else ``"v1"``.

    Delegates to :func:`repro.api.config.resolve_discipline` — the one
    documented explicit → ``SimConfig`` → ``REPRO_DISCIPLINE`` → default
    chain (this module keeps the name for its long-standing callers).
    Raises :class:`ValueError` on anything outside :data:`DISCIPLINES`,
    including a bad environment value, so typos fail loudly rather than
    silently running v1.
    """
    # Deferred: repro.api.config is the single env-reading module and
    # sits above this one (importing it pulls the whole api package).
    from repro.api.config import resolve_discipline as _resolve

    return _resolve(discipline)


def run_seed_sequence(seed_or_rng=None) -> np.random.SeedSequence:
    """The per-run :class:`SeedSequence` root of the v2 spawn tree.

    * A :class:`SeedSequence` passes through unchanged.
    * An int (or ``None``) seeds a fresh sequence, exactly the sequence
      ``default_rng(seed)`` is built on — so a run seeded with an integer
      has *one* root for both the v1 trial tree and the v2 streams.
    * A :class:`Generator` contributes a spawned child's sequence, so
      reusing one generator for several runs yields fresh v2 streams each
      time (mirroring how repeated ``spawn`` calls walk forward).
    """
    if isinstance(seed_or_rng, np.random.SeedSequence):
        return seed_or_rng
    if isinstance(seed_or_rng, np.random.Generator):
        child = seed_or_rng.spawn(1)[0]
        seq = getattr(child.bit_generator, "seed_seq", None)
        if isinstance(seq, np.random.SeedSequence):
            return seq
        # Bit generator without a tracked SeedSequence: fall back to fresh
        # entropy drawn from the generator itself.
        return np.random.SeedSequence(int(seed_or_rng.integers(2**63)))
    return np.random.SeedSequence(seed_or_rng)


@dataclass(frozen=True)
class BatchStreams:
    """Addressable v2 randomness for one batch of lock-stepped trials.

    A thin, picklable handle on the per-run spawn tree (see the module
    docstring for the key layout).  All draws come back as matrices with
    one row per trial; ``offset`` is the global index of this batch's
    first trial, so a worker chunk reads exactly the rows the whole-run
    matrix would have given it.

    The row discipline relies on ``Philox`` being counter-based: each
    float64 consumes one 64-bit word, so row ``k`` of an ``(n, c)`` matrix
    starts at word ``k * c`` and can be reached with ``advance`` without
    generating the skipped words.
    """

    root: np.random.SeedSequence
    offset: int = 0

    def with_offset(self, offset: int) -> "BatchStreams":
        """The same streams re-based at global trial index ``offset``."""
        return BatchStreams(self.root, int(offset))

    def child(self, index: int) -> "BatchStreams":
        """An independent substream family (e.g. one per compared policy)."""
        return BatchStreams(self._sequence(_TAG_SUBSTREAM, index), self.offset)

    # ------------------------------------------------------------------
    def _sequence(self, *key: int) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            entropy=self.root.entropy,
            spawn_key=tuple(self.root.spawn_key) + (_V2_MARKER,) + key,
        )

    def _uniform_rows(self, key: tuple, n_rows: int, n_cols: int) -> np.ndarray:
        """Rows ``[offset, offset + n_rows)`` of stream ``key``'s conceptual
        uniform matrix, shape ``(n_rows, n_cols)``."""
        bit_gen = np.random.Philox(self._sequence(*key))
        skip = self.offset * n_cols
        if skip:
            bit_gen.advance(skip // 4)  # Philox blocks hold 4 words
        gen = np.random.Generator(bit_gen)
        if skip % 4:
            gen.random(skip % 4)
        return gen.random((n_rows, n_cols))

    # ------------------------------------------------------------------
    def thresholds(self, n_trials: int, n_jobs: int) -> np.ndarray:
        """The batch's SUU* thresholds ``theta = -log2 r``, ``r ~ U(0,1)``.

        One ``(n_trials, n_jobs)`` draw replacing v1's per-trial
        ``draw_thresholds`` loop; same marginal distribution
        (exponential with mean ``1/ln 2``).
        """
        u = self._uniform_rows((_TAG_THRESHOLDS,), n_trials, n_jobs)
        # 1 - u lies in (0, 1]: theta is finite with probability 1 and the
        # measure-zero u == 0 edge maps to theta = 0, not infinity.
        return -np.log2(1.0 - u)

    def step_uniforms(self, step: int, n_trials: int, n_jobs: int) -> np.ndarray:
        """Step ``step``'s SUU completion uniforms, ``(n_trials, n_jobs)``."""
        return self._uniform_rows((_TAG_STEP, step), n_trials, n_jobs)

    def policy_integers(
        self, n_trials: int, n_cols: int, high: int, *key: int
    ) -> np.ndarray:
        """Policy randomness: iid uniform integers over ``[0, high)``.

        ``key`` distinguishes independent draws (e.g. SUU-T blocks).  Used
        for SUU-C's chain start delays, one row per trial.
        """
        if high < 1:
            raise ValueError(f"high must be >= 1, got {high}")
        u = self._uniform_rows((_TAG_POLICY,) + key, n_trials, n_cols)
        return np.minimum((u * high).astype(np.int64), high - 1)
