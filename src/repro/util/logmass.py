"""Conversions between failure probabilities and log masses.

The paper works in log space: the *log failure* of job ``j`` on machine ``i``
is ``l_ij = -log2(q_ij)``, so the probability that ``j`` survives a step in
which machines ``M`` run it is ``prod_i q_ij = 2**(-sum_i l_ij)``.  The sum
``sum_i l_ij`` is the *log mass* given to the job in that step.

All logarithms in this module (and the library) are base 2, matching the
paper.  A failure probability of exactly ``0`` corresponds to infinite log
mass; we clamp it to :data:`LOGMASS_CAP`, which is large enough that a single
step succeeds with probability ``1 - 2**-LOGMASS_CAP`` (indistinguishable
from certainty in double precision for any simulation we run).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "LOGMASS_CAP",
    "failure_to_logmass",
    "logmass_to_failure",
    "logmass_matrix",
    "capped_logmass",
    "success_probability",
    "group_index",
]

#: Upper clamp for log masses.  ``2**-64`` is far below double-precision
#: resolution of probabilities near 1, so clamping ``q = 0`` to
#: ``l = 64`` does not change any observable simulation outcome.
LOGMASS_CAP: float = 64.0

#: Log masses below this threshold are treated as zero (machine useless for
#: the job).  ``2**-LOGMASS_CAP`` guards the reverse direction: a machine
#: whose success probability is below ~5e-20 per step contributes nothing
#: observable.
_LOGMASS_FLOOR: float = 2.0**-LOGMASS_CAP


def failure_to_logmass(q):
    """Convert failure probabilities ``q`` to log masses ``-log2(q)``.

    Parameters
    ----------
    q:
        Scalar or array of failure probabilities in ``[0, 1]``.

    Returns
    -------
    Log masses, clamped to ``[0, LOGMASS_CAP]``.  ``q = 1`` maps to ``0``
    (the machine makes no progress); ``q = 0`` maps to :data:`LOGMASS_CAP`.
    """
    q = np.asarray(q, dtype=np.float64)
    out = np.empty_like(q)
    with np.errstate(divide="ignore"):
        np.log2(np.maximum(q, 2.0**-LOGMASS_CAP), out=out)
    np.negative(out, out=out)
    np.clip(out, 0.0, LOGMASS_CAP, out=out)
    if out.ndim == 0:
        return float(out)
    return out


def logmass_to_failure(ell):
    """Convert log masses back to failure probabilities ``2**-ell``."""
    ell = np.asarray(ell, dtype=np.float64)
    out = np.power(2.0, -np.clip(ell, 0.0, LOGMASS_CAP))
    if out.ndim == 0:
        return float(out)
    return out


def logmass_matrix(q):
    """Log-mass matrix for a failure-probability matrix ``q`` (shape (m, n))."""
    return failure_to_logmass(np.asarray(q, dtype=np.float64))


def capped_logmass(ell, cap):
    """Per-entry minimum ``min(ell, cap)``, the ``l'`` of Lemma 2 / Lemma 6.

    Capping is what makes the grouping argument work: after capping, no
    machine can deliver more than ``cap`` mass in a step, so group indices
    ``floor(log2 l')`` never exceed ``floor(log2 cap)``.
    """
    if cap <= 0:
        raise ValueError(f"logmass cap must be positive, got {cap}")
    return np.minimum(np.asarray(ell, dtype=np.float64), float(cap))


def success_probability(mass):
    """Probability ``1 - 2**-mass`` that a job completes given total log mass.

    Uses ``-expm1(-mass * ln 2)`` for accuracy at small masses (where
    ``1 - 2**-mass`` would lose precision to cancellation).
    """
    mass = np.asarray(mass, dtype=np.float64)
    out = -np.expm1(-mass * math.log(2.0))
    if out.ndim == 0:
        return float(out)
    return out


def group_index(ell):
    """Group index ``floor(log2 ell)`` used by the Lemma 2 rounding.

    Machines with log masses in ``[2**k, 2**(k+1))`` for a job are pooled
    into group ``k``.  Zero (or sub-floor) masses have no group and map to
    the sentinel ``None`` (scalar) / are invalid to pass in arrays.
    """
    e = float(ell)
    if e < _LOGMASS_FLOOR:
        return None
    return int(math.floor(math.log2(e)))
