"""Problem instances: the SUU model, precedence DAGs, and workload generators."""

from repro.instance.chains import chain_of_each_job, extract_chains
from repro.instance.decomposition import decompose_forest
from repro.instance.generators import (
    StochasticInstance,
    chain_instance,
    failure_matrix,
    forest_instance,
    independent_instance,
    layered_instance,
    lpwall_instance,
    prelude_chain_instance,
    random_dag_instance,
    stochastic_instance,
    tree_instance,
)
from repro.instance.instance import SUUInstance
from repro.instance.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.instance.precedence import PrecedenceClass, PrecedenceGraph

__all__ = [
    "SUUInstance",
    "PrecedenceGraph",
    "PrecedenceClass",
    "extract_chains",
    "chain_of_each_job",
    "decompose_forest",
    "failure_matrix",
    "independent_instance",
    "chain_instance",
    "prelude_chain_instance",
    "lpwall_instance",
    "tree_instance",
    "forest_instance",
    "layered_instance",
    "random_dag_instance",
    "StochasticInstance",
    "stochastic_instance",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
]
