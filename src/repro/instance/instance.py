"""The SUU problem instance.

An instance is ``(J, M, {q_ij}, G)``: ``n`` unit-length jobs, ``m``
machines, a failure-probability matrix ``q`` of shape ``(m, n)`` where
``q[i, j]`` is the probability that job ``j`` does *not* complete when
machine ``i`` runs it for one step, and a precedence DAG ``G``.

Instances are immutable; derived quantities (the log-mass matrix, the
precedence classification) are computed once at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidInstanceError
from repro.instance.precedence import PrecedenceClass, PrecedenceGraph
from repro.util.logmass import logmass_matrix

__all__ = ["SUUInstance"]


@dataclass(frozen=True)
class SUUInstance:
    """An immutable multiprocessor-scheduling-under-uncertainty instance.

    Parameters
    ----------
    q:
        Failure probabilities, shape ``(m, n)`` (machine-major, matching the
        paper's ``q_ij`` with ``i`` a machine and ``j`` a job).  Entries must
        lie in ``[0, 1]`` and every job must have at least one machine with
        ``q_ij < 1`` (the paper's standing assumption; otherwise the job can
        never complete and no schedule has finite expected makespan).
    graph:
        Precedence constraints.  ``None`` means independent jobs.

    Attributes
    ----------
    ell:
        Log-mass matrix ``-log2(q)``, clamped to ``[0, LOGMASS_CAP]``.
    """

    q: np.ndarray
    graph: PrecedenceGraph
    ell: np.ndarray = field(init=False, repr=False, compare=False)

    def __init__(self, q, graph: PrecedenceGraph | None = None):
        q = np.ascontiguousarray(np.asarray(q, dtype=np.float64))
        if q.ndim != 2:
            raise InvalidInstanceError(
                f"q must be a 2-D (machines x jobs) matrix, got shape {q.shape}"
            )
        m, n = q.shape
        if m == 0 or n == 0:
            raise InvalidInstanceError(
                f"instance needs at least one machine and one job, got shape {q.shape}"
            )
        if not np.isfinite(q).all():
            raise InvalidInstanceError("q contains non-finite entries")
        if (q < 0).any() or (q > 1).any():
            raise InvalidInstanceError("q entries must lie in [0, 1]")
        hopeless = np.flatnonzero((q >= 1.0).all(axis=0))
        if hopeless.size:
            raise InvalidInstanceError(
                f"jobs {hopeless.tolist()} have q_ij = 1 on every machine and "
                "can never complete"
            )
        if graph is None:
            graph = PrecedenceGraph(n, ())
        if graph.n_jobs != n:
            raise InvalidInstanceError(
                f"precedence graph has {graph.n_jobs} jobs but q has {n} columns"
            )
        q.setflags(write=False)
        ell = logmass_matrix(q)
        ell.setflags(write=False)
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "ell", ell)

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Number of jobs ``n``."""
        return self.q.shape[1]

    @property
    def n_machines(self) -> int:
        """Number of machines ``m``."""
        return self.q.shape[0]

    @property
    def precedence_class(self) -> PrecedenceClass:
        """Structural class of the precedence constraints."""
        return self.graph.classify()

    def is_independent(self) -> bool:
        """True when there are no precedence constraints (SUU-I)."""
        return self.graph.n_edges == 0

    # ------------------------------------------------------------------
    def best_single_step_success(self) -> np.ndarray:
        """Per-job success probability when *all* machines run the job.

        ``1 - prod_i q_ij``; the single-step success probability no schedule
        can beat for that job.  Used by lower bounds and the serial
        fallback analysis.
        """
        total_mass = self.ell.sum(axis=0)
        return -np.expm1(-total_mass * np.log(2.0))

    def digest(self) -> str:
        """Stable content hash of ``(q, graph)``.

        Keys cross-batch solve caches (see
        :mod:`repro.core.phased`): two instances with equal digests are
        equal instances, so deterministic solve pipelines may share
        results between batches, worker chunks, and grid cells.  Computed
        once and memoized (instances are immutable).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(repr(self.q.shape).encode())
            h.update(self.q.tobytes())
            h.update(repr(self.graph.edges).encode())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, SUUInstance):
            return NotImplemented
        return (
            self.q.shape == other.q.shape
            and np.array_equal(self.q, other.q)
            and self.graph.edges == other.graph.edges
        )

    def __hash__(self) -> int:
        return hash((self.q.shape, self.q.tobytes(), self.graph.edges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SUUInstance(n_jobs={self.n_jobs}, n_machines={self.n_machines}, "
            f"edges={self.graph.n_edges}, class={self.precedence_class.value})"
        )
