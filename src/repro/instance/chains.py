"""Chain extraction for SUU-C.

When the precedence graph is a collection of disjoint chains (every in- and
out-degree at most 1), the SUU-C algorithm needs the chains as explicit
ordered job lists.  Isolated jobs count as singleton chains.
"""

from __future__ import annotations

from repro.errors import DecompositionError
from repro.instance.precedence import PrecedenceGraph

__all__ = ["extract_chains", "chain_of_each_job"]


def extract_chains(graph: PrecedenceGraph) -> list[list[int]]:
    """Decompose a disjoint-chains graph into ordered chains.

    Returns a list of chains; each chain is a list of job ids in precedence
    order (``chain[0]`` precedes ``chain[1]`` and so on).  Chains are sorted
    by their head job id so the output is deterministic.

    Raises
    ------
    DecompositionError
        If some job has in-degree or out-degree larger than 1.
    """
    n = graph.n_jobs
    for j in range(n):
        if graph.in_degree(j) > 1 or graph.out_degree(j) > 1:
            raise DecompositionError(
                f"job {j} has in-degree {graph.in_degree(j)} / out-degree "
                f"{graph.out_degree(j)}; precedence graph is not disjoint chains"
            )
    chains: list[list[int]] = []
    for head in range(n):
        if graph.in_degree(head) != 0:
            continue
        chain = [head]
        cur = head
        while graph.out_degree(cur) == 1:
            cur = graph.successors(cur)[0]
            chain.append(cur)
        chains.append(chain)
    covered = sum(len(c) for c in chains)
    if covered != n:  # pragma: no cover - unreachable for acyclic inputs
        raise DecompositionError("chain extraction failed to cover all jobs")
    chains.sort(key=lambda c: c[0])
    return chains


def chain_of_each_job(chains: list[list[int]], n_jobs: int) -> list[int]:
    """Map each job id to the index of its chain in ``chains``.

    Raises
    ------
    DecompositionError
        If the chains do not form a partition of ``0..n_jobs-1``.
    """
    owner = [-1] * n_jobs
    for idx, chain in enumerate(chains):
        for j in chain:
            if not (0 <= j < n_jobs) or owner[j] != -1:
                raise DecompositionError(
                    f"chains do not partition jobs (job {j} repeated or out of range)"
                )
            owner[j] = idx
    if any(o == -1 for o in owner):
        missing = [j for j, o in enumerate(owner) if o == -1]
        raise DecompositionError(f"chains do not cover jobs {missing}")
    return owner
