"""Precedence DAGs over jobs.

The SUU problem models precedence constraints as a directed acyclic graph
with jobs as vertices: an edge ``u -> v`` means job ``u`` must complete
before job ``v`` becomes eligible.  This module provides the (immutable)
graph representation used throughout the library, cycle detection, the
structural classification the paper's algorithms dispatch on
(independent / chains / forests / layered / general), and eligibility
bookkeeping helpers for the simulator.

Everything here is implemented from scratch (Kahn's algorithm for the
topological order); networkx is used only by the test suite as an oracle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidInstanceError

__all__ = ["PrecedenceClass", "PrecedenceGraph"]


class PrecedenceClass(enum.Enum):
    """Structural classes of precedence graphs the paper distinguishes.

    The classes are ordered from most to least restrictive; `classify`
    returns the most restrictive class that applies.
    """

    #: No edges at all (SUU-I).
    INDEPENDENT = "independent"
    #: Disjoint chains: every in-degree and out-degree is at most 1 (SUU-C).
    CHAINS = "chains"
    #: Out-forest: in-degree <= 1 (precedence fans out from roots).
    OUT_FOREST = "out_forest"
    #: In-forest: out-degree <= 1 (precedence fans in toward roots).
    IN_FOREST = "in_forest"
    #: Mixed forest: every weakly-connected component is an in- or out-tree.
    MIXED_FOREST = "mixed_forest"
    #: Arbitrary DAG (no approximation guarantee in the paper).
    GENERAL = "general"


@dataclass(frozen=True)
class PrecedenceGraph:
    """An immutable DAG of precedence constraints over jobs ``0..n-1``.

    Parameters
    ----------
    n_jobs:
        Number of jobs (vertices).
    edges:
        Iterable of ``(u, v)`` pairs meaning ``u`` precedes ``v``.
        Duplicate edges are rejected; self-loops and cycles raise
        :class:`~repro.errors.InvalidInstanceError`.
    """

    n_jobs: int
    edges: tuple[tuple[int, int], ...]
    _preds: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False)
    _succs: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False)
    _topo: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _succ_csr: tuple[np.ndarray, np.ndarray] | None = field(
        init=False, repr=False, compare=False
    )

    def __init__(self, n_jobs: int, edges=()):
        if n_jobs < 0:
            raise InvalidInstanceError(f"n_jobs must be >= 0, got {n_jobs}")
        norm: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for e in edges:
            u, v = int(e[0]), int(e[1])
            if not (0 <= u < n_jobs and 0 <= v < n_jobs):
                raise InvalidInstanceError(
                    f"edge ({u}, {v}) out of range for {n_jobs} jobs"
                )
            if u == v:
                raise InvalidInstanceError(f"self-loop on job {u}")
            if (u, v) in seen:
                raise InvalidInstanceError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))
            norm.append((u, v))
        object.__setattr__(self, "n_jobs", n_jobs)
        object.__setattr__(self, "edges", tuple(norm))

        preds: list[list[int]] = [[] for _ in range(n_jobs)]
        succs: list[list[int]] = [[] for _ in range(n_jobs)]
        for u, v in norm:
            succs[u].append(v)
            preds[v].append(u)
        object.__setattr__(self, "_preds", tuple(tuple(p) for p in preds))
        object.__setattr__(self, "_succs", tuple(tuple(s) for s in succs))
        object.__setattr__(self, "_topo", self._toposort(n_jobs, preds, succs))
        object.__setattr__(self, "_succ_csr", None)  # built lazily

    @staticmethod
    def _toposort(n, preds, succs) -> tuple[int, ...]:
        """Kahn's algorithm with a heap: the lexicographically smallest
        topological order, so downstream tie-breaking (e.g. the serial
        fallback's job choice) is deterministic and intuitive."""
        import heapq

        indeg = [len(p) for p in preds]
        heap = [v for v in range(n) if indeg[v] == 0]
        heapq.heapify(heap)
        order: list[int] = []
        while heap:
            v = heapq.heappop(heap)
            order.append(v)
            for w in succs[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    heapq.heappush(heap, w)
        if len(order) != n:
            raise InvalidInstanceError("precedence graph contains a cycle")
        return tuple(order)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return len(self.edges)

    def predecessors(self, job: int) -> tuple[int, ...]:
        """Direct predecessors of ``job``."""
        return self._preds[job]

    def successors(self, job: int) -> tuple[int, ...]:
        """Direct successors of ``job``."""
        return self._succs[job]

    def in_degree(self, job: int) -> int:
        """Number of direct predecessors of ``job``."""
        return len(self._preds[job])

    def out_degree(self, job: int) -> int:
        """Number of direct successors of ``job``."""
        return len(self._succs[job])

    def topological_order(self) -> tuple[int, ...]:
        """A topological order of the jobs (sources first)."""
        return self._topo

    def in_degree_array(self) -> np.ndarray:
        """In-degrees as an int64 array (used by the simulator)."""
        return np.array([len(p) for p in self._preds], dtype=np.int64)

    def successors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Successor adjacency in CSR form: ``(indptr, indices)``.

        ``indices[indptr[j]:indptr[j + 1]]`` are the direct successors of
        job ``j`` (ascending).  Both arrays are int64, read-only, cached on
        first use: the simulators use them to update in-degrees for whole
        completion sets with one vectorized scatter instead of a Python
        loop per completed job.
        """
        cached = self._succ_csr
        if cached is None:
            counts = np.fromiter(
                (len(s) for s in self._succs), dtype=np.int64, count=self.n_jobs
            )
            indptr = np.zeros(self.n_jobs + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.array(
                [w for succs in self._succs for w in sorted(succs)], dtype=np.int64
            )
            indptr.setflags(write=False)
            indices.setflags(write=False)
            cached = (indptr, indices)
            object.__setattr__(self, "_succ_csr", cached)
        return cached

    def successors_flat(self, jobs) -> tuple[np.ndarray, np.ndarray]:
        """Successors of every job in ``jobs``, flattened and vectorized.

        Returns ``(origins, successors)`` where ``successors[k]`` is a direct
        successor of ``jobs[origins[k]]``; jobs appearing multiple times in
        ``jobs`` contribute their successor lists multiple times.  This is
        the CSR gather both engines use on each completion event:
        ``np.subtract.at(indeg, successors, 1)`` replaces the old
        per-completion ``graph.successors(j)`` Python loop.
        """
        indptr, indices = self.successors_csr()
        jobs = np.asarray(jobs, dtype=np.int64)
        counts = indptr[jobs + 1] - indptr[jobs]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        origins = np.repeat(np.arange(jobs.size, dtype=np.int64), counts)
        # Position of each output inside its origin's successor run.
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        return origins, indices[indptr[jobs][origins] + within]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def sources(self) -> list[int]:
        """Jobs with no predecessors (initially eligible)."""
        return [j for j in range(self.n_jobs) if not self._preds[j]]

    def sinks(self) -> list[int]:
        """Jobs with no successors."""
        return [j for j in range(self.n_jobs) if not self._succs[j]]

    def weakly_connected_components(self) -> list[list[int]]:
        """Weakly-connected components (ignoring edge direction)."""
        seen = [False] * self.n_jobs
        comps: list[list[int]] = []
        for start in range(self.n_jobs):
            if seen[start]:
                continue
            comp: list[int] = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                comp.append(v)
                for w in self._succs[v] + self._preds[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            comps.append(sorted(comp))
        return comps

    def classify(self) -> PrecedenceClass:
        """Most restrictive :class:`PrecedenceClass` this graph belongs to."""
        if not self.edges:
            return PrecedenceClass.INDEPENDENT
        max_in = max(len(p) for p in self._preds)
        max_out = max(len(s) for s in self._succs)
        if max_in <= 1 and max_out <= 1:
            return PrecedenceClass.CHAINS
        if max_in <= 1:
            return PrecedenceClass.OUT_FOREST
        if max_out <= 1:
            return PrecedenceClass.IN_FOREST
        # Mixed forest: each weak component individually an in- or out-tree.
        if all(self._component_is_tree(c) for c in self.weakly_connected_components()):
            return PrecedenceClass.MIXED_FOREST
        return PrecedenceClass.GENERAL

    def _component_is_tree(self, comp: list[int]) -> bool:
        """True if the component is an in-tree or an out-tree."""
        in_ok = all(len(self._preds[v]) <= 1 for v in comp)
        out_ok = all(len(self._succs[v]) <= 1 for v in comp)
        if not (in_ok or out_ok):
            return False
        # A weakly-connected comp with max (in|out) degree <= 1 and |E|=|V|-1
        # is automatically a tree; weak connectivity gives |E| >= |V|-1 and
        # degree bound gives |E| <= |V| with equality only on a cycle, which
        # the DAG check already excluded.
        return True

    def levels(self) -> np.ndarray:
        """Longest-path depth of each job (sources at level 0).

        Used by the layered-DAG extension: scheduling level-by-level is
        precedence-safe because every edge goes from a lower to a strictly
        higher level.
        """
        lvl = np.zeros(self.n_jobs, dtype=np.int64)
        for v in self._topo:
            for w in self._succs[v]:
                if lvl[w] < lvl[v] + 1:
                    lvl[w] = lvl[v] + 1
        return lvl

    def ancestors(self, job: int) -> set[int]:
        """All jobs with a directed path to ``job`` (exclusive)."""
        out: set[int] = set()
        stack = list(self._preds[job])
        while stack:
            v = stack.pop()
            if v in out:
                continue
            out.add(v)
            stack.extend(self._preds[v])
        return out

    def descendants(self, job: int) -> set[int]:
        """All jobs reachable from ``job`` (exclusive)."""
        out: set[int] = set()
        stack = list(self._succs[job])
        while stack:
            v = stack.pop()
            if v in out:
                continue
            out.add(v)
            stack.extend(self._succs[v])
        return out

    def induced_subgraph(self, jobs) -> tuple["PrecedenceGraph", list[int]]:
        """Subgraph induced by ``jobs``, with jobs relabelled ``0..k-1``.

        Returns the subgraph and the list mapping new ids to original ids.
        Only edges with both endpoints in ``jobs`` survive; precedence
        through dropped intermediate jobs is *not* re-added (callers that
        need closure should pass downward-closed job sets).
        """
        keep = sorted(set(int(j) for j in jobs))
        index = {j: k for k, j in enumerate(keep)}
        sub_edges = [
            (index[u], index[v]) for u, v in self.edges if u in index and v in index
        ]
        return PrecedenceGraph(len(keep), sub_edges), keep

    def reversed(self) -> "PrecedenceGraph":
        """Graph with every edge direction flipped."""
        return PrecedenceGraph(self.n_jobs, [(v, u) for u, v in self.edges])
