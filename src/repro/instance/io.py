"""JSON serialization for instances.

Plain-JSON format so instances can be archived next to experiment results
and re-loaded exactly (probabilities round-trip via ``float`` repr, which is
exact for binary64 in Python 3).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import InvalidInstanceError
from repro.instance.generators import StochasticInstance
from repro.instance.instance import SUUInstance
from repro.instance.precedence import PrecedenceGraph

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "stochastic_to_dict",
    "stochastic_from_dict",
]

_FORMAT = "repro-suu-v1"
_FORMAT_STOCH = "repro-stoch-v1"


def instance_to_dict(inst: SUUInstance) -> dict:
    """Serialize an SUU instance to a JSON-compatible dict."""
    return {
        "format": _FORMAT,
        "n_jobs": inst.n_jobs,
        "n_machines": inst.n_machines,
        "q": inst.q.tolist(),
        "edges": [list(e) for e in inst.graph.edges],
    }


def instance_from_dict(data: dict) -> SUUInstance:
    """Inverse of :func:`instance_to_dict`."""
    if data.get("format") != _FORMAT:
        raise InvalidInstanceError(
            f"unrecognized instance format {data.get('format')!r}"
        )
    q = np.asarray(data["q"], dtype=np.float64)
    if q.shape != (data["n_machines"], data["n_jobs"]):
        raise InvalidInstanceError("q shape disagrees with recorded dimensions")
    graph = PrecedenceGraph(data["n_jobs"], [tuple(e) for e in data["edges"]])
    return SUUInstance(q, graph)


def save_instance(inst: SUUInstance, path) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(inst)))


def load_instance(path) -> SUUInstance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def stochastic_to_dict(inst: StochasticInstance) -> dict:
    """Serialize a stochastic-scheduling instance."""
    return {
        "format": _FORMAT_STOCH,
        "rates": inst.rates.tolist(),
        "speeds": inst.speeds.tolist(),
    }


def stochastic_from_dict(data: dict) -> StochasticInstance:
    """Inverse of :func:`stochastic_to_dict`."""
    if data.get("format") != _FORMAT_STOCH:
        raise InvalidInstanceError(
            f"unrecognized instance format {data.get('format')!r}"
        )
    return StochasticInstance(
        np.asarray(data["rates"], dtype=np.float64),
        np.asarray(data["speeds"], dtype=np.float64),
    )
