"""Random workload generators.

The paper evaluates nothing empirically, so reproduction experiments need
workload families that exercise each algorithm's regime:

* ``uniform`` failure probabilities — the easy case: every machine is
  moderately useful for every job, one LP round nearly always suffices.
* ``powerlaw`` log masses — heavy-tailed machine quality; a few machines
  are far better than the rest, making multi-round adaptivity pay off.
* ``specialist`` — each job has a small random set of competent machines
  and is nearly hopeless elsewhere; the archetypal *unrelated*-machines
  instance (this is where LP-based assignment beats any oblivious
  uniform strategy).
* ``related`` — machine reliability depends only on the machine
  (``q_ij = q_i``), a classic related-machines sanity check.

Precedence shapes: independent, disjoint chains, random in/out-trees and
forests, and layered DAGs (the MapReduce motivation from the paper's
introduction).  All generators take a seed or Generator and are fully
deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.instance.instance import SUUInstance
from repro.instance.precedence import PrecedenceGraph
from repro.util.rng import ensure_rng

__all__ = [
    "failure_matrix",
    "independent_instance",
    "chain_instance",
    "prelude_chain_instance",
    "lpwall_instance",
    "tree_instance",
    "forest_instance",
    "layered_instance",
    "random_dag_instance",
    "StochasticInstance",
    "stochastic_instance",
]


# ----------------------------------------------------------------------
# Failure-probability models
# ----------------------------------------------------------------------
def failure_matrix(
    n_machines: int,
    n_jobs: int,
    model: str = "uniform",
    rng=None,
    *,
    q_lo: float = 0.1,
    q_hi: float = 0.9,
    powerlaw_alpha: float = 1.5,
    specialists_per_job: int = 2,
    q_bad: float = 0.999,
) -> np.ndarray:
    """Generate an ``(m, n)`` failure-probability matrix.

    Parameters
    ----------
    model:
        One of ``"uniform"``, ``"powerlaw"``, ``"specialist"``, ``"related"``.
    q_lo, q_hi:
        Range for uniform draws (also the good-machine range for
        ``specialist`` and the per-machine range for ``related``).
    powerlaw_alpha:
        Pareto tail index for the ``powerlaw`` model: log masses are drawn
        ``Pareto(alpha)``-distributed then rescaled, so most machines give
        little mass and a few give a lot.
    specialists_per_job:
        Number of competent machines per job in the ``specialist`` model.
    q_bad:
        Failure probability of non-specialist machines.
    """
    rng = ensure_rng(rng)
    if not (0.0 <= q_lo <= q_hi <= 1.0):
        raise InvalidInstanceError(f"invalid q range [{q_lo}, {q_hi}]")
    m, n = n_machines, n_jobs
    if model == "uniform":
        q = rng.uniform(q_lo, q_hi, size=(m, n))
    elif model == "powerlaw":
        # Log masses ~ Pareto(alpha), scaled so the median mass is ~0.25
        # (q ~ 0.84): most pairs are weak, the tail is strong.
        raw = rng.pareto(powerlaw_alpha, size=(m, n)) + 1.0
        mass = 0.25 * raw / np.median(raw)
        q = np.power(2.0, -mass)
    elif model == "specialist":
        k = min(specialists_per_job, m)
        q = np.full((m, n), q_bad, dtype=np.float64)
        for j in range(n):
            good = rng.choice(m, size=k, replace=False)
            q[good, j] = rng.uniform(q_lo, q_hi, size=k)
    elif model == "related":
        per_machine = rng.uniform(q_lo, q_hi, size=m)
        q = np.repeat(per_machine[:, None], n, axis=1)
    else:
        raise InvalidInstanceError(f"unknown failure model {model!r}")
    return np.clip(q, 0.0, 1.0)


# ----------------------------------------------------------------------
# Precedence shapes
# ----------------------------------------------------------------------
def independent_instance(
    n_jobs: int, n_machines: int, model: str = "uniform", rng=None, **kw
) -> SUUInstance:
    """Random SUU-I instance (no precedence constraints)."""
    rng = ensure_rng(rng)
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q)


def chain_instance(
    n_jobs: int,
    n_machines: int,
    n_chains: int,
    model: str = "uniform",
    rng=None,
    **kw,
) -> SUUInstance:
    """Random SUU-C instance: jobs split into ``n_chains`` disjoint chains.

    Chain lengths are a random composition of ``n_jobs`` into ``n_chains``
    positive parts; job ids are shuffled so chain membership is not
    correlated with id order.
    """
    rng = ensure_rng(rng)
    if not (1 <= n_chains <= n_jobs):
        raise InvalidInstanceError(
            f"need 1 <= n_chains <= n_jobs, got {n_chains} chains for {n_jobs} jobs"
        )
    # Random composition via stars-and-bars.
    cuts = np.sort(rng.choice(n_jobs - 1, size=n_chains - 1, replace=False)) + 1
    bounds = np.concatenate(([0], cuts, [n_jobs]))
    perm = rng.permutation(n_jobs)
    edges: list[tuple[int, int]] = []
    for c in range(n_chains):
        members = perm[bounds[c] : bounds[c + 1]]
        edges.extend((int(members[k]), int(members[k + 1])) for k in range(len(members) - 1))
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def prelude_chain_instance(
    n_jobs: int = 40,
    n_machines: int = 2,
    chain_length: int = 5,
    q_lo: float = 0.8,
    q_hi: float = 0.97,
    rng=3,
) -> SUUInstance:
    """A chain instance in SUU-C's non-polynomial-``t_LP2`` regime.

    High per-step failure probabilities over few machines push the LP2
    horizon past ``n * m``, so the chain plan rounds block step counts to
    a unit ``Δ > 1`` and re-inserts the lost steps as solo *preludes*
    (Section 4's trick).  Jobs form consecutive-id chains of
    ``chain_length`` so the regime is stable under the defaults — the
    construction shared by the prelude coverage tests and benchmarks,
    which assert ``plan.unit > 1`` rather than trusting it.
    """
    rng = ensure_rng(rng)
    q = rng.uniform(q_lo, q_hi, size=(n_machines, n_jobs))
    edges: list[tuple[int, int]] = []
    k = 0
    while k < n_jobs:
        hi = min(k + chain_length, n_jobs)
        edges.extend((j, j + 1) for j in range(k, hi - 1))
        k = hi
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def lpwall_instance(
    n_jobs: int = 384,
    n_machines: int = 2,
    chain_length: int | None = None,
    q_lo: float = 0.90,
    q_hi: float = 0.98,
    rng=5,
) -> SUUInstance:
    """A long-job-heavy instance whose cost is dominated by LP1 solves.

    Uniformly hard failure probabilities (every ``l_ij = -log2 q_ij`` is
    tiny) make every job *long*: reaching each round's mass target takes
    many steps on any machine, so round schedules are large and the LP1
    behind each one is expensive.  Many jobs over few machines keep the
    survivor sets entering rounds 2+ big — and, across Monte Carlo trials,
    *distinct* (each trial completes a different random sliver of the
    universe), so a scalar sweep pays one full LP1 pipeline per (trial,
    round): the "LP wall" that ``lp_reuse="subset"`` collapses by deriving
    those near-identical survivor sets from one shared anchor solve.

    ``chain_length=None`` (default) yields independent jobs for the
    ``sem`` family; an integer builds consecutive-id chains (the
    :func:`prelude_chain_instance` shape) so the same wall exercises the
    SUU-C segment path.
    """
    rng = ensure_rng(rng)
    q = rng.uniform(q_lo, q_hi, size=(n_machines, n_jobs))
    edges: list[tuple[int, int]] = []
    if chain_length is not None:
        k = 0
        while k < n_jobs:
            hi = min(k + chain_length, n_jobs)
            edges.extend((j, j + 1) for j in range(k, hi - 1))
            k = hi
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def tree_instance(
    n_jobs: int,
    n_machines: int,
    orientation: str = "out",
    model: str = "uniform",
    rng=None,
    *,
    attach_bias: float = 1.0,
    **kw,
) -> SUUInstance:
    """Random SUU-T instance whose precedence graph is a single tree.

    A random recursive tree: job ``k`` attaches to a uniformly random
    earlier job (``attach_bias`` < 1 biases toward recent jobs, producing
    deeper trees; > 1 biases toward early jobs, producing bushier trees).
    ``orientation="out"`` points edges parent -> child (out-tree);
    ``"in"`` points child -> parent (in-tree).
    """
    rng = ensure_rng(rng)
    if orientation not in ("in", "out"):
        raise InvalidInstanceError(f"orientation must be 'in' or 'out', got {orientation!r}")
    edges: list[tuple[int, int]] = []
    for k in range(1, n_jobs):
        w = np.arange(1, k + 1, dtype=np.float64) ** attach_bias
        parent = int(rng.choice(k, p=w / w.sum()))
        edges.append((parent, k) if orientation == "out" else (k, parent))
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def forest_instance(
    n_jobs: int,
    n_machines: int,
    n_trees: int,
    orientation: str = "out",
    model: str = "uniform",
    rng=None,
    **kw,
) -> SUUInstance:
    """Random forest of ``n_trees`` trees (``orientation`` may be ``"mixed"``)."""
    rng = ensure_rng(rng)
    if not (1 <= n_trees <= n_jobs):
        raise InvalidInstanceError(
            f"need 1 <= n_trees <= n_jobs, got {n_trees} trees for {n_jobs} jobs"
        )
    cuts = np.sort(rng.choice(n_jobs - 1, size=n_trees - 1, replace=False)) + 1
    bounds = np.concatenate(([0], cuts, [n_jobs]))
    perm = rng.permutation(n_jobs)
    edges: list[tuple[int, int]] = []
    for t in range(n_trees):
        members = perm[bounds[t] : bounds[t + 1]]
        if orientation == "mixed":
            orient = "out" if rng.random() < 0.5 else "in"
        else:
            orient = orientation
        for k in range(1, len(members)):
            parent = int(members[rng.integers(k)])
            child = int(members[k])
            edges.append((parent, child) if orient == "out" else (child, parent))
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def layered_instance(
    layer_sizes,
    n_machines: int,
    model: str = "uniform",
    rng=None,
    *,
    density: float = 1.0,
    **kw,
) -> SUUInstance:
    """Layered DAG: edges only between consecutive layers.

    With ``density = 1`` consecutive layers are completely bipartite — the
    MapReduce dependency structure from the paper's introduction (map phase,
    then reduce phase).  Lower densities sample each cross edge
    independently but guarantee every non-first-layer job keeps at least one
    predecessor, so the layering is tight.
    """
    rng = ensure_rng(rng)
    sizes = [int(s) for s in layer_sizes]
    if any(s <= 0 for s in sizes) or not sizes:
        raise InvalidInstanceError(f"layer sizes must be positive, got {sizes}")
    n_jobs = sum(sizes)
    starts = np.concatenate(([0], np.cumsum(sizes)))
    edges: list[tuple[int, int]] = []
    for layer in range(len(sizes) - 1):
        ups = range(starts[layer], starts[layer + 1])
        downs = range(starts[layer + 1], starts[layer + 2])
        for v in downs:
            picked = [u for u in ups if density >= 1.0 or rng.random() < density]
            if not picked:
                picked = [int(rng.choice(list(ups)))]
            edges.extend((u, v) for u in picked)
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


def random_dag_instance(
    n_jobs: int,
    n_machines: int,
    edge_prob: float = 0.1,
    model: str = "uniform",
    rng=None,
    **kw,
) -> SUUInstance:
    """General random DAG: each forward pair ``(u, v)`` is an edge w.p. ``edge_prob``."""
    rng = ensure_rng(rng)
    mask = rng.random((n_jobs, n_jobs)) < edge_prob
    edges = [(u, v) for u in range(n_jobs) for v in range(u + 1, n_jobs) if mask[u, v]]
    q = failure_matrix(n_machines, n_jobs, model, rng, **kw)
    return SUUInstance(q, PrecedenceGraph(n_jobs, edges))


# ----------------------------------------------------------------------
# Stochastic scheduling (Appendix C)
# ----------------------------------------------------------------------
class StochasticInstance:
    """Instance of ``R | pmtn, p_j ~ exp(lambda_j) | E[Cmax]``.

    Attributes
    ----------
    rates:
        ``lambda_j`` of each job's exponential length distribution (shape
        ``(n,)``); the mean length is ``1 / lambda_j``.
    speeds:
        ``v_ij`` processing speeds (shape ``(m, n)``): machine ``i`` applies
        ``v_ij`` units of work per unit time to job ``j``.
    """

    def __init__(self, rates, speeds):
        rates = np.ascontiguousarray(np.asarray(rates, dtype=np.float64))
        speeds = np.ascontiguousarray(np.asarray(speeds, dtype=np.float64))
        if rates.ndim != 1:
            raise InvalidInstanceError("rates must be 1-D")
        if speeds.ndim != 2 or speeds.shape[1] != rates.shape[0]:
            raise InvalidInstanceError(
                f"speeds shape {speeds.shape} incompatible with {rates.shape[0]} jobs"
            )
        if (rates <= 0).any() or not np.isfinite(rates).all():
            raise InvalidInstanceError("rates must be positive and finite")
        if (speeds < 0).any() or not np.isfinite(speeds).all():
            raise InvalidInstanceError("speeds must be nonnegative and finite")
        if (speeds.max(axis=0) <= 0).any():
            raise InvalidInstanceError("every job needs a machine with positive speed")
        rates.setflags(write=False)
        speeds.setflags(write=False)
        self.rates = rates
        self.speeds = speeds

    @property
    def n_jobs(self) -> int:
        """Number of jobs."""
        return self.rates.shape[0]

    @property
    def n_machines(self) -> int:
        """Number of machines."""
        return self.speeds.shape[0]

    def mean_lengths(self) -> np.ndarray:
        """Expected job lengths ``1 / lambda_j``."""
        return 1.0 / self.rates

    def sample_lengths(self, rng) -> np.ndarray:
        """Draw realized job lengths ``p_j ~ exp(lambda_j)``."""
        rng = ensure_rng(rng)
        return rng.exponential(1.0 / self.rates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StochasticInstance(n_jobs={self.n_jobs}, n_machines={self.n_machines})"


def stochastic_instance(
    n_jobs: int,
    n_machines: int,
    rng=None,
    *,
    rate_lo: float = 0.5,
    rate_hi: float = 2.0,
    speed_model: str = "uniform",
    speed_lo: float = 0.2,
    speed_hi: float = 2.0,
) -> StochasticInstance:
    """Random stochastic-scheduling instance with unrelated speeds.

    ``speed_model="specialist"`` gives each job one fast machine and slow
    ones elsewhere, mirroring the SUU specialist model.
    """
    rng = ensure_rng(rng)
    rates = rng.uniform(rate_lo, rate_hi, size=n_jobs)
    if speed_model == "uniform":
        speeds = rng.uniform(speed_lo, speed_hi, size=(n_machines, n_jobs))
    elif speed_model == "specialist":
        speeds = rng.uniform(speed_lo / 10.0, speed_lo / 2.0, size=(n_machines, n_jobs))
        for j in range(n_jobs):
            speeds[rng.integers(n_machines), j] = rng.uniform(speed_hi / 2.0, speed_hi)
    else:
        raise InvalidInstanceError(f"unknown speed model {speed_model!r}")
    return StochasticInstance(rates, speeds)
