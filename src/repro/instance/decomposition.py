"""Forest-to-chain-blocks decomposition (Theorem 12 substrate).

The paper's tree algorithm (Appendix B) uses the technique of Kumar et al.
[7]: decompose a directed forest into ``O(log n)`` *blocks*, each a union of
vertex-disjoint chains, such that executing the blocks sequentially respects
all precedence constraints.  SUU-C is then applied once per block.

We realize the decomposition with heavy-path decomposition:

* For an **out-tree** (edges root -> leaves, in-degree <= 1), compute
  subtree sizes and mark, for every internal vertex, the edge to its largest
  child as *heavy*.  Maximal heavy paths are chains running in precedence
  order.  The *level* of a path is the number of light edges on the path
  from the root to the path's head.  Crossing between distinct heavy paths
  always uses a light edge, and a light edge at least halves the subtree
  size, so levels are bounded by ``floor(log2 n)``; consequently there are
  at most ``floor(log2 n) + 1`` blocks.  Every ancestor of a job in a
  level-``b`` chain lies in a level-``< b`` chain or earlier in the same
  chain, so executing blocks in increasing level order is precedence-safe.

* For an **in-tree** (edges leaves -> root, out-degree <= 1), decompose the
  *reversed* tree (an out-tree) the same way, then execute blocks in
  *decreasing* level order and reverse each chain, which again respects
  precedence (predecessors in the in-tree are descendants in the reversed
  out-tree, i.e. they sit at levels ``>= b``).

Mixed forests are handled per weakly-connected component; blocks from
different components carry no cross-precedence and are merged index-wise so
the total block count stays ``max`` (not ``sum``) over components.
"""

from __future__ import annotations

from repro.errors import DecompositionError
from repro.instance.precedence import PrecedenceGraph

__all__ = ["decompose_forest", "heavy_path_blocks"]


def _out_tree_heavy_paths(
    root: int, children: dict[int, list[int]]
) -> list[tuple[int, list[int]]]:
    """Heavy-path decomposition of one out-tree.

    Returns ``(level, path)`` pairs; each path is a list of vertices in
    root-to-leaf (= precedence) order.
    """
    # Iterative post-order for subtree sizes (avoid recursion limits).
    size: dict[int, int] = {}
    stack = [(root, False)]
    while stack:
        v, processed = stack.pop()
        if processed:
            size[v] = 1 + sum(size[c] for c in children.get(v, []))
        else:
            stack.append((v, True))
            for c in children.get(v, []):
                stack.append((c, False))

    paths: list[tuple[int, list[int]]] = []
    # Walk heavy paths: (head vertex, level of the path's head).
    heads = [(root, 0)]
    while heads:
        head, level = heads.pop()
        path = [head]
        v = head
        while children.get(v):
            kids = children[v]
            heavy = max(kids, key=lambda c: (size[c], -c))
            for c in kids:
                if c != heavy:
                    heads.append((c, level + 1))
            path.append(heavy)
            v = heavy
        paths.append((level, path))
    return paths


def heavy_path_blocks(
    n_jobs: int, edges: list[tuple[int, int]], roots: list[int]
) -> list[list[list[int]]]:
    """Blocks of chains for an out-forest given parent->child ``edges``.

    ``roots`` are the in-degree-0 vertices.  Block ``b`` collects all heavy
    paths of level ``b`` across the forest.
    """
    children: dict[int, list[int]] = {}
    for u, v in edges:
        children.setdefault(u, []).append(v)
    blocks: dict[int, list[list[int]]] = {}
    for root in roots:
        for level, path in _out_tree_heavy_paths(root, children):
            blocks.setdefault(level, []).append(path)
    if not blocks:
        return []
    out = [sorted(blocks.get(b, []), key=lambda p: p[0]) for b in range(max(blocks) + 1)]
    if any(not blk for blk in out):  # pragma: no cover - levels are contiguous
        raise DecompositionError("heavy-path levels are not contiguous")
    return out


def decompose_forest(graph: PrecedenceGraph) -> list[list[list[int]]]:
    """Decompose a directed forest into sequential blocks of disjoint chains.

    Returns ``blocks``: a list where ``blocks[b]`` is a list of chains (each
    a list of job ids in precedence order).  Executing blocks in index order,
    completing all jobs of a block before starting the next, satisfies every
    precedence constraint.  For a forest on ``n >= 1`` jobs the number of
    blocks is at most ``floor(log2 n) + 1``.

    Raises
    ------
    DecompositionError
        If some weakly-connected component is neither an in-tree nor an
        out-tree.
    """
    comps = graph.weakly_connected_components()
    merged: dict[int, list[list[int]]] = {}

    for comp in comps:
        comp_set = set(comp)
        comp_edges = [(u, v) for u, v in graph.edges if u in comp_set]
        in_ok = all(graph.in_degree(v) <= 1 for v in comp)
        out_ok = all(graph.out_degree(v) <= 1 for v in comp)
        if not comp_edges:
            merged.setdefault(0, []).append([comp[0]])
            continue
        if in_ok:
            # Out-tree: precedence fans out from the unique root.
            roots = [v for v in comp if graph.in_degree(v) == 0]
            comp_blocks = heavy_path_blocks(graph.n_jobs, comp_edges, roots)
        elif out_ok:
            # In-tree: decompose the reversed (out-)tree, then flip both the
            # block order and the direction of every chain.
            rev_edges = [(v, u) for u, v in comp_edges]
            roots = [v for v in comp if graph.out_degree(v) == 0]
            rev_blocks = heavy_path_blocks(graph.n_jobs, rev_edges, roots)
            comp_blocks = [
                [list(reversed(path)) for path in blk] for blk in reversed(rev_blocks)
            ]
        else:
            raise DecompositionError(
                "component is neither an in-tree nor an out-tree; "
                "precedence graph is not a directed forest"
            )
        for b, blk in enumerate(comp_blocks):
            merged.setdefault(b, []).extend(blk)

    if not merged:
        return []
    blocks = [
        sorted(merged[b], key=lambda p: p[0]) for b in sorted(merged)
    ]
    _check_blocks(graph, blocks)
    return blocks


def _check_blocks(graph: PrecedenceGraph, blocks: list[list[list[int]]]) -> None:
    """Validate the decomposition: partition + precedence safety."""
    seen: set[int] = set()
    position: dict[int, tuple[int, int, int]] = {}
    for b, blk in enumerate(blocks):
        for c, chain in enumerate(blk):
            for k, j in enumerate(chain):
                if j in seen:
                    raise DecompositionError(f"job {j} appears twice in decomposition")
                seen.add(j)
                position[j] = (b, c, k)
    if len(seen) != graph.n_jobs:
        raise DecompositionError("decomposition does not cover all jobs")
    for u, v in graph.edges:
        bu, cu, ku = position[u]
        bv, cv, kv = position[v]
        ok = bu < bv or (bu == bv and cu == cv and ku < kv)
        if not ok:
            raise DecompositionError(
                f"edge ({u}, {v}) violated by block decomposition"
            )
