"""Lawler–Labetoulle: optimal preemptive schedules for ``R|pmtn|Cmax``.

Two stages, both classic [8]:

1. **LP**: minimize ``C`` subject to ``sum_i x_ij v_ij >= p_j`` (work),
   ``sum_j x_ij <= C`` (machine loads), and ``sum_i x_ij <= C`` (no job may
   occupy more than ``C`` time in total, since it can use only one machine
   at a time).  The optimum ``C*`` is the exact preemptive makespan.

2. **Decomposition**: pad the optimal time matrix ``X`` (``x_ij`` = time
   machine ``i`` spends on job ``j``) to a square ``(m+n) x (m+n)`` matrix
   with all row and column sums equal to ``C*`` (diagonal slack blocks plus
   the transpose trick), then peel perfect matchings Birkhoff–von-Neumann
   style: every positive-entry bipartite graph of such a matrix has a
   perfect matching (Hall), each matching runs for the minimum matched
   entry, and each step zeroes at least one entry, so at most
   ``(m+n)^2`` segments result.  Restricted to the real block this yields a
   preemptive timetable of makespan exactly ``C*`` in which no job ever
   runs on two machines at once.

This is the deterministic engine inside STC-I (Appendix C, Theorem 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.flow.matching import hopcroft_karp
from repro.lp.model import LinearProgram

__all__ = ["PreemptiveTimetable", "solve_r_pmtn_cmax", "decompose_timetable"]

_TOL = 1e-9


@dataclass(frozen=True)
class PreemptiveTimetable:
    """A preemptive schedule: consecutive segments of constant assignment.

    Attributes
    ----------
    segments:
        List of ``(duration, assignment)`` pairs; ``assignment[i]`` is the
        job machine ``i`` processes throughout the segment (or ``-1``).
    makespan:
        Total duration.
    """

    segments: tuple
    makespan: float

    def work_delivered(self, speeds: np.ndarray) -> np.ndarray:
        """Total work each job receives: ``sum over segments of v_ij * dt``."""
        n = speeds.shape[1]
        out = np.zeros(n, dtype=np.float64)
        for duration, assignment in self.segments:
            for i, j in enumerate(assignment):
                if j >= 0:
                    out[j] += duration * speeds[i, j]
        return out

    def validate(self) -> None:
        """Check the no-simultaneity invariant (one machine per job)."""
        for duration, assignment in self.segments:
            if duration < -_TOL:
                raise ReproError(f"negative segment duration {duration}")
            active = [j for j in assignment if j >= 0]
            if len(active) != len(set(active)):
                raise ReproError(
                    "a job runs on two machines within one segment"
                )


def solve_r_pmtn_cmax(
    speeds: np.ndarray, lengths: np.ndarray
) -> tuple[float, np.ndarray]:
    """Solve the Lawler–Labetoulle LP.

    Returns ``(C*, X)`` with ``X[i, j]`` the time machine ``i`` spends on
    job ``j``.  Pairs with zero speed get no time.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.float64)
    m, n = speeds.shape
    if lengths.shape != (n,):
        raise ValueError(f"lengths shape {lengths.shape} mismatches {n} jobs")
    if (lengths < 0).any():
        raise ValueError("job lengths must be nonnegative")

    lp = LinearProgram()
    c_var = lp.add_variable(objective=1.0)
    var_of: dict[tuple[int, int], int] = {}
    for j in range(n):
        if lengths[j] <= 0:
            continue
        usable = np.nonzero(speeds[:, j] > 0)[0]
        if usable.size == 0:
            raise ReproError(f"job {j} has positive length but no usable machine")
        for i in usable:
            var_of[(int(i), j)] = lp.add_variable(objective=0.0)
    for j in range(n):
        if lengths[j] <= 0:
            continue
        coeffs = {
            var: float(speeds[i, jj]) for (i, jj), var in var_of.items() if jj == j
        }
        lp.add_ge(coeffs, float(lengths[j]))
        col = {var: 1.0 for (i, jj), var in var_of.items() if jj == j}
        col[c_var] = -1.0
        lp.add_le(col, 0.0)
    for i in range(m):
        coeffs = {var: 1.0 for (ii, _), var in var_of.items() if ii == i}
        if coeffs:
            coeffs[c_var] = -1.0
            lp.add_le(coeffs, 0.0)
    sol = lp.solve()
    X = np.zeros((m, n), dtype=np.float64)
    for (i, j), var in var_of.items():
        X[i, j] = max(0.0, sol.x[var])
    return float(sol.value), X


def decompose_timetable(X: np.ndarray, makespan: float) -> PreemptiveTimetable:
    """Turn a time matrix with row/col sums <= ``makespan`` into a timetable.

    Implements the padding + matching-peeling described in the module
    docstring.  The result processes job ``j`` on machine ``i`` for exactly
    ``X[i, j]`` time units total and never runs a job on two machines at
    once.
    """
    X = np.asarray(X, dtype=np.float64)
    m, n = X.shape
    C = float(makespan)
    if C <= _TOL:
        return PreemptiveTimetable(segments=(), makespan=0.0)
    row_sums = X.sum(axis=1)
    col_sums = X.sum(axis=0)
    if row_sums.max() > C * (1 + 1e-7) + _TOL or col_sums.max() > C * (1 + 1e-7) + _TOL:
        raise ReproError(
            f"matrix sums exceed the makespan: max row {row_sums.max():.6g}, "
            f"max col {col_sums.max():.6g}, C {C:.6g}"
        )

    # Padded square matrix: [[X, diag(row slack)], [diag(col slack), X^T]].
    s = m + n
    B = np.zeros((s, s), dtype=np.float64)
    B[:m, :n] = X
    B[m:, n:] = X.T
    for i in range(m):
        B[i, n + i] = max(0.0, C - row_sums[i])
    for j in range(n):
        B[m + j, j] = max(0.0, C - col_sums[j])

    segments: list[tuple[float, tuple[int, ...]]] = []
    remaining = C
    guard = 0
    scale = max(C, 1.0)
    while remaining > _TOL * scale:
        guard += 1
        if guard > s * s + 2 * s + 8:
            raise ReproError("timetable decomposition failed to converge")
        thresh = _TOL * scale
        adjacency = [list(np.nonzero(B[r] > thresh)[0]) for r in range(s)]
        size, match_l, _ = hopcroft_karp(s, s, adjacency)
        if size < s:
            # Numerical dust can starve a row; absorb it by treating rows
            # with only dust as matched to their slack column.
            raise ReproError(
                f"no perfect matching in decomposition step (matched {size}/{s})"
            )
        delta = min(
            min(B[r, match_l[r]] for r in range(s)),
            remaining,
        )
        if delta <= thresh:
            raise ReproError("decomposition made no progress")
        assignment = tuple(
            int(match_l[i]) if match_l[i] < n else -1 for i in range(m)
        )
        segments.append((float(delta), assignment))
        for r in range(s):
            B[r, match_l[r]] -= delta
        remaining -= delta
    return PreemptiveTimetable(segments=tuple(segments), makespan=C)
