"""Stochastic-scheduling substrate: R|pmtn|Cmax, R||Cmax, and execution."""

from repro.stochastic.lawler_labetoulle import (
    PreemptiveTimetable,
    decompose_timetable,
    solve_r_pmtn_cmax,
)
from repro.stochastic.lst import lst_feasible_assignment, solve_r_cmax_lst
from repro.stochastic.sim import RoundOutcome, execute_timetable

__all__ = [
    "PreemptiveTimetable",
    "solve_r_pmtn_cmax",
    "decompose_timetable",
    "solve_r_cmax_lst",
    "lst_feasible_assignment",
    "execute_timetable",
    "RoundOutcome",
]
