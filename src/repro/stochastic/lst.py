"""Lenstra–Shmoys–Tardos 2-approximation for ``R||Cmax``.

Used by the *restart* variant of STC-I (Appendix C): each round needs a
non-preemptive one-machine-per-job assignment for deterministic lengths.

Standard LST [10]: binary-search the target makespan ``T``.  For a guess
``T``, keep only pairs with processing time ``p_ij = p_j / v_ij <= T`` and
solve the feasibility LP ``sum_i x_ij = 1`` per job, ``sum_j p_ij x_ij <=
T`` per machine, ``x >= 0``.  A vertex solution has at most ``n + m``
nonzeros, so at most ``m`` jobs are fractional and the fractional support
is a pseudoforest; matching each fractional job to a distinct machine adds
at most one extra job (≤ ``T`` processing time) per machine.  Result:
makespan at most ``2 T*`` where ``T*`` is the LP threshold, itself a lower
bound on the optimum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleLPError, ReproError
from repro.flow.matching import hopcroft_karp
from repro.lp.model import LinearProgram

__all__ = ["solve_r_cmax_lst", "lst_feasible_assignment"]

_FRAC_TOL = 1e-7


def _feasibility_lp(ptimes: np.ndarray, T: float):
    """Solve the filtered LP; returns x matrix or None if infeasible."""
    m, n = ptimes.shape
    lp = LinearProgram()
    var_of: dict[tuple[int, int], int] = {}
    for j in range(n):
        usable = np.nonzero(ptimes[:, j] <= T)[0]
        if usable.size == 0:
            return None
        for i in usable:
            var_of[(int(i), j)] = lp.add_variable(objective=0.0, ub=1.0)
    for j in range(n):
        lp.add_eq({v: 1.0 for (i, jj), v in var_of.items() if jj == j}, 1.0)
    for i in range(m):
        coeffs = {
            v: float(ptimes[i, jj]) for (ii, jj), v in var_of.items() if ii == i
        }
        if coeffs:
            lp.add_le(coeffs, float(T))
    try:
        sol = lp.solve()
    except InfeasibleLPError:
        return None
    x = np.zeros((m, n), dtype=np.float64)
    for (i, j), v in var_of.items():
        x[i, j] = max(0.0, sol.x[v])
    return x


def lst_feasible_assignment(ptimes: np.ndarray, T: float) -> np.ndarray | None:
    """Round the threshold-``T`` LP into an integral assignment.

    Returns ``machine_of_job`` (shape ``(n,)``) with per-machine load at
    most ``2T``, or ``None`` when the LP itself is infeasible at ``T``.
    """
    x = _feasibility_lp(ptimes, T)
    if x is None:
        return None
    m, n = ptimes.shape
    machine_of = np.full(n, -1, dtype=np.int64)
    fractional: list[int] = []
    for j in range(n):
        top = int(np.argmax(x[:, j]))
        if x[top, j] >= 1.0 - _FRAC_TOL:
            machine_of[j] = top
        else:
            fractional.append(j)
    if fractional:
        # Match fractional jobs to distinct machines within their support.
        adjacency = [
            list(np.nonzero(x[:, j] > _FRAC_TOL)[0]) for j in fractional
        ]
        size, match_l, _ = hopcroft_karp(len(fractional), m, adjacency)
        if size < len(fractional):
            # Vertex solutions always admit this matching; non-vertex
            # interior solutions may not, so fall back greedily (keeps a
            # valid schedule; the 2T bound may degrade, callers re-check).
            for idx, j in enumerate(fractional):
                if match_l[idx] < 0:
                    match_l[idx] = int(np.argmax(x[:, j]))
        for idx, j in enumerate(fractional):
            machine_of[j] = match_l[idx]
    return machine_of


def solve_r_cmax_lst(
    speeds: np.ndarray, lengths: np.ndarray, *, rel_tol: float = 1e-3
) -> tuple[np.ndarray, float]:
    """Full LST: binary search + rounding.

    Parameters
    ----------
    speeds, lengths:
        ``v_ij`` and deterministic job lengths ``p_j``; processing times
        are ``p_j / v_ij`` (infinite where ``v_ij = 0``).

    Returns
    -------
    ``(machine_of_job, makespan)`` where makespan is the resulting integral
    schedule's makespan (at most ``2 (1 + rel_tol) OPT``).
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.float64)
    m, n = speeds.shape
    with np.errstate(divide="ignore"):
        ptimes = np.where(speeds > 0, lengths[None, :] / np.maximum(speeds, 1e-300), np.inf)
    best_single = ptimes.min(axis=0)
    if not np.isfinite(best_single).all():
        raise ReproError("some job has no machine with positive speed")

    lo = float(max(best_single.max(), best_single.sum() / m))
    hi = float(best_single.sum())
    hi = max(hi, lo)
    # Ensure hi is feasible (it is: schedule every job on its best machine).
    feasible_T = hi
    while hi - lo > rel_tol * max(1.0, lo):
        mid = 0.5 * (lo + hi)
        if _feasibility_lp(ptimes, mid) is not None:
            feasible_T = mid
            hi = mid
        else:
            lo = mid
    assignment = lst_feasible_assignment(ptimes, feasible_T)
    if assignment is None:  # pragma: no cover - feasible_T verified above
        raise ReproError("LST rounding failed at a feasible threshold")
    loads = np.zeros(m, dtype=np.float64)
    for j in range(n):
        loads[assignment[j]] += ptimes[assignment[j], j]
    return assignment, float(loads.max())
