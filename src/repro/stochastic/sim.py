"""Continuous-time execution of preemptive timetables.

The stochastic algorithms (Appendix C) run *oblivious* rounds: a timetable
computed for guessed deterministic lengths is executed against the realized
(hidden) exponential lengths.  This module advances a timetable segment by
segment, tracking each job's remaining work and recording the exact moment
it completes; the caller decides what to do with jobs that survive the
round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stochastic.lawler_labetoulle import PreemptiveTimetable

__all__ = ["RoundOutcome", "execute_timetable"]


@dataclass(frozen=True)
class RoundOutcome:
    """Result of running one timetable against realized remaining work.

    Attributes
    ----------
    completion_offsets:
        Per-job completion time within the round (``inf`` if the job did
        not finish during it).
    remaining_work:
        Work still owed per job after the round.
    elapsed:
        Time actually consumed: the full makespan, or the last completion
        if ``stop_when_done`` and all tracked jobs finished early.
    """

    completion_offsets: np.ndarray
    remaining_work: np.ndarray
    elapsed: float


def execute_timetable(
    timetable: PreemptiveTimetable,
    speeds: np.ndarray,
    remaining_work: np.ndarray,
    *,
    stop_when_done: bool = True,
) -> RoundOutcome:
    """Run ``timetable`` against ``remaining_work``.

    Jobs whose remaining work is already zero are skipped (their machine
    time idles, matching the SUU convention of assignments to completed
    jobs).  Completion instants are exact: within a segment a job finishes
    after ``remaining / (v_ij)`` time.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    work = np.array(remaining_work, dtype=np.float64)
    n = work.shape[0]
    done_at = np.full(n, np.inf, dtype=np.float64)
    clock = 0.0
    for duration, assignment in timetable.segments:
        seg_end = clock + duration
        for i, j in enumerate(assignment):
            if j < 0 or work[j] <= 0.0:
                continue
            v = speeds[i, j]
            if v <= 0.0:
                continue
            need = work[j] / v
            if need <= duration:
                work[j] = 0.0
                t_done = clock + need
                if t_done < done_at[j]:
                    done_at[j] = t_done
            else:
                work[j] -= duration * v
        clock = seg_end
        if stop_when_done and not (work > 0.0).any():
            break
    if stop_when_done and not (work > 0.0).any():
        finite = done_at[np.isfinite(done_at)]
        elapsed = float(finite.max()) if finite.size else 0.0
    else:
        elapsed = float(timetable.makespan)
    return RoundOutcome(
        completion_offsets=done_at, remaining_work=work, elapsed=elapsed
    )
