"""The Lin–Rajaraman greedy baseline for independent jobs.

Lin and Rajaraman's ``O(log n)``-approximation for SUU-I [11] assigns
machines step by step with a greedy rule that maximizes the collective
chance of success across the remaining jobs.  We reimplement it from that
description: within each timestep, machines are considered one at a time
and machine ``i`` is assigned to the eligible remaining job ``j``
maximizing the marginal increase in the expected number of completions,

    gain(i, j) = 2**(-mass_j) * (1 - q_ij),

where ``mass_j`` is the log mass already assigned to ``j`` this step.  The
per-step objective ``sum_j (1 - 2**-mass_j)`` is monotone submodular in the
machine-to-job assignment, so this is the classic ``(1 - 1/e)`` greedy; a
constant fraction of remaining jobs completes in expectation each step and
``O(log n)`` steps suffice, matching the baseline's guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    SimulationState,
    VectorizedPolicy,
)

__all__ = ["GreedyLRPolicy"]


@register_policy("greedy", aliases=("greedy-lr", "lr"))
class GreedyLRPolicy(VectorizedPolicy):
    """Per-step submodular greedy (the prior state of the art for SUU-I).

    Works for any precedence structure by restricting to currently eligible
    jobs, though its ``O(log n)`` guarantee is for independent jobs.
    The greedy rule conditions only on the eligible mask (plus its own
    within-step bookkeeping), so it batches: the machine loop stays, but
    each iteration scores all trials at once.
    """

    name = "greedy-LR"

    def __init__(self):
        self._instance = None

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        inst = self._instance
        if inst is None:
            raise RuntimeError("policy used before start()")
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        row = self._idle.copy()
        mass = np.zeros(targets.size, dtype=np.float64)
        q_sub = inst.q[:, targets]
        ell_sub = inst.ell[:, targets]
        for i in range(inst.n_machines):
            gains = np.power(2.0, -mass) * (1.0 - q_sub[i])
            best = int(np.argmax(gains))
            if gains[best] <= 0.0:
                continue  # machine is useless for every eligible job
            row[i] = targets[best]
            mass[best] += ell_sub[i, best]
        return row

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        inst = self._instance
        if inst is None:
            raise RuntimeError("policy used before start()")
        B = state.n_trials
        elig = state.eligible
        out = np.full((B, inst.n_machines), IDLE, dtype=np.int64)
        mass = np.zeros((B, inst.n_jobs), dtype=np.float64)
        trials = np.arange(B)
        for i in range(inst.n_machines):
            # Same gain formula as the scalar path; ineligible jobs are
            # masked to -1 so argmax's first-max tie-break lands on the
            # lowest eligible job id, exactly like the scalar subset scan.
            gains = np.where(
                elig, np.power(2.0, -mass) * (1.0 - inst.q[i]), -1.0
            )
            best = np.argmax(gains, axis=1)
            useful = gains[trials, best] > 0.0
            out[useful, i] = best[useful]
            mass[trials[useful], best[useful]] += inst.ell[i, best[useful]]
        return out
