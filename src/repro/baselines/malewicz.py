"""Malewicz-style exact DP for chain precedence (related work [12]).

Malewicz showed SUU is polynomial-time solvable when both the number of
machines and the *width* of the precedence DAG are constant.  For disjoint
chains the width is the number of chains ``z``, and the natural state space
is the vector of per-chain progress indices — ``prod_k (|C_k| + 1)``
states, polynomial for constant ``z`` — instead of the ``2^n`` subsets of
the generic DP in :mod:`repro.baselines.optimal`.

At each state the eligible jobs are the frontier (one per unfinished
chain), actions assign machines to frontier jobs (``z^m`` of them, constant
for constant ``z`` and ``m``), and transitions advance a subset of chains
by one.  Expected makespan satisfies the same one-step Bellman equation as
the subset DP; states are processed in order of total progress.

This makes exact ``E[T_OPT]`` available for chain instances far beyond the
16-job limit of the subset DP (e.g. 3 chains x 20 jobs = 9261 states), and
the test suite cross-checks the two DPs on their common domain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.instance.chains import extract_chains
from repro.instance.instance import SUUInstance

__all__ = ["ChainDPResult", "optimal_chains_expected_makespan"]

#: Guard on the DP's state-space size.
MAX_CHAIN_STATES: int = 2_000_000


@dataclass(frozen=True)
class ChainDPResult:
    """Output of the chain-progress DP.

    Attributes
    ----------
    value:
        ``E[T_OPT]`` for the chain instance.
    n_states:
        Number of progress vectors evaluated.
    n_chains:
        Width of the instance.
    """

    value: float
    n_states: int
    n_chains: int


def optimal_chains_expected_makespan(
    instance: SUUInstance,
    *,
    max_states: int = MAX_CHAIN_STATES,
    max_actions: int = 250_000,
) -> ChainDPResult:
    """Exact optimal expected makespan for a disjoint-chains instance.

    Raises
    ------
    DecompositionError
        If the precedence graph is not disjoint chains.
    ReproError
        If the state or action space exceeds its limit.
    """
    chains = extract_chains(instance.graph)
    z = len(chains)
    m = instance.n_machines
    lengths = [len(c) for c in chains]

    n_states = 1
    for L in lengths:
        n_states *= L + 1
        if n_states > max_states:
            raise ReproError(
                f"chain DP state space exceeds max_states={max_states}"
            )
    if z**m > max_actions:
        raise ReproError(
            f"{z**m} actions per state exceeds max_actions={max_actions}"
        )

    ell = instance.ell
    ln2 = np.log(2.0)

    # Progress vector p: chain k has completed its first p[k] jobs.  The
    # frontier job of an unfinished chain k is chains[k][p[k]].
    # Enumerate states in order of total progress DESCENDING distance to
    # done, i.e. by sum(p) descending ... transitions increase entries, so
    # process by total progress from full (all done) downwards.
    values: dict[tuple[int, ...], float] = {tuple(lengths): 0.0}

    # All progress vectors, ordered by total progress descending.
    ranges = [range(L + 1) for L in lengths]
    states = sorted(itertools.product(*ranges), key=lambda p: -sum(p))

    for p in states:
        if p == tuple(lengths):
            continue
        open_chains = [k for k in range(z) if p[k] < lengths[k]]
        frontier = [chains[k][p[k]] for k in open_chains]

        best = None
        seen: set[tuple] = set()
        for assignment in itertools.product(range(len(frontier)), repeat=m):
            mass: dict[int, float] = {}
            for i, idx in enumerate(assignment):
                j = frontier[idx]
                mass[j] = mass.get(j, 0.0) + float(ell[i, j])
            key = tuple(sorted((j, round(v, 12)) for j, v in mass.items() if v > 0))
            if key in seen:
                continue
            seen.add(key)
            sched = [(idx, j) for idx, j in enumerate(frontier) if mass.get(j, 0.0) > 0]
            if not sched:
                continue
            probs = [
                float(-np.expm1(-mass[j] * ln2)) for _, j in sched
            ]
            # One-step Bellman over completion patterns of scheduled chains.
            k_s = len(sched)
            p_none = 1.0
            for pr in probs:
                p_none *= 1.0 - pr
            if p_none >= 1.0:
                continue
            acc = 0.0
            for pattern in range(1, 1 << k_s):
                prob = 1.0
                nxt = list(p)
                for b in range(k_s):
                    idx, _ = sched[b]
                    if pattern >> b & 1:
                        prob *= probs[b]
                        nxt[open_chains[idx]] += 1
                    else:
                        prob *= 1.0 - probs[b]
                if prob > 0.0:
                    acc += prob * values[tuple(nxt)]
            val = (1.0 + acc) / (1.0 - p_none)
            if best is None or val < best:
                best = val
        if best is None:
            raise ReproError(
                f"no progressing action at progress vector {p}; "
                "instance violates the q_ij < 1 assumption"
            )
        values[p] = best

    return ChainDPResult(
        value=values[tuple([0] * z)], n_states=len(states), n_chains=z
    )
