"""Naive scheduling baselines.

These give the sanity floor for every experiment:

* :class:`SerialAllMachinesPolicy` — one eligible job at a time, all
  machines on it.  The trivial ``O(n)``-approximation the paper uses as a
  fallback (each job finishes in expected ``O(E[T_OPT])`` time this way,
  but jobs are serialized).
* :class:`RoundRobinPolicy` — machine ``i`` takes the ``(t + i)``-th
  eligible job modulo the eligible count: full parallelism, no awareness of
  machine quality.
* :class:`BestMachinePolicy` — every machine independently picks the
  eligible job it is best at (highest log mass), ties toward lower job id:
  quality-aware but uncoordinated, so machines pile onto the same jobs.
* :class:`RandomAssignmentPolicy` — every machine picks a uniformly random
  eligible job each step.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.schedule.base import IDLE, Policy, SimulationState
from repro.util.rng import ensure_rng

__all__ = [
    "SerialAllMachinesPolicy",
    "RoundRobinPolicy",
    "BestMachinePolicy",
    "RandomAssignmentPolicy",
]


@register_policy("serial", aliases=("serial-all-machines",))
class SerialAllMachinesPolicy(Policy):
    """All machines gang up on the first eligible job in topological order."""

    name = "serial-all-machines"

    def start(self, instance, rng) -> None:
        self._topo = instance.graph.topological_order()
        self._row = np.empty(instance.n_machines, dtype=np.int64)
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        for j in self._topo:
            if state.remaining[j] and state.eligible[j]:
                self._row.fill(j)
                return self._row
        return self._idle


@register_policy("round-robin", aliases=("rr",))
class RoundRobinPolicy(Policy):
    """Machine ``i`` runs the ``(t + i) mod k``-th of the ``k`` eligible jobs."""

    name = "round-robin"

    def start(self, instance, rng) -> None:
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._m = instance.n_machines

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        offsets = (state.t + np.arange(self._m)) % targets.size
        return targets[offsets]


@register_policy("best-machine")
class BestMachinePolicy(Policy):
    """Every machine picks its personal best eligible job (no coordination)."""

    name = "best-machine"

    def start(self, instance, rng) -> None:
        self._ell = instance.ell
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        sub = self._ell[:, targets]
        best = np.argmax(sub, axis=1)
        row = targets[best]
        useless = sub[np.arange(row.size), best] <= 0.0
        row[useless] = IDLE
        return row


@register_policy("random", aliases=("random-assignment",))
class RandomAssignmentPolicy(Policy):
    """Every machine picks a uniformly random eligible job each step."""

    name = "random-assignment"

    def start(self, instance, rng) -> None:
        self._rng = ensure_rng(rng)
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._m = instance.n_machines

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        return targets[self._rng.integers(0, targets.size, size=self._m)]
