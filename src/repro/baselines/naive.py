"""Naive scheduling baselines.

These give the sanity floor for every experiment:

* :class:`SerialAllMachinesPolicy` — one eligible job at a time, all
  machines on it.  The trivial ``O(n)``-approximation the paper uses as a
  fallback (each job finishes in expected ``O(E[T_OPT])`` time this way,
  but jobs are serialized).
* :class:`RoundRobinPolicy` — machine ``i`` takes the ``(t + i)``-th
  eligible job modulo the eligible count: full parallelism, no awareness of
  machine quality.
* :class:`BestMachinePolicy` — every machine independently picks the
  eligible job it is best at (highest log mass), ties toward lower job id:
  quality-aware but uncoordinated, so machines pile onto the same jobs.
* :class:`RandomAssignmentPolicy` — every machine picks a uniformly random
  eligible job each step.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    Policy,
    SimulationState,
    VectorizedPolicy,
)
from repro.util.rng import ensure_rng

__all__ = [
    "SerialAllMachinesPolicy",
    "RoundRobinPolicy",
    "BestMachinePolicy",
    "RandomAssignmentPolicy",
]


@register_policy("serial", aliases=("serial-all-machines",))
class SerialAllMachinesPolicy(VectorizedPolicy):
    """All machines gang up on the first eligible job in topological order."""

    name = "serial-all-machines"

    def start(self, instance, rng) -> None:
        self._topo = instance.graph.topological_order()
        self._topo_arr = np.asarray(self._topo, dtype=np.int64)
        self._m = instance.n_machines
        self._row = np.empty(instance.n_machines, dtype=np.int64)
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        for j in self._topo:
            if state.remaining[j] and state.eligible[j]:
                self._row.fill(j)
                return self._row
        return self._idle

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        elig_topo = state.eligible[:, self._topo_arr]
        # argmax over booleans = first True = first eligible in topo order.
        first = self._topo_arr[np.argmax(elig_topo, axis=1)]
        job = np.where(elig_topo.any(axis=1), first, IDLE)
        return np.repeat(job[:, None], self._m, axis=1)


@register_policy("round-robin", aliases=("rr",))
class RoundRobinPolicy(VectorizedPolicy):
    """Machine ``i`` runs the ``(t + i) mod k``-th of the ``k`` eligible jobs."""

    name = "round-robin"

    def start(self, instance, rng) -> None:
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._m = instance.n_machines
        self._arange_m = np.arange(instance.n_machines)

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        offsets = (state.t + np.arange(self._m)) % targets.size
        return targets[offsets]

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        elig = state.eligible
        counts = elig.sum(axis=1)  # k_b eligible jobs per trial
        _, cols = np.nonzero(elig)  # trial-major, jobs ascending
        if cols.size == 0:
            return np.full((elig.shape[0], self._m), IDLE, dtype=np.int64)
        # Flat offset of each trial's first eligible entry in cols.
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # Machine i wants the ((t + i) mod k_b)-th eligible job of trial b;
        # trials with no eligible jobs idle (their clamped gather is junk).
        want = (state.t + self._arange_m[None, :]) % np.maximum(counts, 1)[:, None]
        out = cols[np.minimum(starts[:, None] + want, cols.size - 1)]
        out[counts == 0] = IDLE
        return out


@register_policy("best-machine")
class BestMachinePolicy(VectorizedPolicy):
    """Every machine picks its personal best eligible job (no coordination)."""

    name = "best-machine"

    def start(self, instance, rng) -> None:
        self._ell = instance.ell
        self._m = instance.n_machines
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        sub = self._ell[:, targets]
        best = np.argmax(sub, axis=1)
        row = targets[best]
        useless = sub[np.arange(row.size), best] <= 0.0
        row[useless] = IDLE
        return row

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        B = state.n_trials
        out = np.empty((B, self._m), dtype=np.int64)
        elig = state.eligible
        # One (B, n) pass per machine: argmax's first-max tie-break matches
        # the scalar path (eligible jobs are scanned in ascending id order).
        for i in range(self._m):
            masked = np.where(elig, self._ell[i], -1.0)
            best = np.argmax(masked, axis=1)
            vals = np.take_along_axis(masked, best[:, None], axis=1)[:, 0]
            out[:, i] = np.where(vals > 0.0, best, IDLE)
        return out


@register_policy("random", aliases=("random-assignment",))
class RandomAssignmentPolicy(Policy):
    """Every machine picks a uniformly random eligible job each step."""

    name = "random-assignment"

    def start(self, instance, rng) -> None:
        self._rng = ensure_rng(rng)
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._m = instance.n_machines

    def assign(self, state: SimulationState) -> np.ndarray:
        targets = np.nonzero(state.eligible)[0]
        if targets.size == 0:
            return self._idle
        return targets[self._rng.integers(0, targets.size, size=self._m)]
