"""Exact optimal expected makespan for tiny instances.

SUU with the expected-makespan objective is a stochastic shortest-path
problem over the lattice of *remaining-job sets*: sets ``S`` such that every
uncompleted job's descendants are also uncompleted (completions respect
precedence).  Transitions strictly shrink ``S`` except for the self-loop of
"nothing completed this step", so the Bellman equation solves in one sweep
over states ordered by cardinality:

    E[S] = min over assignments a of eligible jobs to machines of
           (1 + sum_{∅ != C ⊆ scheduled} P(C | a) * E[S \\ C]) / (1 - P(∅ | a))

This is the regime of Malewicz's dynamic program (constant machines and
width); it is exponential in general — we guard with explicit limits and
use it as ground truth for approximation-ratio measurements on small
instances (experiment E-OPT).

The same sweep with a *fixed* decision rule instead of the ``min`` gives
the exact expected makespan of any stationary policy
(:func:`exact_policy_expected_makespan`), which the tests use to validate
Monte Carlo estimates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.instance.instance import SUUInstance
from repro.schedule.base import IDLE, SimulationState

__all__ = [
    "OptimalResult",
    "optimal_expected_makespan",
    "exact_policy_expected_makespan",
    "enumerate_remaining_sets",
]

#: Hard cap on job count for the exact DP (2^n states).
MAX_DP_JOBS: int = 16


@dataclass(frozen=True)
class OptimalResult:
    """Output of the exact DP.

    Attributes
    ----------
    value:
        ``E[T_OPT]``.
    policy:
        Optimal stationary policy: maps remaining-set bitmask to the
        optimal assignment tuple (one job id per machine).
    n_states:
        Number of reachable remaining-sets evaluated.
    """

    value: float
    policy: dict[int, tuple[int, ...]]
    n_states: int


def enumerate_remaining_sets(instance: SUUInstance) -> list[int]:
    """All feasible remaining-set bitmasks, sorted by popcount.

    A set is feasible when the *completed* complement is closed under
    predecessors, i.e. no uncompleted job has a completed descendant.
    """
    n = instance.n_jobs
    if n > MAX_DP_JOBS:
        raise ReproError(
            f"exact DP supports at most {MAX_DP_JOBS} jobs, got {n}"
        )
    succ_mask = [0] * n
    for u, v in instance.graph.edges:
        succ_mask[u] |= 1 << v
    # Transitive closure of successor masks (process in reverse topo order).
    for u in reversed(instance.graph.topological_order()):
        acc = succ_mask[u]
        for v in range(n):
            if succ_mask[u] >> v & 1:
                acc |= succ_mask[v]
        succ_mask[u] = acc
    states = [
        S
        for S in range(1 << n)
        if all(succ_mask[j] & S == succ_mask[j] for j in range(n) if S >> j & 1)
    ]
    states.sort(key=lambda S: (bin(S).count("1"), S))
    return states


def _eligible_jobs(instance: SUUInstance, S: int) -> list[int]:
    n = instance.n_jobs
    out = []
    for j in range(n):
        if not (S >> j & 1):
            continue
        if all(not (S >> p & 1) for p in instance.graph.predecessors(j)):
            out.append(j)
    return out


def _action_success_probs(
    instance: SUUInstance, eligible: list[int], max_actions: int
):
    """Yield deduplicated ``(assignment, jobs, probs)`` triples.

    ``assignment`` maps machines to eligible jobs; actions inducing the same
    per-job mass vector are collapsed (their transition laws coincide).
    """
    m = instance.n_machines
    count = len(eligible) ** m
    if count > max_actions:
        raise ReproError(
            f"{count} actions at a state exceeds max_actions={max_actions}; "
            "shrink the instance or raise the limit"
        )
    seen: set[tuple] = set()
    for assignment in itertools.product(eligible, repeat=m):
        mass: dict[int, float] = {}
        for i, j in enumerate(assignment):
            mass[j] = mass.get(j, 0.0) + float(instance.ell[i, j])
        key = tuple(sorted((j, round(v, 12)) for j, v in mass.items() if v > 0))
        if key in seen:
            continue
        seen.add(key)
        jobs = [j for j, v in mass.items() if v > 0.0]
        probs = [float(-np.expm1(-mass[j] * np.log(2.0))) for j in jobs]
        yield assignment, jobs, probs


def _expected_step_value(
    jobs: list[int], probs: list[float], S: int, values: dict[int, float]
) -> float | None:
    """One-step Bellman value ``(1 + sum P(C) E[S\\C]) / (1 - P(∅))``.

    Returns ``None`` when ``P(∅) = 1`` (the action schedules no usable
    mass, so it can never make progress).
    """
    k = len(jobs)
    p_none = 1.0
    for p in probs:
        p_none *= 1.0 - p
    if p_none >= 1.0:
        return None
    acc = 0.0
    for pattern in range(1, 1 << k):
        prob = 1.0
        nxt = S
        for idx in range(k):
            if pattern >> idx & 1:
                prob *= probs[idx]
                nxt &= ~(1 << jobs[idx])
            else:
                prob *= 1.0 - probs[idx]
        if prob > 0.0:
            acc += prob * values[nxt]
    return (1.0 + acc) / (1.0 - p_none)


def optimal_expected_makespan(
    instance: SUUInstance, max_actions: int = 250_000
) -> OptimalResult:
    """Solve the exact DP for ``E[T_OPT]`` and the optimal stationary policy."""
    states = enumerate_remaining_sets(instance)
    values: dict[int, float] = {0: 0.0}
    policy: dict[int, tuple[int, ...]] = {}
    for S in states:
        if S == 0:
            continue
        eligible = _eligible_jobs(instance, S)
        if not eligible:
            raise ReproError(f"state {S:b} has no eligible job (cycle?)")
        best = None
        best_action = None
        for assignment, jobs, probs in _action_success_probs(
            instance, eligible, max_actions
        ):
            val = _expected_step_value(jobs, probs, S, values)
            if val is not None and (best is None or val < best):
                best = val
                best_action = assignment
        if best is None:
            raise ReproError(
                f"no action makes progress at state {S:b}; "
                "instance violates the q_ij < 1 assumption"
            )
        values[S] = best
        policy[S] = best_action
    full = (1 << instance.n_jobs) - 1
    return OptimalResult(value=values[full], policy=policy, n_states=len(states))


def exact_policy_expected_makespan(instance: SUUInstance, policy) -> float:
    """Exact ``E[T]`` of a stationary policy on a tiny instance.

    ``policy`` is a started :class:`~repro.schedule.base.Policy` whose
    decisions depend only on the remaining/eligible sets (its ``assign`` is
    called with a synthetic state whose ``t`` is 0 and whose accrued mass is
    zero; time- or mass-dependent policies would make the sweep unsound and
    must use Monte Carlo instead).
    """
    n = instance.n_jobs
    states = enumerate_remaining_sets(instance)
    values: dict[int, float] = {0: 0.0}
    for S in states:
        if S == 0:
            continue
        remaining = np.array([(S >> j) & 1 == 1 for j in range(n)])
        indeg = np.array(
            [
                sum(1 for p in instance.graph.predecessors(j) if S >> p & 1)
                for j in range(n)
            ]
        )
        eligible = remaining & (indeg == 0)
        state = SimulationState(
            t=0,
            remaining=remaining,
            eligible=eligible,
            mass_accrued=np.zeros(n),
        )
        row = np.asarray(policy.assign(state))
        mass: dict[int, float] = {}
        for i, j in enumerate(row):
            j = int(j)
            if j == IDLE:
                continue
            if not remaining[j]:
                continue
            if not eligible[j]:
                raise ReproError(f"policy assigned ineligible job {j} at {S:b}")
            mass[j] = mass.get(j, 0.0) + float(instance.ell[i, j])
        jobs = [j for j, v in mass.items() if v > 0.0]
        probs = [float(-np.expm1(-mass[j] * np.log(2.0))) for j in jobs]
        val = _expected_step_value(jobs, probs, S, values)
        if val is None:
            raise ReproError(
                f"policy makes no progress at state {S:b}; E[T] is infinite"
            )
        values[S] = val
    return values[(1 << n) - 1]
