"""Baselines: the prior state of the art, naive floors, and exact optima."""

from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.baselines.naive import (
    BestMachinePolicy,
    RandomAssignmentPolicy,
    RoundRobinPolicy,
    SerialAllMachinesPolicy,
)
from repro.baselines.malewicz import (
    ChainDPResult,
    optimal_chains_expected_makespan,
)
from repro.baselines.optimal import (
    MAX_DP_JOBS,
    OptimalResult,
    enumerate_remaining_sets,
    exact_policy_expected_makespan,
    optimal_expected_makespan,
)

__all__ = [
    "ChainDPResult",
    "optimal_chains_expected_makespan",
    "GreedyLRPolicy",
    "SerialAllMachinesPolicy",
    "RoundRobinPolicy",
    "BestMachinePolicy",
    "RandomAssignmentPolicy",
    "optimal_expected_makespan",
    "exact_policy_expected_makespan",
    "enumerate_remaining_sets",
    "OptimalResult",
    "MAX_DP_JOBS",
]
