"""Pluggable request executors: who runs a request's trial chunks, and how.

The batch service historically made the transport decision per call —
``backend="process"`` spun up a fresh ``spawn``-method pool, ran one
request's chunks, and tore it down.  For one-shot batch calls that is
fine; for a long-running request server it is the dominant cost (pool
spawn imports numpy/scipy in every worker, ~seconds per request).  A
*request executor* inverts the ownership: the executor owns a dispatch
transport with an explicit lifecycle, and :func:`repro.api.simulate` /
:func:`repro.api.evaluate_grid` accept one via ``executor=`` instead of
constructing pools themselves.

Two executors ship:

* :class:`SerialExecutor` — everything in the calling process.  Zero
  startup, zero IPC; the right choice for small requests and tests.
* :class:`WarmPoolExecutor` — one long-lived
  :class:`~concurrent.futures.ProcessPoolExecutor` (built by
  :func:`repro.api.service.worker_pool`, so workers get the process
  solve cache installed) reused across every request.  Workers stay
  *warm*: their :class:`~repro.core.phased.ProcessSolveCache` retains
  LP round schedules and chain plans across requests, so repeated or
  related requests skip straight past the solve pipeline.

Both are context managers; :func:`default_executor` holds a module-level
default (serial unless replaced) for callers that want executor-style
injection without managing a lifecycle.

The api layer duck-types executors (``backend`` / ``n_workers`` /
``acquire()``), so third-party executors — e.g. a future remote
dispatcher — plug in without touching this module.
"""

from __future__ import annotations

import threading

from repro.api.config import resolve_kernel, resolve_kernel_threads
from repro.api.service import WORKER_SOLVE_CACHE_ENTRIES, worker_pool
from repro.core.phased import solve_cache_stats
from repro.kernels import kernel_info

__all__ = [
    "RequestExecutor",
    "SerialExecutor",
    "WarmPoolExecutor",
    "default_executor",
    "set_default_executor",
    "make_executor",
    "EXECUTOR_KINDS",
]

#: Executor kinds constructible by name (CLI ``--executor`` choices).
EXECUTOR_KINDS: tuple[str, ...] = ("serial", "warm-pool")


class RequestExecutor:
    """Base request executor: the dispatch-transport contract.

    Attributes
    ----------
    backend:
        Which service dispatch path requests take (``"serial"`` or
        ``"process"``).
    n_workers:
        Pool width for process executors (``None`` = CPU count).
    """

    kind = "base"
    backend = "serial"
    n_workers: int | None = None

    def acquire(self):
        """The chunk pool requests should dispatch on (``None`` = in-process).

        Called once per request by the service layer; long-lived
        executors return the same pool every time.
        """
        return None

    def close(self) -> None:
        """Release owned resources; the executor is reusable after close
        (the next :meth:`acquire` rebuilds them)."""

    def stats(self) -> dict:
        """JSON-ready execution counters (surfaced by ``/healthz``)."""
        return {"kind": self.kind, "backend": self.backend}

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(RequestExecutor):
    """Run every request in the calling process (no pool, no IPC)."""

    kind = "serial"
    backend = "serial"

    def __init__(self):
        self.requests = 0

    def acquire(self):
        self.requests += 1
        return None

    def stats(self) -> dict:
        stats = super().stats()
        stats["requests"] = self.requests
        # In-process execution warms this process's own solve cache.
        stats["solve_cache"] = solve_cache_stats()
        return stats


class WarmPoolExecutor(RequestExecutor):
    """A long-lived worker pool with solve-cache-warm workers.

    The pool is built lazily on first :meth:`acquire` (or eagerly via
    :meth:`prewarm`) and then reused by every subsequent request — the
    per-request pool-spawn cost of the historical
    ``backend="process"`` path is paid once per executor lifetime.
    Workers install the process solve cache through the pool
    initializer, so LP round schedules / chain plans computed for one
    request are hits for the next.

    Thread-safe: the request server handles requests on a thread pool,
    and ``ProcessPoolExecutor`` submissions are themselves thread-safe,
    so many in-flight requests can share the one pool.

    Parameters
    ----------
    n_workers:
        Pool width (``None`` = CPU count).
    solve_cache_entries:
        Capacity installed into each worker's process solve cache.
    kernel:
        Kernel backend warmed into each worker through the pool
        initializer (``None`` = resolve ``REPRO_KERNEL`` here, in the
        server process).  With ``"numba"``, workers JIT-compile once at
        pool start-up and serve every request from the compiled (and
        on-disk-cached) kernels.
    kernel_threads:
        Trial-parallel worker count warmed into each pool worker
        (``None`` = resolve ``REPRO_KERNEL_THREADS`` here).  Numba
        workers run prange over trials in-kernel; numpy/python workers
        shard the batch onto a thread pool inside each process.
    """

    kind = "warm-pool"
    backend = "process"

    def __init__(self, n_workers: int | None = None,
                 solve_cache_entries: int = WORKER_SOLVE_CACHE_ENTRIES,
                 kernel: str | None = None,
                 kernel_threads: int | None = None):
        self.n_workers = n_workers
        self.solve_cache_entries = int(solve_cache_entries)
        self.kernel = kernel
        self.kernel_threads = kernel_threads
        self.requests = 0
        self.pools_built = 0
        self._pool = None
        self._lock = threading.Lock()

    def acquire(self):
        self.requests += 1
        return self._ensure_pool()

    def prewarm(self) -> None:
        """Build the pool and force every worker process to start now.

        A no-op when already warm.  Servers call this before accepting
        traffic so the first request does not absorb the spawn cost.
        """
        pool = self._ensure_pool()
        # A map wider than the pool guarantees every worker has started
        # (and run the solve-cache initializer) before this returns.
        n = pool._max_workers
        list(pool.map(_noop, range(2 * n)))

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = worker_pool(
                    self.n_workers,
                    solve_cache_entries=self.solve_cache_entries,
                    kernel=self.kernel,
                    kernel_threads=self.kernel_threads,
                )
                self.pools_built += 1
            return self._pool

    @property
    def warm(self) -> bool:
        """Whether a live pool exists right now."""
        return self._pool is not None

    def cache_stats(self) -> dict | None:
        """One warm worker's solve-cache counters (``None`` when cold).

        Sampled with a single task, so with ``n_workers > 1`` it reads
        *a* worker, not an aggregate — exact for single-worker pools
        (how the tests observe cross-request reuse), indicative
        otherwise.  The ``"kernel"`` key carries that worker's actual
        :func:`repro.kernels.kernel_info` state — the authoritative view
        of what backend the workers run (the parent logs the numba
        fallback warning once; workers degrade silently, so this is
        where a degraded pool shows up).
        """
        with self._lock:
            pool = self._pool
        if pool is None:
            return None
        return pool.submit(
            _worker_probe,
            resolve_kernel(self.kernel),
            resolve_kernel_threads(self.kernel_threads),
        ).result()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def stats(self) -> dict:
        stats = super().stats()
        stats.update(
            requests=self.requests,
            pools_built=self.pools_built,
            warm=self.warm,
            n_workers=self.n_workers,
            kernel=resolve_kernel(self.kernel),
            kernel_threads=resolve_kernel_threads(self.kernel_threads),
        )
        worker_cache = self.cache_stats()
        if worker_cache is not None:
            stats["worker_solve_cache"] = worker_cache
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "warm" if self.warm else "cold"
        return f"WarmPoolExecutor(n_workers={self.n_workers}, {state})"


def _noop(_i):
    """Picklable worker warm-up task (module-level for ``spawn``)."""
    return None


def _worker_probe(kernel: str, kernel_threads: int) -> dict:
    """Picklable warm-worker probe: solve-cache counters + kernel state.

    Runs *inside* a pool worker, so ``kernel_info`` reports what that
    worker actually loaded (e.g. numpy after a silent numba fallback).
    """
    stats = dict(solve_cache_stats())
    stats["kernel"] = kernel_info(kernel, kernel_threads)
    return stats


_default_lock = threading.Lock()
_default: RequestExecutor | None = None


def default_executor() -> RequestExecutor:
    """The module-level default executor (a :class:`SerialExecutor`
    created on first use, unless replaced)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = SerialExecutor()
        return _default


def set_default_executor(executor: RequestExecutor | None) -> RequestExecutor | None:
    """Replace the module default; returns the previous one (not closed —
    the caller owns both lifecycles).  ``None`` resets to lazy-serial."""
    global _default
    with _default_lock:
        previous, _default = _default, executor
    return previous


def make_executor(kind: str, n_workers: int | None = None,
                  solve_cache_entries: int = WORKER_SOLVE_CACHE_ENTRIES,
                  kernel: str | None = None,
                  kernel_threads: int | None = None) -> RequestExecutor:
    """Construct an executor by registry name (CLI entry point).

    ``kind`` is one of :data:`EXECUTOR_KINDS`; ``kernel`` and
    ``kernel_threads`` reach warm-pool workers through the pool
    initializer (serial executors run in-process, where the service layer
    resolves the kernel itself).
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "warm-pool":
        return WarmPoolExecutor(
            n_workers, solve_cache_entries=solve_cache_entries, kernel=kernel,
            kernel_threads=kernel_threads,
        )
    raise ValueError(f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}")
