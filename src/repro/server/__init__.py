"""``repro.server`` — scheduling as a service.

Two layers:

* :mod:`repro.server.executors` — pluggable *request executors* that own
  the dispatch transport for :func:`repro.api.simulate` /
  :func:`repro.api.evaluate_grid` calls: :class:`SerialExecutor`
  (in-process) and :class:`WarmPoolExecutor` (one long-lived,
  solve-cache-warm worker pool reused across requests).
* :mod:`repro.server.app` — the persistent asyncio HTTP service
  (``POST /simulate``, ``POST /grid``, ``GET /policies``,
  ``GET /healthz``) with keep-alive connections and graceful draining
  shutdown.

Quick start::

    from repro.server import WarmPoolExecutor, serve_background

    with WarmPoolExecutor(n_workers=4) as ex:
        ex.prewarm()
        with serve_background(ex) as handle:
            print("serving on", handle.address)
            ...

or, from a shell: ``repro serve --executor warm-pool`` and
``repro loadgen --rps 50 --duration 10`` (see :mod:`repro.loadgen`).
"""

from repro.server.app import (
    HttpError,
    SchedulingServer,
    SchedulingService,
    ServerHandle,
    serve_background,
)
from repro.server.executors import (
    EXECUTOR_KINDS,
    RequestExecutor,
    SerialExecutor,
    WarmPoolExecutor,
    default_executor,
    make_executor,
    set_default_executor,
)

__all__ = [
    # Executors
    "RequestExecutor",
    "SerialExecutor",
    "WarmPoolExecutor",
    "default_executor",
    "set_default_executor",
    "make_executor",
    "EXECUTOR_KINDS",
    # HTTP service
    "HttpError",
    "SchedulingService",
    "SchedulingServer",
    "ServerHandle",
    "serve_background",
]
