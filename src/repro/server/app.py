"""Scheduling as a service: an asyncio HTTP front over the batch engine.

A :class:`SchedulingServer` is a persistent process that turns the
one-shot :func:`repro.api.simulate` / :func:`repro.api.evaluate_grid`
calls into a request/response service:

* ``POST /simulate`` — body ``{"scenario": {...}, "policy": "auto",
  "config": {...}}``; returns the report as JSON (summary statistics by
  default; ``"include_samples": true`` adds the raw makespan samples,
  ``"per_job": true`` the per-job tail statistics).
* ``POST /grid`` — body ``{"grid": {...}}`` (a serialized
  :class:`~repro.api.scenario.ScenarioGrid`) or ``{"scenarios":
  [{...}, ...]}``, plus ``"policies"`` / ``"config"``; returns every
  cell's report, scenario-major.
* ``GET /policies`` — the policy registry listing.
* ``GET /healthz`` — liveness plus served/error counters, in-flight
  depth, the executor's stats (including a warm worker's solve-cache
  counters — how warm-pool reuse is observed from the outside), and the
  active kernel backend (:func:`repro.kernels.kernel_info`).

The HTTP layer is deliberately minimal — stdlib ``asyncio`` streams, no
framework: an HTTP/1.1 parser supporting keep-alive and
``Content-Length`` bodies is all a measurement service needs, and it
keeps the event loop transparent for the latency experiments built on
top.  Simulation work never blocks the loop: handlers run on a thread
pool, and the heavy lifting is dispatched through the injected request
executor (:mod:`repro.server.executors`) — a warm process pool under
the default server configuration.  Shutdown is graceful: the listener
closes first, in-flight requests drain (bounded by ``drain_timeout``),
then connections are torn down.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api.registry import list_policies
from repro.api.scenario import Scenario, ScenarioGrid, SimConfig
from repro.api.service import evaluate_grid, simulate
from repro.errors import ReproError
from repro.kernels import kernel_info
from repro.server.executors import RequestExecutor, default_executor

__all__ = [
    "HttpError",
    "SchedulingService",
    "SchedulingServer",
    "ServerHandle",
    "serve_background",
]

#: Largest accepted request body; a grid request is small (it is a
#: declarative recipe, not data), so anything bigger is a client bug.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Idle keep-alive connections are dropped after this many seconds.
KEEP_ALIVE_TIMEOUT = 60.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request failure with an HTTP status (4xx for client mistakes)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


def _require(body: dict, key: str):
    value = body.get(key)
    if value is None:
        raise HttpError(400, f"missing required field {key!r}")
    return value


def _parse(cls, data, what: str):
    """``cls.from_dict(data)`` with client errors mapped to 400s."""
    if not isinstance(data, dict):
        raise HttpError(400, f"{what} must be a JSON object")
    try:
        return cls.from_dict(data)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise HttpError(400, f"invalid {what}: {exc}") from exc


def _report_payload(report, include_samples: bool) -> dict:
    """A report as response JSON — summary-sized unless samples are asked
    for (load tests want small constant-size responses)."""
    lo, hi = report.stats.ci95
    payload = {
        "policy": report.policy,
        "mean": report.mean,
        "ci95": [lo, hi],
        "lower_bound": report.lower_bound,
        "ratio": report.ratio,
        "n_trials": report.stats.n_trials,
        "scenario": report.scenario.to_dict() if report.scenario else None,
        "config": report.config.to_dict(),
    }
    if report.kernel is not None:
        payload["kernel"] = report.kernel
    if include_samples:
        payload["samples"] = report.stats.samples.tolist()
    if report.per_job is not None:
        payload["per_job"] = report.per_job.to_dict()
    return payload


class SchedulingService:
    """The transport-independent request handlers.

    Owns the injected :class:`~repro.server.executors.RequestExecutor`
    *reference* (not its lifecycle) and the service counters; the HTTP
    layer, tests, and any future transport call :meth:`handle` with
    ``(method, path, body-dict-or-None)`` and get ``(status, payload)``
    back.
    """

    def __init__(self, executor: RequestExecutor | None = None):
        self.executor = executor if executor is not None else default_executor()
        self.started_at = time.time()
        self.served = 0
        self.errors = 0

    # -- endpoint handlers -------------------------------------------------

    def handle(self, method: str, path: str, body: dict | None) -> tuple[int, dict]:
        """Route one request; raises :class:`HttpError` on client errors."""
        route = self._ROUTES.get(path)
        if route is None:
            raise HttpError(404, f"no such endpoint: {path}")
        want_method, handler = route
        if method != want_method:
            raise HttpError(405, f"{path} expects {want_method}, got {method}")
        return 200, handler(self, body)

    def healthz(self, _body=None) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "served": self.served,
            "errors": self.errors,
            "executor": self.executor.stats(),
            # The server process's kernel view: requested vs active backend
            # (post numba-fallback) and the local warm-up time.  Warm-pool
            # workers warm their own backend through the pool initializer.
            "kernel": kernel_info(),
        }

    def policies(self, _body=None) -> dict:
        rows = [
            {
                "name": info.name,
                "aliases": list(info.aliases),
                "default_for": list(info.default_for),
                "batch_dispatch": info.batch_dispatch,
                "summary": info.summary,
            }
            for info in list_policies()
        ]
        return {"policies": rows, "n": len(rows)}

    def simulate(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        scenario = _parse(Scenario, _require(body, "scenario"), "scenario")
        config = _parse(SimConfig, body.get("config") or {}, "config")
        policy = body.get("policy", "auto")
        if not isinstance(policy, str):
            raise HttpError(400, "policy must be a registry name string")
        try:
            report = simulate(
                scenario, policy, config,
                executor=self.executor,
                per_job=bool(body.get("per_job", False)),
            )
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        return _report_payload(report, bool(body.get("include_samples", False)))

    def grid(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        if "grid" in body:
            grid = _parse(ScenarioGrid, body["grid"], "grid")
        elif "scenarios" in body:
            if not isinstance(body["scenarios"], list) or not body["scenarios"]:
                raise HttpError(400, "scenarios must be a non-empty list")
            grid = [_parse(Scenario, s, "scenario") for s in body["scenarios"]]
        else:
            raise HttpError(400, "missing required field 'grid' (or 'scenarios')")
        policies = body.get("policies", ["auto"])
        if isinstance(policies, str):
            policies = [policies]
        if not isinstance(policies, list) or not all(
            isinstance(p, str) for p in policies
        ):
            raise HttpError(400, "policies must be a list of registry names")
        config = _parse(SimConfig, body.get("config") or {}, "config")
        try:
            reports = evaluate_grid(
                grid, tuple(policies), config=config, executor=self.executor,
                per_job=bool(body.get("per_job", False)),
            )
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        include = bool(body.get("include_samples", False))
        return {
            "reports": [_report_payload(r, include) for r in reports],
            "n": len(reports),
        }

    _ROUTES = {
        "/healthz": ("GET", healthz),
        "/policies": ("GET", policies),
        "/simulate": ("POST", simulate),
        "/grid": ("POST", grid),
    }


class SchedulingServer:
    """The asyncio HTTP transport around a :class:`SchedulingService`.

    Parameters
    ----------
    executor:
        Request executor backing the service (default: the module
        default, serial).  The server does not close it — lifecycles
        compose from the outside (``with WarmPoolExecutor() as ex: ...``).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        ``server.port`` after :meth:`start`).
    max_handlers:
        Size of the thread pool request handlers run on — the cap on
        concurrently *executing* requests (further requests queue; the
        open-loop load driver measures that queueing as latency, which
        is the point).
    drain_timeout:
        Grace period for in-flight requests at shutdown.
    """

    def __init__(self, executor: RequestExecutor | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_handlers: int = 8, drain_timeout: float = 10.0):
        self.service = SchedulingService(executor)
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._threads = ThreadPoolExecutor(
            max_workers=max_handlers, thread_name_prefix="repro-http"
        )
        self._server: asyncio.AbstractServer | None = None
        self._in_flight = 0
        self._drained = asyncio.Event()
        self._stopping = False

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, tear down."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # clear-then-check runs atomically on the loop (no await between),
        # so a request finishing right now cannot slip past the wait.
        self._drained.clear()
        if self._in_flight > 0:
            try:
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.drain_timeout
                )
            except asyncio.TimeoutError:  # pragma: no cover - only on hangs
                pass
        self._threads.shutdown(wait=False)

    # -- connection handling ----------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        """One keep-alive connection: serve requests until close/EOF."""
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=KEEP_ALIVE_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                if request is None:  # EOF between requests
                    break
                keep_alive = await self._dispatch(writer, *request)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF.

        Returns ``(method, path, headers, raw_body, malformed)`` where
        ``malformed`` carries an :class:`HttpError` to answer with when
        the *framing* was readable but the request line was not.
        """
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return "GET", "/", {}, b"", HttpError(400, "malformed request line")
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        malformed = None
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
                if n < 0:
                    raise ValueError(length)
            except ValueError:
                return method, target, headers, b"", HttpError(
                    400, f"bad Content-Length: {length!r}"
                )
            if n > MAX_BODY_BYTES:
                # The body cannot be skipped cheaply; answer and close.
                return method, target, headers, b"", HttpError(
                    413, f"body of {n} bytes exceeds limit {MAX_BODY_BYTES}"
                )
            body = await reader.readexactly(n)
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body, malformed

    async def _dispatch(self, writer, method, path, headers, raw_body,
                        malformed) -> bool:
        """Run one request through the service and write the response.

        Returns whether the connection should stay open.
        """
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        close_after = not keep_alive
        self._in_flight += 1
        try:
            if malformed is not None:
                raise malformed
            if self._stopping:
                # Accepted before the listener closed; anything parsed
                # after the stop signal is politely refused.
                raise HttpError(503, "server is shutting down")
            body = None
            if raw_body:
                try:
                    body = json.loads(raw_body)
                except json.JSONDecodeError as exc:
                    raise HttpError(400, f"request body is not JSON: {exc}") from exc
            loop = asyncio.get_running_loop()
            status, payload = await loop.run_in_executor(
                self._threads, self.service.handle, method, path, body
            )
            self.service.served += 1
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
            self.service.errors += 1
            close_after = close_after or exc.status in (400, 413)
        except Exception as exc:  # noqa: BLE001 - the server must answer
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self.service.errors += 1
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.set()
        data = json.dumps(payload).encode()
        connection = "close" if close_after else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
        return not close_after


class ServerHandle:
    """A running server on a background thread (tests, loadgen self-serve).

    Created by :func:`serve_background`; exposes ``host`` / ``port`` and
    :meth:`stop` (graceful drain, then join).  Usable as a context
    manager.
    """

    def __init__(self, server: SchedulingServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(executor: RequestExecutor | None = None, *,
                     host: str = "127.0.0.1", port: int = 0,
                     max_handlers: int = 8,
                     drain_timeout: float = 10.0) -> ServerHandle:
    """Start a :class:`SchedulingServer` on a daemon thread.

    Blocks until the socket is bound (so ``handle.port`` is final), then
    returns a :class:`ServerHandle`.  The caller owns the executor's
    lifecycle, as everywhere else.
    """
    server = SchedulingServer(
        executor, host=host, port=port, max_handlers=max_handlers,
        drain_timeout=drain_timeout,
    )
    started = threading.Event()
    boot_error: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            boot_error.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    started.wait()
    if boot_error:
        raise boot_error[0]
    return ServerHandle(server, loop, thread)
