"""repro — Multiprocessor Scheduling Under Uncertainty (SPAA 2008).

A from-scratch reproduction of Crutchfield, Dzunic, Fineman, Karger, and
Scott, *Improved Approximations for Multiprocessor Scheduling Under
Uncertainty* (SPAA 2008, arXiv:0802.2418): the SUU problem model and
simulator, the paper's LP-based approximation algorithms (SUU-I-OBL,
SUU-I-SEM, SUU-C, SUU-T), the stochastic-scheduling variants of
Appendix C (STC-I), the Lin–Rajaraman baseline, and the measurement
harness that reproduces the paper's Table 1 empirically.

Quick start — the :mod:`repro.api` facade::

    import repro

    # Declare the workload, let the registry pick the right algorithm.
    scenario = repro.Scenario(shape="independent", n_jobs=50, n_machines=10,
                              model="specialist", seed=0)
    report = repro.simulate(scenario, policy="auto",
                            config=repro.SimConfig(n_trials=50, seed=1))
    print(report.mean, "vs lower bound", report.lower_bound)

    # Sweep a grid of scenarios across policies, in parallel:
    grid = repro.ScenarioGrid(scenario, shape=["independent", "chains"],
                              n_jobs=[20, 40])
    for rep in repro.evaluate_grid(grid, ["auto", "greedy"], backend="process"):
        print(rep)

Lower-level building blocks (instances, policies, the engine, Monte Carlo
estimators, LP relaxations, bounds) remain importable directly::

    inst = repro.independent_instance(50, 10, "specialist", rng=0)
    stats = repro.estimate_expected_makespan(inst, repro.SUUISemPolicy, 50, rng=1)
    print(stats.mean, "vs lower bound", repro.lower_bound(inst))
"""

from repro.api import (
    FAILURE_MODELS,
    SCENARIO_SHAPES,
    PolicyInfo,
    Report,
    Scenario,
    ScenarioGrid,
    SimConfig,
    default_policy_for,
    evaluate_grid,
    get_policy,
    list_policies,
    make_policy,
    policy_factory,
    policy_info,
    policy_names,
    register_policy,
    simulate,
)

from repro.analysis import (
    PerJobStats,
    RatioMeasurement,
    critical_path_lower_bound,
    format_markdown_table,
    format_table,
    lower_bound,
    lp1_lower_bound,
    lp2_lower_bound,
    measure_ratio,
    per_job_stats,
    single_job_lower_bound,
)
from repro.baselines import (
    BestMachinePolicy,
    GreedyLRPolicy,
    RandomAssignmentPolicy,
    RoundRobinPolicy,
    SerialAllMachinesPolicy,
    exact_policy_expected_makespan,
    optimal_chains_expected_makespan,
    optimal_expected_makespan,
)
from repro.core import (
    LayeredPolicy,
    LP1Relaxation,
    LP2Relaxation,
    PAPER_SCALE,
    SUUCPolicy,
    SUUIAdaptiveLPPolicy,
    SUUIOblPolicy,
    SUUISemPolicy,
    SUUTPolicy,
    build_obl_schedule,
    paper_round_count,
    round_assignment,
    round_lp2,
    solve_lp1,
    solve_lp2,
)
from repro.core.stoch import (
    estimate_stochastic,
    serial_fastest_trial,
    static_mean_trial,
    stc_i_trial,
    stochastic_round_count,
)
from repro.errors import (
    DecompositionError,
    InfeasibleLPError,
    InvalidInstanceError,
    InvalidScenarioError,
    ReproError,
    RoundingError,
    ScheduleViolationError,
    SimulationHorizonError,
    UnknownPolicyError,
)
from repro.instance import (
    PrecedenceClass,
    PrecedenceGraph,
    StochasticInstance,
    SUUInstance,
    chain_instance,
    decompose_forest,
    extract_chains,
    failure_matrix,
    forest_instance,
    independent_instance,
    layered_instance,
    load_instance,
    random_dag_instance,
    save_instance,
    stochastic_instance,
    tree_instance,
)
from repro.schedule import (
    IDLE,
    BatchSimulationState,
    FiniteObliviousSchedule,
    IntegralAssignment,
    Policy,
    RepeatingObliviousPolicy,
    SimulationState,
    VectorizedPolicy,
    congestion_profile,
    draw_delays,
    supports_batch,
)
from repro.sim import (
    BatchSimResult,
    ExecutionTrace,
    MakespanStats,
    SimResult,
    TracingPolicy,
    compare_policies,
    estimate_expected_makespan,
    render_gantt,
    run_policy,
    run_policy_batch,
    sample_oblivious_repeat_makespans,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # repro.api facade
    "Scenario",
    "SimConfig",
    "ScenarioGrid",
    "Report",
    "simulate",
    "evaluate_grid",
    "register_policy",
    "get_policy",
    "policy_info",
    "policy_names",
    "policy_factory",
    "list_policies",
    "default_policy_for",
    "make_policy",
    "PolicyInfo",
    "SCENARIO_SHAPES",
    "FAILURE_MODELS",
    # Instances
    "SUUInstance",
    "PrecedenceGraph",
    "PrecedenceClass",
    "StochasticInstance",
    "independent_instance",
    "chain_instance",
    "tree_instance",
    "forest_instance",
    "layered_instance",
    "random_dag_instance",
    "stochastic_instance",
    "failure_matrix",
    "extract_chains",
    "decompose_forest",
    "save_instance",
    "load_instance",
    # Core algorithms
    "SUUIOblPolicy",
    "SUUISemPolicy",
    "SUUCPolicy",
    "SUUTPolicy",
    "LayeredPolicy",
    "SUUIAdaptiveLPPolicy",
    "solve_lp1",
    "solve_lp2",
    "round_assignment",
    "round_lp2",
    "build_obl_schedule",
    "paper_round_count",
    "PAPER_SCALE",
    "LP1Relaxation",
    "LP2Relaxation",
    # Stochastic (Appendix C)
    "stc_i_trial",
    "serial_fastest_trial",
    "static_mean_trial",
    "estimate_stochastic",
    "stochastic_round_count",
    # Baselines
    "GreedyLRPolicy",
    "SerialAllMachinesPolicy",
    "RoundRobinPolicy",
    "BestMachinePolicy",
    "RandomAssignmentPolicy",
    "optimal_expected_makespan",
    "optimal_chains_expected_makespan",
    "exact_policy_expected_makespan",
    # Simulation
    "run_policy",
    "run_policy_batch",
    "estimate_expected_makespan",
    "compare_policies",
    "sample_oblivious_repeat_makespans",
    "SimResult",
    "BatchSimResult",
    "MakespanStats",
    "TracingPolicy",
    "ExecutionTrace",
    "render_gantt",
    "Policy",
    "VectorizedPolicy",
    "supports_batch",
    "SimulationState",
    "BatchSimulationState",
    "IDLE",
    "FiniteObliviousSchedule",
    "RepeatingObliviousPolicy",
    "IntegralAssignment",
    "congestion_profile",
    "draw_delays",
    # Analysis
    "lower_bound",
    "PerJobStats",
    "per_job_stats",
    "lp1_lower_bound",
    "lp2_lower_bound",
    "single_job_lower_bound",
    "critical_path_lower_bound",
    "measure_ratio",
    "RatioMeasurement",
    "format_table",
    "format_markdown_table",
    # Errors
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleLPError",
    "RoundingError",
    "ScheduleViolationError",
    "SimulationHorizonError",
    "DecompositionError",
    "UnknownPolicyError",
    "InvalidScenarioError",
]
