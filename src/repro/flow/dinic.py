"""Dinic's maximum-flow algorithm on integer capacities.

The Lemma 2 / Lemma 6 roundings need an *integral* maximum flow
(Ford–Fulkerson integrality is what turns fractional LP assignments into
integral schedules), so we implement Dinic's algorithm from scratch:
BFS level graph + blocking-flow DFS, both iterative.  Runtime is
``O(V^2 E)`` generally and ``O(E sqrt(V))`` on the unit-ish bipartite
networks the roundings build — far below the LP solve time in practice.
"""

from __future__ import annotations

from collections import deque

__all__ = ["MaxFlowNetwork", "INF_CAPACITY"]

#: Sentinel "infinite" capacity.  Large enough to never bind (total demand
#: in our networks is bounded by ``6 * m * n * max-assignment``), small
#: enough to never overflow int64 arithmetic.
INF_CAPACITY: int = 1 << 60


class MaxFlowNetwork:
    """A directed flow network with integer capacities.

    Edges are stored in a flat adjacency structure: ``add_edge`` returns an
    edge id whose flow can be queried after :meth:`max_flow` with
    :meth:`flow_on`.  Residual (reverse) edges are created automatically.

    Example
    -------
    >>> net = MaxFlowNetwork(4)
    >>> e0 = net.add_edge(0, 1, 3)
    >>> e1 = net.add_edge(1, 2, 2)
    >>> e2 = net.add_edge(2, 3, 3)
    >>> net.max_flow(0, 3)
    2
    >>> net.flow_on(e1)
    2
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 2:
            raise ValueError(f"a flow network needs >= 2 nodes, got {n_nodes}")
        self.n_nodes = n_nodes
        # Parallel arrays: edge k goes to _to[k] with remaining capacity
        # _cap[k]; k ^ 1 is its residual twin.
        self._to: list[int] = []
        self._cap: list[int] = []
        self._initial_cap: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]
        self._solved = False

    def add_node(self) -> int:
        """Append a fresh node and return its id."""
        self._adj.append([])
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add edge ``u -> v`` with integer ``capacity``; returns an edge id."""
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise ValueError("self-loop edges are not allowed")
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if self._solved:
            raise RuntimeError("cannot add edges after max_flow() has run")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._initial_cap.append(capacity)
        self._adj[u].append(eid)
        self._to.append(u)
        self._cap.append(0)
        self._initial_cap.append(0)
        self._adj[v].append(eid + 1)
        return eid

    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        level = [-1] * self.n_nodes
        level[source] = 0
        dq = deque([source])
        while dq:
            v = dq.popleft()
            for eid in self._adj[v]:
                w = self._to[eid]
                if self._cap[eid] > 0 and level[w] < 0:
                    level[w] = level[v] + 1
                    dq.append(w)
        return level if level[sink] >= 0 else None

    def _blocking_flow(self, source: int, sink: int, level: list[int]) -> int:
        """Iterative DFS sending blocking flow along the level graph."""
        total = 0
        it = [0] * self.n_nodes  # per-node pointer into adjacency (current-arc)
        # path holds edge ids from source to the current node.
        path: list[int] = []
        v = source
        while True:
            if v == sink:
                pushed = min(self._cap[eid] for eid in path)
                for eid in path:
                    self._cap[eid] -= pushed
                    self._cap[eid ^ 1] += pushed
                total += pushed
                # Retreat to just before the first saturated edge on the path.
                for k, eid in enumerate(path):
                    if self._cap[eid] == 0:
                        del path[k:]
                        break
                v = self._to[path[-1]] if path else source
                continue
            advanced = False
            while it[v] < len(self._adj[v]):
                eid = self._adj[v][it[v]]
                w = self._to[eid]
                if self._cap[eid] > 0 and level[w] == level[v] + 1:
                    path.append(eid)
                    v = w
                    advanced = True
                    break
                it[v] += 1
            if advanced:
                continue
            if v == source:
                return total
            # Dead end: prune this vertex from the level graph and retreat.
            level[v] = -1
            eid = path.pop()
            v = self._to[eid ^ 1]
            it[v] += 1

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow value from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                break
            total += self._blocking_flow(source, sink, level)
        self._solved = True
        return total

    # ------------------------------------------------------------------
    def flow_on(self, edge_id: int) -> int:
        """Flow routed through the edge returned by :meth:`add_edge`."""
        if not (0 <= edge_id < len(self._to)) or edge_id % 2 != 0:
            raise ValueError(f"invalid edge id {edge_id}")
        return self._initial_cap[edge_id] - self._cap[edge_id]

    def min_cut_side(self, source: int) -> list[bool]:
        """Source side of a minimum cut (reachable in the residual graph).

        Only meaningful after :meth:`max_flow`; used by tests to check the
        max-flow/min-cut certificate.
        """
        seen = [False] * self.n_nodes
        seen[source] = True
        dq = deque([source])
        while dq:
            v = dq.popleft()
            for eid in self._adj[v]:
                w = self._to[eid]
                if self._cap[eid] > 0 and not seen[w]:
                    seen[w] = True
                    dq.append(w)
        return seen
