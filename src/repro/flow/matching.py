"""Hopcroft–Karp maximum bipartite matching.

Used by the Lawler–Labetoulle open-shop decomposition (every decomposition
step extracts a matching that covers all *tight* rows and columns of the
processing-time matrix) and by the Lenstra–Shmoys–Tardos rounding.  Runs in
``O(E sqrt(V))``.  The augmenting DFS is iterative, so deep alternating
paths cannot hit Python's recursion limit.
"""

from __future__ import annotations

from collections import deque

__all__ = ["hopcroft_karp", "max_bipartite_matching"]

_INF = float("inf")


def hopcroft_karp(
    n_left: int, n_right: int, adjacency: list[list[int]]
) -> tuple[int, list[int], list[int]]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two vertex classes.
    adjacency:
        ``adjacency[u]`` lists the right-vertices adjacent to left-vertex
        ``u``.

    Returns
    -------
    ``(size, match_left, match_right)`` where ``match_left[u]`` is the right
    partner of ``u`` (or ``-1``) and symmetrically for ``match_right``.
    """
    if len(adjacency) != n_left:
        raise ValueError(f"adjacency has {len(adjacency)} rows but n_left={n_left}")
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            if not (0 <= v < n_right):
                raise ValueError(f"right vertex {v} (from left {u}) out of range")

    match_l = [-1] * n_left
    match_r = [-1] * n_right
    dist = [0.0] * n_left

    def bfs() -> bool:
        dq = deque()
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0.0
                dq.append(u)
            else:
                dist[u] = _INF
        found = False
        while dq:
            u = dq.popleft()
            for v in adjacency[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    dq.append(w)
        return found

    def dfs(root: int) -> bool:
        # Frames hold (left vertex, iterator over its neighbours); ``chosen``
        # holds the right vertex picked when descending from each frame, so
        # an augmenting path can be committed by unwinding both lists.
        stack: list[tuple[int, object]] = [(root, iter(adjacency[root]))]
        chosen: list[int] = []
        while stack:
            u, nbrs = stack[-1]
            step = None
            for v in nbrs:
                w = match_r[v]
                if w == -1:
                    step = ("augment", v, -1)
                    break
                if dist[w] == dist[u] + 1:
                    step = ("descend", v, w)
                    break
            if step is None:
                dist[u] = _INF
                stack.pop()
                if chosen:
                    chosen.pop()
                continue
            kind, v, w = step
            if kind == "augment":
                match_l[u] = v
                match_r[v] = u
                for (fu, _), fv in zip(reversed(stack[:-1]), reversed(chosen)):
                    match_l[fu] = fv
                    match_r[fv] = fu
                return True
            chosen.append(v)
            stack.append((w, iter(adjacency[w])))
        return False

    size = 0
    while bfs():
        for u in range(n_left):
            if match_l[u] == -1 and dfs(u):
                size += 1
    return size, match_l, match_r


def max_bipartite_matching(
    n_left: int, n_right: int, edges
) -> tuple[int, list[int], list[int]]:
    """Convenience wrapper: matching from an edge list ``[(u, v), ...]``."""
    adjacency: list[list[int]] = [[] for _ in range(n_left)]
    for u, v in edges:
        adjacency[int(u)].append(int(v))
    return hopcroft_karp(n_left, n_right, adjacency)
