"""Network-flow substrate: Dinic max-flow and Hopcroft-Karp matching."""

from repro.flow.dinic import INF_CAPACITY, MaxFlowNetwork
from repro.flow.matching import hopcroft_karp, max_bipartite_matching

__all__ = [
    "MaxFlowNetwork",
    "INF_CAPACITY",
    "hopcroft_karp",
    "max_bipartite_matching",
]
