"""Fused loop-nest implementations of the hot-loop kernels.

This module is the *shared source* of the compiled backend: every function
here is written in the numba-compilable subset of Python/numpy (plain
loops, no fancy indexing, no object types) and is used two ways:

* ``repro.kernels.numba_backend`` wraps each function in
  ``numba.njit(cache=True)`` — the ``REPRO_KERNEL=numba`` fast path.
* ``repro.kernels`` exposes the *uncompiled* functions as the ``"python"``
  debug backend, so the fused logic is bit-identity-testable against the
  numpy backend even on machines without numba (CI's default).

The contract with :mod:`repro.kernels.numpy_backend` is exact: given the
same inputs, every function must produce bit-identical array state.  The
float-sensitive spots are annotated below; everything else is integer or
boolean arithmetic where identity is structural.

Item-kind codes in the chain tables match
:mod:`repro.core.chain_batch`'s ``_KIND_*`` constants (block 0, pause 1,
end 2) — asserted there at import time.

**Trial parallelism.**  The per-trial loops are written against
``prange``: under ``numba.njit(parallel=True)`` (the threaded numba
backend, ``kernel_threads > 1``) trials run on multiple cores, while
``parallel=False`` — and this module uncompiled — treats ``prange``
exactly as ``range``.  That is safe because trials are independent rows:
every write inside a trial iteration lands in that trial's row (or a
per-trial scratch allocated *inside* the loop, which numba privatizes),
and per-trial accumulation order is untouched, so the serial and
threaded kernels are bit-identical.  The one casualty is early exit:
violations are recorded per trial and reduced to the first offender
(ascending trial, then machine) in a serial post-scan, matching the
serial kernels' reporting.  Partial batch state after a violation
differs between serial and threaded runs (and already differs between
the numpy and loop-nest backends) — the driver raises and discards the
state, so only the reported ``(status, trial, machine)`` must agree.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only with numba installed
    from numba import prange
except ImportError:  # uncompiled fallback: prange degrades to range
    prange = range

name = "python"
#: This backend never threads inside the kernel (``prange`` is ``range``
#: uncompiled); ``kernel_threads > 1`` runs it through the trial-shard
#: layer in :mod:`repro.sim.batch` instead.
inkernel_threads = False

KIND_BLOCK = 0
KIND_PAUSE = 1
KIND_END = 2

# Violation codes returned by the step kernels (the driver raises the
# actual ScheduleViolationError so messages stay identical across
# backends).
OK = 0
BAD_RANGE = 1
BAD_PRECEDENCE = 2


def accrue(a, ell, remaining, eligible, busy, independent, check):
    """One step's mass accrual: assignments -> delivered mass per job.

    Returns ``(status, trial, machine, step_mass)``; on a non-zero status
    the step must be abandoned (the driver raises).  ``busy`` is updated
    in place.  Job ids are always range-checked (a compiled kernel must
    never index out of bounds); ``check`` additionally gates the
    precedence (eligibility) validation.

    Float note: for a job hit by several machines in one step, masses
    accumulate machine-ascending — the same order ``np.bincount`` sums
    the flattened ``(trial, machine)`` weights in the numpy backend, so
    the sums are bit-identical.
    """
    B, m = a.shape
    n = remaining.shape[1]
    step_mass = np.zeros((B, n), dtype=np.float64)
    viol = np.zeros(B, dtype=np.int64)
    viol_i = np.zeros(B, dtype=np.int64)
    for b in prange(B):
        used = 0
        bad = OK
        bad_i = -1
        for i in range(m):
            j = a[b, i]
            if j < -1 or j >= n:
                bad = BAD_RANGE
                bad_i = i
                break
            if j < 0 or not remaining[b, j]:
                continue
            if check and not independent and not eligible[b, j]:
                bad = BAD_PRECEDENCE
                bad_i = i
                break
            step_mass[b, j] += ell[i, j]
            used += 1
        if bad != OK:
            viol[b] = bad
            viol_i[b] = bad_i
        else:
            busy[b] += used
    for b in range(B):
        if viol[b] != OK:
            return viol[b], b, viol_i[b], step_mass
    return OK, -1, -1, step_mass


def commit(done_now, t_next, completion_times, remaining, eligible, indeg,
           succ_indptr, succ_indices, active, independent):
    """Fold one step's completions into the batch state (in place).

    Rows without completions are untouched: their ``eligible`` / ``active``
    entries already satisfy the invariants the numpy backend re-derives
    globally, so skipping them is value-identical and cheaper.
    """
    B, n = done_now.shape
    for b in prange(B):
        row_done = False
        for j in range(n):
            if done_now[b, j]:
                completion_times[b, j] = t_next
                remaining[b, j] = False
                row_done = True
                if not independent:
                    for k in range(succ_indptr[j], succ_indptr[j + 1]):
                        indeg[b, succ_indices[k]] -= 1
        if row_done:
            alive = False
            for j in range(n):
                r = remaining[b, j]
                eligible[b, j] = r and (independent or indeg[b, j] == 0)
                alive = alive or r
            active[b] = alive


def drive_step(a, ell, theta, u, mode, t_next, remaining, eligible, indeg,
               mass_accrued, completion_times, busy, active,
               succ_indptr, succ_indices, independent, check):
    """One fused engine step: accrual, completion test, and state commit.

    The ~15 whole-batch array passes of the numpy path collapse into one
    pass over the assignments plus one over the touched jobs per trial.
    ``mode`` selects the completion rule: 0 = SUU* thresholds (``theta``),
    1 = per-step uniforms (``u``, discipline v2).  Returns
    ``(status, trial, machine)`` with the :func:`accrue` codes.

    Float notes: the threshold test ``mass_accrued + s >= theta`` and the
    survival test ``u >= 2.0 ** -s`` use exactly the numpy backend's
    operand order, and per-job masses accumulate machine-ascending, so
    the completion booleans — hence the whole trajectory — match bit for
    bit (the test suite asserts this; see tests/test_kernels.py).
    """
    B, m = a.shape
    n = remaining.shape[1]
    viol = np.zeros(B, dtype=np.int64)
    viol_i = np.zeros(B, dtype=np.int64)
    for b in prange(B):
        # Scratch allocated per trial iteration so the parallel backend
        # privatizes it (a hoisted shared buffer would race under prange).
        sm = np.zeros(n, dtype=np.float64)
        touched = np.empty(m, dtype=np.int64)
        used = 0
        ntouch = 0
        bad = OK
        bad_i = -1
        for i in range(m):
            j = a[b, i]
            if j < -1 or j >= n:
                bad = BAD_RANGE
                bad_i = i
                break
            if j < 0 or not remaining[b, j]:
                continue
            if check and not independent and not eligible[b, j]:
                bad = BAD_PRECEDENCE
                bad_i = i
                break
            if sm[j] == 0.0:
                touched[ntouch] = j
                ntouch += 1
            sm[j] += ell[i, j]
            used += 1
        if bad != OK:
            viol[b] = bad
            viol_i[b] = bad_i
        else:
            busy[b] += used
            row_done = False
            for k in range(ntouch):
                j = touched[k]
                s = sm[j]
                # Zero-mass assignments (ell == 0) accrue nothing and can
                # never complete — and a duplicate ``touched`` entry (first
                # machine had zero mass) lands here too, adding +0.0.
                if s <= 0.0:
                    mass_accrued[b, j] += s
                    continue
                if mode == 0:
                    done = mass_accrued[b, j] + s >= theta[b, j]
                else:
                    done = u[b, j] >= 2.0 ** (-s)
                mass_accrued[b, j] += s
                if done:
                    completion_times[b, j] = t_next
                    remaining[b, j] = False
                    row_done = True
                    if not independent:
                        for p in range(succ_indptr[j], succ_indptr[j + 1]):
                            indeg[b, succ_indices[p]] -= 1
            if row_done:
                alive = False
                for j in range(n):
                    r = remaining[b, j]
                    eligible[b, j] = r and (independent or indeg[b, j] == 0)
                    alive = alive or r
                active[b] = alive
    for b in range(B):
        if viol[b] != OK:
            return viol[b], b, viol_i[b]
    return OK, -1, -1


def chain_finish(trials, pos, tau, dr, started, remaining,
                 kind, ilen, need, ijob, nit):
    """Advance chain cursors of trials whose superstep expansion drained.

    The fused form of ``ChainCursorBatch._finish_superstep``'s matrix
    transition: blocks count ``tau`` up (retrying while their job
    remains), pauses count ``delay_remaining`` down, and drained items
    advance ``pos`` and enter the next item.  ``pos`` / ``tau`` / ``dr``
    are gathered ``(F, C)`` copies updated in place (the caller scatters
    them back); ``remaining`` is the engine's full ``(B, n)`` matrix
    indexed through ``trials``.  Returns ``(into_pause, pause_jobs)`` for
    deferred segment registration.
    """
    F, C = pos.shape
    into_pause = np.zeros((F, C), dtype=np.bool_)
    pause_jobs = np.zeros((F, C), dtype=np.int64)
    for k in prange(F):
        b = trials[k]
        for c in range(C):
            p = pos[k, c]
            if not started[k, c] or p >= nit[c]:
                continue
            kd = kind[c, p]
            rem = remaining[b, ijob[c, p]]
            adv = False
            if kd == KIND_BLOCK:
                if tau[k, c] + 1 >= need[c, p]:
                    if rem:
                        tau[k, c] = 0  # retry the block
                    else:
                        adv = True
                else:
                    tau[k, c] += 1
            elif kd == KIND_PAUSE:
                if dr[k, c] > 0:
                    dr[k, c] -= 1
                if dr[k, c] == 0 and not rem:
                    adv = True
            if adv:
                p += 1
                pos[k, c] = p
                if p < nit[c]:
                    kd = kind[c, p]
                    if kd == KIND_PAUSE:
                        dr[k, c] = ilen[c, p]
                        into_pause[k, c] = True
                        pause_jobs[k, c] = ijob[c, p]
                    elif kd == KIND_BLOCK:
                        tau[k, c] = 0
    return into_pause, pause_jobs


def chain_build(trials, pos, tau, dr, std, delays, s, remaining,
                kind, ilen, need, ijob, nit, tmult):
    """Start due chains, recover expired pauses, and encode signatures.

    The fused form of ``ChainCursorBatch._build_superstep``'s matrix
    preamble: chains whose delay has elapsed start (entering their first
    item), pauses that expired while their job was still incomplete —
    resolved since by a segment run — advance past, and each live block
    encodes as ``pos * tmult + tau`` (dead/paused chains encode -1).
    ``pos`` / ``tau`` / ``dr`` / ``std`` are gathered ``(F, C)`` copies
    updated in place.  Returns the two deferred-pause registrations (one
    per entry wave, matching the numpy backend's order) and the
    signature-encoding matrix.
    """
    F, C = pos.shape
    pause1 = np.zeros((F, C), dtype=np.bool_)
    pause1_jobs = np.zeros((F, C), dtype=np.int64)
    pause2 = np.zeros((F, C), dtype=np.bool_)
    pause2_jobs = np.zeros((F, C), dtype=np.int64)
    enc = np.full((F, C), -1, dtype=np.int64)
    for k in prange(F):
        b = trials[k]
        for c in range(C):
            p = pos[k, c]
            if not std[k, c] and delays[k, c] <= s[k]:
                std[k, c] = True
                if p < nit[c]:
                    kd = kind[c, p]
                    if kd == KIND_PAUSE:
                        dr[k, c] = ilen[c, p]
                        pause1[k, c] = True
                        pause1_jobs[k, c] = ijob[c, p]
                    elif kd == KIND_BLOCK:
                        tau[k, c] = 0
            if not std[k, c]:
                continue
            p = pos[k, c]
            if (
                p < nit[c]
                and kind[c, p] == KIND_PAUSE
                and dr[k, c] == 0
                and not remaining[b, ijob[c, p]]
            ):
                p += 1
                pos[k, c] = p
                if p < nit[c]:
                    kd = kind[c, p]
                    if kd == KIND_PAUSE:
                        dr[k, c] = ilen[c, p]
                        pause2[k, c] = True
                        pause2_jobs[k, c] = ijob[c, p]
                    elif kd == KIND_BLOCK:
                        tau[k, c] = 0
            if p < nit[c] and kind[c, p] == KIND_BLOCK:
                enc[k, c] = p * tmult + tau[k, c]
    return pause1, pause1_jobs, pause2, pause2_jobs, enc


def expand_signature(enc, tmult, ijob, prelude_len,
                     pre_indptr, pre_machine, pre_count,
                     step_indptr, step_machine, step_count,
                     n_machines, idle):
    """Flatten one distinct superstep signature into shared assignment rows.

    The fused form of ``ChainCursorBatch._compile_signature``'s row
    construction, over the flat chain-program tables built at cursor
    construction (``(c, p)`` item slots flattened to ``c * P + p`` CSR
    spans of ``(machine, count)`` pairs, in the original tuple order).

    ``enc`` is one trial's ``(n_chains,)`` signature row: ``pos * tmult +
    tau`` per live block, -1 otherwise.  Entering blocks (``tau == 0``)
    contribute their prelude solo rows first, in chain order — the scalar
    policy's solo-queue emission order — followed by the congestion rows
    (machine ``i``'s ``r``-th queued job at row ``r``, ``idle``
    elsewhere).  Returns ``(rows, n_prelude, congestion)`` with ``rows``
    an ``(n_prelude + congestion, n_machines)`` int64 matrix.  Called
    once per *distinct* signature (the caller memoizes), so this is
    compiled serially — no ``prange``.
    """
    C = enc.shape[0]
    P = ijob.shape[1]
    per_machine = np.empty((n_machines, C), dtype=np.int64)
    pm_count = np.zeros(n_machines, dtype=np.int64)
    n_prelude = 0
    for c in range(C):
        e = enc[c]
        if e < 0:
            continue
        p = e // tmult
        tu = e - p * tmult
        if tu == 0:
            n_prelude += prelude_len[c, p]
        cp = c * P + p
        job = ijob[c, p]
        for k in range(step_indptr[cp], step_indptr[cp + 1]):
            if step_count[k] > tu:
                i = step_machine[k]
                per_machine[i, pm_count[i]] = job
                pm_count[i] += 1
    congestion = 0
    for i in range(n_machines):
        if pm_count[i] > congestion:
            congestion = pm_count[i]
    rows = np.full((n_prelude + congestion, n_machines), idle, dtype=np.int64)
    r0 = 0
    for c in range(C):
        e = enc[c]
        if e < 0:
            continue
        p = e // tmult
        tu = e - p * tmult
        if tu == 0 and prelude_len[c, p] > 0:
            cp = c * P + p
            job = ijob[c, p]
            for k in range(pre_indptr[cp], pre_indptr[cp + 1]):
                i = pre_machine[k]
                for r in range(pre_count[k]):
                    rows[r0 + r, i] = job
            r0 += prelude_len[c, p]
    for i in range(n_machines):
        for r in range(pm_count[i]):
            rows[n_prelude + r, i] = per_machine[i, r]
    return rows, n_prelude, congestion
