"""Pluggable hot-loop kernel backends (the ``REPRO_KERNEL`` axis).

The batch engine's per-step inner body (:mod:`repro.sim.batch`) and the
chain cursors' whole-batch boundary transitions
(:mod:`repro.core.chain_batch`) are expressed as calls into a *backend*
— a module exposing five functions with identical signatures:

=============== ====================================================
``accrue``      one step's mass accrual + assignment validation
``commit``      completion commit / in-degree + eligibility refresh
``drive_step``  the fused step: accrue + completion test + commit
``chain_finish`` chain-cursor advance at a drained superstep
``chain_build``  chain start / pause recovery / signature encoding
=============== ====================================================

Three backends are registered:

``"numpy"`` (default)
    The whole-batch array formulation — the reference implementation.
``"numba"`` (opt-in)
    ``@njit(cache=True)``-compiled fused loops over the same state;
    bit-identical outputs, another integer factor at 10k+ trials.
    Degrades gracefully: when numba is not importable the numpy backend
    is substituted and a warning is logged **once** per process.
``"python"``
    The numba backend's loop nests run *uncompiled* — slow, but it lets
    the fused logic be bit-identity-tested without numba installed.

Resolution follows the discipline axis exactly: explicit argument
(``SimConfig.kernel`` / ``run_policy_batch(kernel=...)``) → the
``REPRO_KERNEL`` environment variable → ``"numpy"``.

Because :class:`~repro.core.chain_batch.ChainCursorBatch` is constructed
inside policies (not by the engine), the resolved backend is also scoped
dynamically: :func:`kernel_context` installs it for the duration of a
batch run and :func:`active_backend` reads it — the same pattern as
``repro.core.phased.lp_reuse_context``.
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager

import numpy as np

__all__ = [
    "KERNELS",
    "KERNEL_ENV_VAR",
    "active_backend",
    "active_kernel",
    "get_backend",
    "kernel_context",
    "kernel_info",
    "numba_available",
    "resolve_kernel",
    "warmup",
]

#: Registered backend names; ``KERNELS[0]`` is the default.
KERNELS = ("numpy", "numba", "python")

#: Environment variable consulted when no explicit kernel is passed.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_logger = logging.getLogger(__name__)

_loaded: dict = {}
_numba_fallback_logged = False
_warmup_seconds: dict[str, float] = {}

#: Backend installed by :func:`kernel_context` (None -> resolve lazily).
_ACTIVE = None


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve the kernel backend name.

    Explicit ``kernel`` argument → ``REPRO_KERNEL`` environment variable →
    ``"numpy"``.  Raises ``ValueError`` on unknown names (including via
    the environment variable, so typos fail loudly).
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or KERNELS[0]
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel backend {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def numba_available() -> bool:
    """True when the numba backend can actually compile (import works)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def get_backend(kernel: str | None = None):
    """The backend module for ``kernel`` (resolved via :func:`resolve_kernel`).

    Requesting ``"numba"`` without numba installed logs a warning once per
    process and returns the numpy backend — callers never error on a
    missing optional dependency (graceful degradation; the active name is
    surfaced through :func:`kernel_info` / ``/healthz``).
    """
    global _numba_fallback_logged
    kernel = resolve_kernel(kernel)
    backend = _loaded.get(kernel)
    if backend is not None:
        return backend
    if kernel == "numpy":
        from repro.kernels import numpy_backend as backend
    elif kernel == "python":
        from repro.kernels import _stepimpl as backend
    else:  # "numba"
        try:
            from repro.kernels import numba_backend as backend
        except ImportError as exc:
            if not _numba_fallback_logged:
                _logger.warning(
                    "kernel backend 'numba' unavailable (%s); "
                    "falling back to 'numpy'",
                    exc,
                )
                _numba_fallback_logged = True
            backend = get_backend("numpy")
    _loaded[kernel] = backend
    return backend


def active_backend():
    """The backend scoped by the innermost :func:`kernel_context`.

    Outside any context this resolves the environment default — safe for
    code (scalar engines, tests) that runs without a batch driver.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    return get_backend(None)


def active_kernel() -> str:
    """Name of the currently active backend (after any fallback)."""
    return active_backend().name


@contextmanager
def kernel_context(kernel: str | None = None):
    """Scope the resolved kernel backend over a ``with`` block.

    Mirrors ``lp_reuse_context``: :func:`run_policy_batch` installs the
    run's backend here so components constructed *inside* the run (chain
    cursors built by policy start hooks) pick it up via
    :func:`active_backend` without signature changes.  Yields the backend
    module.  Nested contexts restore the outer backend on exit.
    """
    global _ACTIVE
    backend = get_backend(kernel)
    prev = _ACTIVE
    _ACTIVE = backend
    try:
        yield backend
    finally:
        _ACTIVE = prev


def warmup(kernel: str | None = None) -> float:
    """Pre-compile (and time) every kernel of the resolved backend.

    Drives tiny synthetic batches through all five backend functions,
    covering both completion modes and both the precedence-free and
    DAG code paths, so a numba backend JIT-compiles every specialization
    it will see at runtime.  Returns the wall-clock seconds spent; the
    first measurement per backend is recorded for :func:`kernel_info`.
    Idempotent: repeat calls re-run the (now cheap) warm path but keep
    the recorded compile time.

    Worker pools call this from their initializer so warm-pool workers
    compile once and serve every subsequent request from the JIT cache.
    """
    backend = get_backend(kernel)
    start = time.perf_counter()
    B, n, m = 2, 3, 2
    ell = np.full((m, n), 0.5, dtype=np.float64)
    ell.setflags(write=False)  # instance.ell is read-only at runtime
    indptr = np.array([0, 1, 1, 1], dtype=np.int64)
    indices = np.array([1], dtype=np.int64)
    indptr.setflags(write=False)
    indices.setflags(write=False)
    for independent in (True, False):
        for mode in (0, 1):
            a = np.array([[0, -1], [2, 0]], dtype=np.int64)
            remaining = np.ones((B, n), dtype=bool)
            indeg = np.zeros((B, n), dtype=np.int64)
            if not independent:
                indeg[:, 1] = 1
            eligible = remaining & (indeg == 0)
            mass = np.zeros((B, n), dtype=np.float64)
            ct = np.zeros((B, n), dtype=np.int64)
            busy = np.zeros(B, dtype=np.int64)
            active = np.ones(B, dtype=bool)
            theta = np.full((B, n), 0.25, dtype=np.float64)
            u = np.full((B, n), 0.99, dtype=np.float64)
            backend.drive_step(
                a, ell, theta, u, mode, 1, remaining, eligible, indeg,
                mass, ct, busy, active, indptr, indices, independent, True,
            )
            status, b, i, step_mass = backend.accrue(
                a, ell, remaining, eligible, busy, independent, True
            )
            backend.commit(
                step_mass > 0.0, 2, ct, remaining, eligible, indeg,
                indptr, indices, active, independent,
            )
    F, C, P = 2, 2, 2
    pos = np.zeros((F, C), dtype=np.int64)
    tau = np.zeros((F, C), dtype=np.int64)
    dr = np.zeros((F, C), dtype=np.int64)
    started = np.ones((F, C), dtype=bool)
    std = np.zeros((F, C), dtype=bool)
    trials = np.arange(F, dtype=np.int64)
    rem = np.ones((F, n), dtype=bool)
    rem.setflags(write=False)
    kind = np.zeros((C, P), dtype=np.int8)
    kind[:, 1] = 1  # a pause after each block
    ilen = np.ones((C, P), dtype=np.int64)
    need = np.ones((C, P), dtype=np.int64)
    ijob = np.zeros((C, P), dtype=np.int64)
    nit = np.full(C, P, dtype=np.int64)
    delays = np.zeros((F, C), dtype=np.int64)
    s = np.zeros(F, dtype=np.int64)
    backend.chain_build(
        trials, pos, tau, dr, std, delays, s, rem,
        kind, ilen, need, ijob, nit, P + 1,
    )
    backend.chain_finish(
        trials, pos, tau, dr, started, rem, kind, ilen, need, ijob, nit
    )
    elapsed = time.perf_counter() - start
    _warmup_seconds.setdefault(backend.name, elapsed)
    return elapsed


def kernel_info(kernel: str | None = None) -> dict:
    """Reportable description of the resolved backend.

    Keys: ``requested`` (post-resolution name), ``active`` (after any
    numba→numpy fallback), ``numba_available``, and ``warmup_seconds``
    (first measured :func:`warmup` duration in this process, or None if
    the backend was never warmed here — e.g. compilation happened in
    worker processes).  Surfaced in ``simulate()`` reports and
    ``GET /healthz``.
    """
    requested = resolve_kernel(kernel)
    backend = get_backend(requested)
    return {
        "requested": requested,
        "active": backend.name,
        "numba_available": numba_available(),
        "warmup_seconds": _warmup_seconds.get(backend.name),
    }
