"""Pluggable hot-loop kernel backends (the ``REPRO_KERNEL`` axis).

The batch engine's per-step inner body (:mod:`repro.sim.batch`) and the
chain cursors' whole-batch boundary transitions
(:mod:`repro.core.chain_batch`) are expressed as calls into a *backend*
— a module exposing six functions with identical signatures:

==================== ====================================================
``accrue``           one step's mass accrual + assignment validation
``commit``           completion commit / in-degree + eligibility refresh
``drive_step``       the fused step: accrue + completion test + commit
``chain_finish``     chain-cursor advance at a drained superstep
``chain_build``      chain start / pause recovery / signature encoding
``expand_signature`` superstep signature -> shared assignment rows
==================== ====================================================

Three backends are registered:

``"numpy"`` (default)
    The whole-batch array formulation — the reference implementation.
``"numba"`` (opt-in)
    ``@njit(cache=True)``-compiled fused loops over the same state;
    bit-identical outputs, another integer factor at 10k+ trials.
    Degrades gracefully: when numba is not importable the numpy backend
    is substituted and a warning is logged **once** per process.
``"python"``
    The numba backend's loop nests run *uncompiled* — slow, but it lets
    the fused logic be bit-identity-tested without numba installed.

**Threads** (the ``REPRO_KERNEL_THREADS`` axis) compose with the
backend: for the numba backend, ``threads > 1`` selects a
``parallel=True`` compile whose ``prange``-over-trials loops run the
batch on multiple cores *inside* the kernel (``inkernel_threads`` is
True on that flavor); for the numpy and python backends — and for a
numba request that fell back — the kernel stays serial and
:mod:`repro.sim.batch` shards trials across a thread pool instead.
Both routes are bit-identical to ``threads == 1`` (trials are
independent rows; v2's Philox streams are addressed by global trial
index).

Resolution follows the discipline axis exactly: explicit argument
(``SimConfig.kernel`` / ``run_policy_batch(kernel=...)``) → the
``REPRO_KERNEL`` environment variable → ``"numpy"``; likewise
``kernel_threads`` → ``REPRO_KERNEL_THREADS`` → 1.

Because :class:`~repro.core.chain_batch.ChainCursorBatch` is constructed
inside policies (not by the engine), the resolved backend is also scoped
dynamically: :func:`kernel_context` installs it for the duration of a
batch run and :func:`active_backend` reads it — the same pattern as
``repro.core.phased.lp_reuse_context``, but *thread-local* so trial
shards running concurrent batches never see each other's backend.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager

import numpy as np

__all__ = [
    "KERNELS",
    "KERNEL_ENV_VAR",
    "KERNEL_THREADS_ENV_VAR",
    "active_backend",
    "active_kernel",
    "get_backend",
    "kernel_context",
    "kernel_info",
    "numba_available",
    "resolve_kernel",
    "resolve_kernel_threads",
    "silence_numba_fallback",
    "warmup",
]

#: Registered backend names; ``KERNELS[0]`` is the default.
KERNELS = ("numpy", "numba", "python")

#: Environment variable consulted when no explicit kernel is passed.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Environment variable consulted when no explicit thread count is passed.
KERNEL_THREADS_ENV_VAR = "REPRO_KERNEL_THREADS"

_logger = logging.getLogger(__name__)

_loaded: dict = {}
_numba_fallback_logged = False
_warmup_seconds: dict[tuple[str, int], float] = {}

#: Backend installed by :func:`kernel_context` — thread-local, so shard
#: worker threads (and nested contexts within one thread) are isolated.
_tls = threading.local()


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve the kernel backend name.

    Explicit ``kernel`` argument → ``REPRO_KERNEL`` environment variable →
    ``"numpy"``.  Raises ``ValueError`` on unknown names (including via
    the environment variable, so typos fail loudly).  Delegates to
    :func:`repro.api.config.resolve_kernel` — the single config-resolution
    chain shared by every knob.
    """
    # Deferred: repro.api.config is the one env-reading module and lives
    # above this layer (importing it pulls the whole api package).
    from repro.api.config import resolve_kernel as _resolve

    return _resolve(kernel)


def resolve_kernel_threads(threads: int | None = None) -> int:
    """Resolve the kernel thread count.

    Explicit ``threads`` argument → ``REPRO_KERNEL_THREADS`` environment
    variable → 1.  Raises ``ValueError`` on non-integer or < 1 values
    (including via the environment variable, so typos fail loudly).
    Delegates to :func:`repro.api.config.resolve_kernel_threads`.
    """
    from repro.api.config import resolve_kernel_threads as _resolve

    return _resolve(threads)


def numba_available() -> bool:
    """True when the numba backend can actually compile (import works)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def silence_numba_fallback() -> None:
    """Mark the numba→numpy fallback warning as already delivered.

    Worker initializers call this when the *parent* process has already
    logged the warning at pool construction — without it, a warm pool of
    N workers would re-warn N times (once per process).
    """
    global _numba_fallback_logged
    _numba_fallback_logged = True


def get_backend(kernel: str | None = None, threads: int | None = None):
    """The backend for ``kernel`` at ``threads`` (both resolved here).

    Requesting ``"numba"`` without numba installed logs a warning once per
    process and returns the numpy backend — callers never error on a
    missing optional dependency (graceful degradation; the active name is
    surfaced through :func:`kernel_info` / ``/healthz``).  Only the numba
    backend has a distinct threaded flavor (``parallel=True`` compiles);
    for every other backend ``threads`` selects the *same* serial module
    and the trial-shard layer in :mod:`repro.sim.batch` supplies the
    parallelism.
    """
    global _numba_fallback_logged
    kernel = resolve_kernel(kernel)
    threads = resolve_kernel_threads(threads)
    if kernel != "numba":
        threads = 1  # serial modules are shared across thread counts
    key = (kernel, threads)
    backend = _loaded.get(key)
    if backend is not None:
        return backend
    if kernel == "numpy":
        from repro.kernels import numpy_backend as backend
    elif kernel == "python":
        from repro.kernels import _stepimpl as backend
    else:  # "numba"
        try:
            from repro.kernels import numba_backend
        except ImportError as exc:
            if not _numba_fallback_logged:
                _logger.warning(
                    "kernel backend 'numba' unavailable (%s); "
                    "falling back to 'numpy'",
                    exc,
                )
                _numba_fallback_logged = True
            backend = get_backend("numpy")
        else:
            if threads > 1:
                backend = numba_backend.threaded_backend(threads)
            else:
                backend = numba_backend
    _loaded[key] = backend
    return backend


def active_backend():
    """The backend scoped by this thread's innermost :func:`kernel_context`.

    Outside any context this resolves the environment default — safe for
    code (scalar engines, tests) that runs without a batch driver.
    """
    active = getattr(_tls, "active", None)
    if active is not None:
        return active
    return get_backend(None)


def active_kernel() -> str:
    """Name of the currently active backend (after any fallback)."""
    return active_backend().name


@contextmanager
def kernel_context(kernel: str | None = None, threads: int | None = None):
    """Scope the resolved kernel backend over a ``with`` block.

    Mirrors ``lp_reuse_context``: :func:`run_policy_batch` installs the
    run's backend here so components constructed *inside* the run (chain
    cursors built by policy start hooks) pick it up via
    :func:`active_backend` without signature changes.  Yields the backend.
    Nested contexts restore the outer backend on exit; the scope is
    thread-local, so concurrent trial shards are isolated.
    """
    backend = get_backend(kernel, threads)
    prev = getattr(_tls, "active", None)
    _tls.active = backend
    try:
        yield backend
    finally:
        _tls.active = prev


def warmup(kernel: str | None = None, threads: int | None = None) -> float:
    """Pre-compile (and time) every kernel of the resolved backend.

    Drives tiny synthetic batches through all six backend functions,
    covering both completion modes and both the precedence-free and
    DAG code paths, so a numba backend JIT-compiles every specialization
    it will see at runtime (``threads > 1`` warms the ``parallel=True``
    flavor).  Returns the wall-clock seconds spent; the first measurement
    per (backend, threads) is recorded for :func:`kernel_info`.
    Idempotent: repeat calls re-run the (now cheap) warm path but keep
    the recorded compile time.

    Worker pools call this from their initializer so warm-pool workers
    compile once and serve every subsequent request from the JIT cache.
    """
    backend = get_backend(kernel, threads)
    start = time.perf_counter()
    B, n, m = 2, 3, 2
    ell = np.full((m, n), 0.5, dtype=np.float64)
    ell.setflags(write=False)  # instance.ell is read-only at runtime
    indptr = np.array([0, 1, 1, 1], dtype=np.int64)
    indices = np.array([1], dtype=np.int64)
    indptr.setflags(write=False)
    indices.setflags(write=False)
    for independent in (True, False):
        for mode in (0, 1):
            a = np.array([[0, -1], [2, 0]], dtype=np.int64)
            remaining = np.ones((B, n), dtype=bool)
            indeg = np.zeros((B, n), dtype=np.int64)
            if not independent:
                indeg[:, 1] = 1
            eligible = remaining & (indeg == 0)
            mass = np.zeros((B, n), dtype=np.float64)
            ct = np.zeros((B, n), dtype=np.int64)
            busy = np.zeros(B, dtype=np.int64)
            active = np.ones(B, dtype=bool)
            theta = np.full((B, n), 0.25, dtype=np.float64)
            u = np.full((B, n), 0.99, dtype=np.float64)
            backend.drive_step(
                a, ell, theta, u, mode, 1, remaining, eligible, indeg,
                mass, ct, busy, active, indptr, indices, independent, True,
            )
            status, b, i, step_mass = backend.accrue(
                a, ell, remaining, eligible, busy, independent, True
            )
            backend.commit(
                step_mass > 0.0, 2, ct, remaining, eligible, indeg,
                indptr, indices, active, independent,
            )
    F, C, P = 2, 2, 2
    pos = np.zeros((F, C), dtype=np.int64)
    tau = np.zeros((F, C), dtype=np.int64)
    dr = np.zeros((F, C), dtype=np.int64)
    started = np.ones((F, C), dtype=bool)
    std = np.zeros((F, C), dtype=bool)
    trials = np.arange(F, dtype=np.int64)
    rem = np.ones((F, n), dtype=bool)
    rem.setflags(write=False)
    kind = np.zeros((C, P), dtype=np.int8)
    kind[:, 1] = 1  # a pause after each block
    ilen = np.ones((C, P), dtype=np.int64)
    need = np.ones((C, P), dtype=np.int64)
    ijob = np.zeros((C, P), dtype=np.int64)
    nit = np.full(C, P, dtype=np.int64)
    delays = np.zeros((F, C), dtype=np.int64)
    s = np.zeros(F, dtype=np.int64)
    backend.chain_build(
        trials, pos, tau, dr, std, delays, s, rem,
        kind, ilen, need, ijob, nit, P + 1,
    )
    backend.chain_finish(
        trials, pos, tau, dr, started, rem, kind, ilen, need, ijob, nit
    )
    # The superstep expansion: one two-chain signature with a prelude on
    # the entering block (CSR tables flattened as c * P + p).
    enc = np.array([0, 0], dtype=np.int64)  # both chains at (pos 0, tau 0)
    prelude_len = np.zeros((C, P), dtype=np.int64)
    prelude_len[0, 0] = 1
    pre_indptr = np.zeros(C * P + 1, dtype=np.int64)
    pre_indptr[1:] = 1  # chain 0 item 0 has the single prelude pair
    pre_machine = np.zeros(1, dtype=np.int64)
    pre_count = np.ones(1, dtype=np.int64)
    step_indptr = np.arange(C * P + 1, dtype=np.int64)
    step_machine = np.array([0, 1, 0, 1], dtype=np.int64)
    step_count = np.ones(C * P, dtype=np.int64)
    backend.expand_signature(
        enc, P + 1, ijob, prelude_len, pre_indptr, pre_machine, pre_count,
        step_indptr, step_machine, step_count, m, -1,
    )
    elapsed = time.perf_counter() - start
    _warmup_seconds.setdefault(
        (backend.name, getattr(backend, "threads", 1)), elapsed
    )
    return elapsed


def kernel_info(kernel: str | None = None, threads: int | None = None) -> dict:
    """Reportable description of the resolved backend.

    Keys: ``requested`` (post-resolution name), ``active`` (after any
    numba→numpy fallback), ``numba_available``, ``threads`` (resolved
    count), ``inkernel_threads`` (True when the active backend threads
    *inside* the kernel via ``prange``; False means ``threads > 1`` runs
    through the trial-shard layer), and ``warmup_seconds`` (first
    measured :func:`warmup` duration in this process, or None if the
    backend was never warmed here — e.g. compilation happened in worker
    processes).  Surfaced in ``simulate()`` reports and ``GET /healthz``.
    """
    requested = resolve_kernel(kernel)
    resolved_threads = resolve_kernel_threads(threads)
    backend = get_backend(requested, resolved_threads)
    return {
        "requested": requested,
        "active": backend.name,
        "numba_available": numba_available(),
        "threads": resolved_threads,
        "inkernel_threads": bool(getattr(backend, "inkernel_threads", False)),
        "warmup_seconds": _warmup_seconds.get(
            (backend.name, getattr(backend, "threads", 1))
        ),
    }
