"""The numba-compiled kernel backend (``REPRO_KERNEL=numba``).

Wraps every fused loop-nest in :mod:`repro.kernels._stepimpl` with
``numba.njit(cache=True)``: the first call per signature compiles (and
populates the on-disk cache next to ``_stepimpl.py``), later calls — and
later *processes*, e.g. warm-pool workers — reuse the cached machine
code.  Importing this module raises ``ImportError`` when numba is not
installed; :func:`repro.kernels.get_backend` catches that and falls back
to the numpy backend with a single logged warning.

Two compiled flavors share the one ``_stepimpl`` source:

* the module-level functions here (``parallel=False``) — ``prange``
  degrades to ``range``, giving the serial PR-8 behavior; and
* :func:`threaded_backend` (``kernel_threads > 1``) — a
  ``parallel=True`` compile of the same functions, running the
  ``prange``-over-trials loops on a clamped numba thread pool.  Trials
  write disjoint rows and per-trial accumulation order is unchanged, so
  both flavors are bit-identical to each other and to numpy.
"""

from __future__ import annotations

import numba

from repro.kernels import _stepimpl

name = "numba"
#: The serial module itself; the threaded flavor comes from
#: :func:`threaded_backend`.
inkernel_threads = False

# fastmath stays off: the backend contract is bit-identical float
# behavior with the numpy path (strict IEEE ordering of every sum and
# comparison), which fastmath's reassociation would break.
_jit = numba.njit(cache=True, fastmath=False)

accrue = _jit(_stepimpl.accrue)
commit = _jit(_stepimpl.commit)
drive_step = _jit(_stepimpl.drive_step)
chain_finish = _jit(_stepimpl.chain_finish)
chain_build = _jit(_stepimpl.chain_build)
# Called once per *distinct* memoized signature — compiled serially in
# both flavors (there is nothing to prange over).
expand_signature = _jit(_stepimpl.expand_signature)

_pjit = numba.njit(cache=True, fastmath=False, parallel=True)

#: parallel=True compiles lazily (threaded_backend) so serial users
#: never pay for them.
_parallel_fns: dict | None = None


def _parallel_functions() -> dict:
    global _parallel_fns
    if _parallel_fns is None:
        _parallel_fns = {
            "accrue": _pjit(_stepimpl.accrue),
            "commit": _pjit(_stepimpl.commit),
            "drive_step": _pjit(_stepimpl.drive_step),
            "chain_finish": _pjit(_stepimpl.chain_finish),
            "chain_build": _pjit(_stepimpl.chain_build),
        }
    return _parallel_fns


def _pin_threads(fn, n: int):
    """Bind ``fn`` to run on ``n`` numba threads.

    ``numba.set_num_threads`` is process-global and cheap; setting it at
    every call keeps concurrent backends with different thread counts
    from clobbering each other mid-run (last setter wins per call).
    """

    def call(*args):
        numba.set_num_threads(n)
        return fn(*args)

    call.__name__ = getattr(fn, "__name__", "kernel")
    return call


class _ThreadedNumbaBackend:
    """The ``parallel=True`` flavor: ``prange`` over trials on ``threads``
    cores (clamped to numba's process launch-time maximum)."""

    name = "numba"
    inkernel_threads = True

    def __init__(self, threads: int):
        self.threads = min(int(threads), numba.config.NUMBA_NUM_THREADS)
        fns = _parallel_functions()
        for fname, fn in fns.items():
            setattr(self, fname, _pin_threads(fn, self.threads))
        self.expand_signature = expand_signature


def threaded_backend(threads: int) -> _ThreadedNumbaBackend:
    """The threaded backend object for ``kernel_threads == threads``."""
    return _ThreadedNumbaBackend(threads)
