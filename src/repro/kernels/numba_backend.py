"""The numba-compiled kernel backend (``REPRO_KERNEL=numba``).

Wraps every fused loop-nest in :mod:`repro.kernels._stepimpl` with
``numba.njit(cache=True)``: the first call per signature compiles (and
populates the on-disk cache next to ``_stepimpl.py``), later calls — and
later *processes*, e.g. warm-pool workers — reuse the cached machine
code.  Importing this module raises ``ImportError`` when numba is not
installed; :func:`repro.kernels.get_backend` catches that and falls back
to the numpy backend with a single logged warning.
"""

from __future__ import annotations

import numba

from repro.kernels import _stepimpl

name = "numba"

# fastmath stays off: the backend contract is bit-identical float
# behavior with the numpy path (strict IEEE ordering of every sum and
# comparison), which fastmath's reassociation would break.
_jit = numba.njit(cache=True, fastmath=False)

accrue = _jit(_stepimpl.accrue)
commit = _jit(_stepimpl.commit)
drive_step = _jit(_stepimpl.drive_step)
chain_finish = _jit(_stepimpl.chain_finish)
chain_build = _jit(_stepimpl.chain_build)
