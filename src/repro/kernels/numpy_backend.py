"""The default (pure-numpy) kernel backend.

These are the whole-batch array formulations lifted verbatim out of
``repro.sim.batch._drive_batch`` and ``repro.core.chain_batch`` — the
reference implementations every other backend must match bit for bit.
See :mod:`repro.kernels._stepimpl` for the shared fused-loop source the
``"numba"`` and ``"python"`` backends run, and :mod:`repro.kernels` for
the registry/resolution machinery.
"""

from __future__ import annotations

import numpy as np

from repro.kernels._stepimpl import (
    BAD_PRECEDENCE,
    BAD_RANGE,
    KIND_BLOCK,
    KIND_PAUSE,
    OK,
)

name = "numpy"
#: The array formulation never threads inside the kernel;
#: ``kernel_threads > 1`` shards trials in :mod:`repro.sim.batch` instead.
inkernel_threads = False


def accrue(a, ell, remaining, eligible, busy, independent, check):
    """One step's mass accrual (see :func:`._stepimpl.accrue`).

    ``remaining`` / ``eligible`` must be C-contiguous (their ``.ravel()``
    views share memory), which the batch driver guarantees.
    """
    B, m = a.shape
    n = remaining.shape[1]
    if check and ((a >= n).any() or (a < -1).any()):
        bad = (a >= n) | (a < -1)
        b, i = np.argwhere(bad)[0]
        return BAD_RANGE, int(b), int(i), np.zeros((B, n), dtype=np.float64)
    assigned = a >= 0
    clipped = np.maximum(a, 0)  # IDLE -> job 0 with zero weight below
    flat_base = (np.arange(B, dtype=np.int64) * n)[:, None]
    flat_all = flat_base + clipped  # (B, m) indices into (B*n,) planes
    # As in the scalar engine: assignments to completed jobs idle
    # silently, assignments to remaining-but-ineligible jobs are
    # precedence violations.  Inactive trials have remaining all-False,
    # so they can never trip the check.
    effective = assigned & remaining.ravel()[flat_all]
    if check and not independent:
        bad = effective & ~eligible.ravel()[flat_all]
        if bad.any():
            b, i = np.argwhere(bad)[0]
            return BAD_PRECEDENCE, int(b), int(i), np.zeros((B, n), dtype=np.float64)
    machine_base = (np.arange(m, dtype=np.int64) * n)[None, :]
    weights = ell.ravel()[machine_base + clipped] * effective
    step_mass = np.bincount(
        flat_all.ravel(), weights=weights.ravel(), minlength=B * n
    ).reshape(B, n)
    busy += effective.sum(axis=1)
    return OK, -1, -1, step_mass


def commit(done_now, t_next, completion_times, remaining, eligible, indeg,
           succ_indptr, succ_indices, active, independent):
    """Fold one step's completions into the batch state (in place)."""
    if not done_now.any():
        return
    completion_times[done_now] = t_next
    remaining &= ~done_now
    if independent:
        np.copyto(eligible, remaining)
    else:
        done_trials, done_jobs = np.nonzero(done_now)
        origins, successors = _successors_flat(succ_indptr, succ_indices, done_jobs)
        if successors.size:
            np.subtract.at(indeg, (done_trials[origins], successors), 1)
        np.logical_and(remaining, indeg == 0, out=eligible)
    np.any(remaining, axis=1, out=active)


def drive_step(a, ell, theta, u, mode, t_next, remaining, eligible, indeg,
               mass_accrued, completion_times, busy, active,
               succ_indptr, succ_indices, independent, check):
    """One engine step (see :func:`._stepimpl.drive_step`): accrue,
    threshold, commit — here as the original whole-batch array passes."""
    status, b, i, step_mass = accrue(
        a, ell, remaining, eligible, busy, independent, check
    )
    if status != OK:
        return status, b, i
    if mode == 0:
        done_now = (step_mass > 0.0) & (mass_accrued + step_mass >= theta)
    else:
        # v2 suu: jobs survive a step of delivered mass L with probability
        # 2^-L, tested against the whole-batch uniform matrix.
        done_now = (step_mass > 0.0) & (u >= np.power(2.0, -step_mass))
    mass_accrued += step_mass
    commit(
        done_now, t_next, completion_times, remaining, eligible, indeg,
        succ_indptr, succ_indices, active, independent,
    )
    return OK, -1, -1


def _successors_flat(indptr, indices, jobs):
    """CSR successor gather — `PrecedenceGraph.successors_flat` on raw arrays."""
    counts = indptr[jobs + 1] - indptr[jobs]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    origins = np.repeat(np.arange(jobs.size, dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return origins, indices[indptr[jobs][origins] + within]


def chain_finish(trials, pos, tau, dr, started, remaining,
                 kind, ilen, need, ijob, nit):
    """Whole-batch chain-cursor transition at a drained superstep (the
    matrix body of ``ChainCursorBatch._finish_superstep``)."""
    C = pos.shape[1]
    c_idx = np.arange(C, dtype=np.int64)
    live = started & (pos < nit)
    cp = np.minimum(pos, nit - 1)
    kd = kind[c_idx, cp]
    rem = remaining[trials[:, None], ijob[c_idx, cp]]
    isblk = live & (kd == KIND_BLOCK)
    ispse = live & (kd == KIND_PAUSE)
    done_blk = isblk & (tau + 1 >= need[c_idx, cp])
    np.copyto(tau, np.where(isblk & ~done_blk, tau + 1, tau))
    np.copyto(tau, np.where(done_blk & rem, 0, tau))  # retry the block
    np.copyto(dr, np.where(ispse & (dr > 0), dr - 1, dr))
    adv = (done_blk & ~rem) | (ispse & (dr == 0) & ~rem)
    np.copyto(pos, np.where(adv, pos + 1, pos))
    into_pause, pause_jobs = _enter_items(adv, pos, tau, dr, kind, ilen, ijob, nit)
    return into_pause, pause_jobs


def chain_build(trials, pos, tau, dr, std, delays, s, remaining,
                kind, ilen, need, ijob, nit, tmult):
    """Whole-batch chain start/recovery/signature encoding (the matrix
    preamble of ``ChainCursorBatch._build_superstep``)."""
    C = pos.shape[1]
    c_idx = np.arange(C, dtype=np.int64)
    start_now = ~std & (delays <= s[:, None])
    std |= start_now
    pause1, pause1_jobs = _enter_items(
        start_now, pos, tau, dr, kind, ilen, ijob, nit
    )
    live = std & (pos < nit)
    cp = np.minimum(pos, nit - 1)
    kd = kind[c_idx, cp]
    rem = remaining[trials[:, None], ijob[c_idx, cp]]
    # Pauses that expired while their job was still incomplete — resolved
    # since by a segment run — advance past the pause now.
    recovered = live & (kd == KIND_PAUSE) & (dr == 0) & ~rem
    np.copyto(pos, np.where(recovered, pos + 1, pos))
    pause2, pause2_jobs = _enter_items(
        recovered, pos, tau, dr, kind, ilen, ijob, nit
    )
    live = std & (pos < nit)
    cp = np.minimum(pos, nit - 1)
    isblk = live & (kind[c_idx, cp] == KIND_BLOCK)
    enc = np.where(isblk, cp * tmult + tau, -1)
    return pause1, pause1_jobs, pause2, pause2_jobs, enc


def expand_signature(enc, tmult, ijob, prelude_len,
                     pre_indptr, pre_machine, pre_count,
                     step_indptr, step_machine, step_count,
                     n_machines, idle):
    """Flatten one distinct superstep signature into shared rows (the
    reference construction; see :func:`._stepimpl.expand_signature`).

    List-based like the original ``ChainCursorBatch._compile_signature``
    body, over the flat CSR tables every backend shares: prelude solo
    rows for entering blocks first (chain order), then congestion rows.
    Memoized by the caller, so this runs once per distinct signature.
    """
    C = enc.shape[0]
    P = ijob.shape[1]
    per_machine: list[list[int]] = [[] for _ in range(n_machines)]
    prelude: list[np.ndarray] = []
    for c in range(C):
        e = int(enc[c])
        if e < 0:
            continue
        p, tu = divmod(e, int(tmult))
        cp = c * P + p
        job = int(ijob[c, p])
        if tu == 0 and prelude_len[c, p] > 0:
            for r in range(int(prelude_len[c, p])):
                row = np.full(n_machines, idle, dtype=np.int64)
                for k in range(int(pre_indptr[cp]), int(pre_indptr[cp + 1])):
                    if pre_count[k] > r:
                        row[int(pre_machine[k])] = job
                prelude.append(row)
        for k in range(int(step_indptr[cp]), int(step_indptr[cp + 1])):
            if step_count[k] > tu:
                per_machine[int(step_machine[k])].append(job)
    n_prelude = len(prelude)
    congestion = max((len(lst) for lst in per_machine), default=0)
    rows = np.full((n_prelude + congestion, n_machines), idle, dtype=np.int64)
    for r, row in enumerate(prelude):
        rows[r] = row
    for i, lst in enumerate(per_machine):
        for r, job in enumerate(lst):
            rows[n_prelude + r, i] = job
    return rows, n_prelude, congestion


def _enter_items(entered, pos, tau, dr, kind, ilen, ijob, nit):
    """Item-entry bookkeeping for chains that just advanced (or started):
    arm entered pauses' countdowns, zero entered blocks' tallies."""
    C = pos.shape[1]
    c_idx = np.arange(C, dtype=np.int64)
    newlive = entered & (pos < nit)
    cp = np.minimum(pos, nit - 1)
    kd = kind[c_idx, cp]
    into_pause = newlive & (kd == KIND_PAUSE)
    into_block = newlive & (kd == KIND_BLOCK)
    np.copyto(dr, np.where(into_pause, ilen[c_idx, cp], dr))
    np.copyto(tau, np.where(into_block, 0, tau))
    return into_pause, ijob[c_idx, cp]
