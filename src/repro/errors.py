"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleLPError",
    "RoundingError",
    "ScheduleViolationError",
    "SimulationHorizonError",
    "DecompositionError",
    "UnknownPolicyError",
    "InvalidScenarioError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """An SUU (or stochastic) instance fails validation.

    Raised, e.g., when a failure-probability matrix contains values outside
    ``[0, 1]``, when some job has no machine with ``q_ij < 1``, or when the
    precedence graph contains a cycle.
    """


class InfeasibleLPError(ReproError):
    """A linear program could not be solved to optimality.

    Carries the solver status message so callers can distinguish
    infeasibility from numerical failure.
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class RoundingError(ReproError):
    """LP rounding failed to produce a feasible integral assignment.

    This indicates either a bug or a pathological numerical situation; the
    paper's rounding argument (Lemma 2 / Lemma 6) guarantees feasibility for
    exact LP solutions.
    """


class ScheduleViolationError(ReproError):
    """A policy assigned a machine to a job that is not eligible.

    Assigning a machine to an already *completed* job is allowed by the paper
    (the machine simply idles), but assigning to a job whose precedence
    constraints are unsatisfied is a bug in the policy and is reported
    loudly instead of being masked.
    """


class SimulationHorizonError(ReproError):
    """A simulation exceeded its ``max_steps`` horizon before completing.

    Horizons exist to turn accidental non-termination (e.g. a policy that
    idles every machine forever) into a clear error instead of a hang.
    """

    def __init__(self, message: str, steps: int | None = None):
        super().__init__(message)
        self.steps = steps


class DecompositionError(ReproError):
    """A precedence graph does not have the structure a routine requires.

    For example, asking for the chain decomposition of a graph that is not a
    directed forest.
    """


class UnknownPolicyError(ReproError, KeyError):
    """A policy name does not resolve in the :mod:`repro.api` registry.

    Carries the set of known names so error messages (and ``repro policies``
    CLI hints) can list what *is* available.  Subclasses :class:`KeyError`
    because the registry is conceptually a mapping.
    """

    def __init__(self, name: str, known=()):
        self.name = name
        self.known = tuple(known)
        hint = f"; known policies: {', '.join(self.known)}" if self.known else ""
        super().__init__(f"unknown policy {name!r}{hint}")

    def __str__(self) -> str:  # KeyError would repr() the message tuple
        return self.args[0]


class InvalidScenarioError(ReproError):
    """A declarative :class:`repro.api.Scenario` fails validation.

    Raised when a scenario names an unknown shape or failure model, or when
    its numeric parameters cannot produce a well-formed instance.
    """
