"""The unit-step execution engine for SUU and SUU* semantics.

The engine owns the ground truth of an execution: which jobs remain, which
are eligible, and how completions are drawn.  Policies only ever see the
:class:`~repro.schedule.base.SimulationState` snapshot, so the same policy
object runs unmodified under both semantics — which is exactly the content
of the paper's Theorem 10 (the two semantics induce identical history
distributions), and is verified statistically in the test suite.

* **SUU** (Section 2): when a set of machines ``M`` runs job ``j`` during a
  step, the job survives with probability ``prod_{i in M} q_ij =
  2**-mass``; the engine draws one uniform per scheduled job per step.
* **SUU\\*** (Appendix A): one hidden threshold ``theta_j = -log2 r_j`` with
  ``r_j ~ U(0,1)`` is drawn up front; the job completes on the first step
  its cumulative delivered log mass reaches ``theta_j``.

Hot-loop discipline: all per-job buffers (remaining/eligible/mass/step
mass) are allocated once and mutated in place; the
:class:`~repro.schedule.base.SimulationState` handed to the policy wraps
*read-only views* of those buffers and is reused across steps.  Snapshots
are therefore only valid during the ``assign`` call — the documented
policy contract — which is what lets the loop drop the per-completion
defensive copies it used to make.  In-degree updates go through the
precedence graph's CSR successor structure
(:meth:`~repro.instance.precedence.PrecedenceGraph.successors_flat`)
instead of a Python loop over completed jobs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ScheduleViolationError, SimulationHorizonError
from repro.instance.instance import SUUInstance
from repro.schedule.base import IDLE, Policy, SimulationState
from repro.sim.results import SimResult
from repro.util.rng import ensure_rng

__all__ = ["run_policy", "draw_thresholds", "DEFAULT_MAX_STEPS"]

#: Default simulation horizon; hitting it raises SimulationHorizonError.
DEFAULT_MAX_STEPS: int = 1_000_000

_LN2 = math.log(2.0)


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A non-writable view of ``arr`` (the engine keeps the writable base)."""
    view = arr.view()
    view.flags.writeable = False
    return view


def draw_thresholds(n_jobs: int, rng) -> np.ndarray:
    """Draw the SUU* completion thresholds ``theta_j = -log2 r_j``.

    With ``r ~ U(0,1)``, ``-log2 r`` is exponential with mean ``1/ln 2``.
    """
    rng = ensure_rng(rng)
    return rng.exponential(scale=1.0 / _LN2, size=n_jobs)


def run_policy(
    instance: SUUInstance,
    policy: Policy,
    rng=None,
    *,
    semantics: str = "suu",
    max_steps: int = DEFAULT_MAX_STEPS,
    thresholds: np.ndarray | None = None,
) -> SimResult:
    """Execute ``policy`` on ``instance`` until every job completes.

    Parameters
    ----------
    semantics:
        ``"suu"`` for per-step coin flips, ``"suu_star"`` for the
        deferred-decision formulation.
    thresholds:
        Optional pre-drawn SUU* thresholds (ignored under ``"suu"``); used
        by tests and by offline/competitive analyses that fix the hidden
        input ``{r_j}``.

    Raises
    ------
    ScheduleViolationError
        If the policy assigns a machine to a job whose predecessors have
        not all completed.
    SimulationHorizonError
        If the execution exceeds ``max_steps``.
    """
    if semantics not in ("suu", "suu_star"):
        raise ValueError(f"unknown semantics {semantics!r}")
    rng = ensure_rng(rng)
    n, m = instance.n_jobs, instance.n_machines
    ell = instance.ell
    graph = instance.graph

    policy_rng, outcome_rng = rng.spawn(2)
    policy.start(instance, policy_rng)

    if semantics == "suu_star":
        theta = (
            np.asarray(thresholds, dtype=np.float64)
            if thresholds is not None
            else draw_thresholds(n, outcome_rng)
        )
        if theta.shape != (n,):
            raise ValueError(f"thresholds must have shape ({n},), got {theta.shape}")
    else:
        theta = None

    remaining = np.ones(n, dtype=bool)
    indeg = graph.in_degree_array()
    eligible = remaining & (indeg == 0)
    mass_accrued = np.zeros(n, dtype=np.float64)
    completion_times = np.zeros(n, dtype=np.int64)
    step_mass = np.zeros(n, dtype=np.float64)
    busy = 0
    machine_ids = np.arange(m)

    # One state object for the whole run, wrapping read-only views of the
    # live buffers (see module docstring: snapshots are only valid during
    # the assign call, so no per-step copies are needed).
    state = SimulationState(
        t=0,
        remaining=_readonly_view(remaining),
        eligible=_readonly_view(eligible),
        mass_accrued=_readonly_view(mass_accrued),
    )

    t = 0
    while remaining.any():
        if t >= max_steps:
            raise SimulationHorizonError(
                f"{policy.name!r} exceeded max_steps={max_steps} with "
                f"{int(remaining.sum())} jobs remaining",
                steps=t,
            )
        object.__setattr__(state, "t", t)
        a = np.asarray(policy.assign(state))
        if a.shape != (m,):
            raise ScheduleViolationError(
                f"{policy.name!r} returned assignment of shape {a.shape}, "
                f"expected ({m},)"
            )
        if a.dtype.kind not in "iu":
            raise ScheduleViolationError(
                f"{policy.name!r} returned non-integer assignment dtype {a.dtype}"
            )
        active = a >= 0
        if (a[active] >= n).any() or (a < IDLE).any():
            raise ScheduleViolationError(
                f"{policy.name!r} assigned an out-of-range job id"
            )
        # Assignments to completed jobs idle silently (the paper's
        # convention); assignments to remaining-but-ineligible jobs are
        # precedence violations.
        targets = a[active]
        bad = remaining[targets] & ~eligible[targets]
        if bad.any():
            machine = machine_ids[active][bad][0]
            raise ScheduleViolationError(
                f"{policy.name!r} assigned machine {int(machine)} to job "
                f"{int(a[machine])} whose predecessors are incomplete (t={t})"
            )
        effective = active.copy()
        effective[active] = remaining[targets]

        step_mass[:] = 0.0
        if effective.any():
            jobs_hit = a[effective]
            np.add.at(step_mass, jobs_hit, ell[machine_ids[effective], jobs_hit])
            busy += int(effective.sum())

        scheduled = np.nonzero(step_mass > 0.0)[0]
        if semantics == "suu":
            if scheduled.size:
                u = outcome_rng.random(scheduled.size)
                survive = u < np.power(2.0, -step_mass[scheduled])
                done_now = scheduled[~survive]
            else:
                done_now = scheduled
        else:
            done_now = scheduled[
                mass_accrued[scheduled] + step_mass[scheduled] >= theta[scheduled]
            ]
        mass_accrued += step_mass

        t += 1
        if done_now.size:
            remaining[done_now] = False
            completion_times[done_now] = t
            _, successors = graph.successors_flat(done_now)
            if successors.size:
                np.subtract.at(indeg, successors, 1)
            np.logical_and(remaining, indeg == 0, out=eligible)

    return SimResult(
        makespan=t,
        completion_times=completion_times,
        busy_machine_steps=busy,
        semantics=semantics,
        policy_name=policy.name,
    )
