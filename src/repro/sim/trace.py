"""Execution traces and an ASCII Gantt renderer.

Wrapping any policy in :class:`TracingPolicy` records the full
machine-by-step assignment table of one execution; :func:`render_gantt`
draws it as an ASCII chart (one row per machine, one column per step),
which the examples use to make schedules visible without a plotting
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.schedule.base import Policy, SimulationState

__all__ = ["TracingPolicy", "ExecutionTrace", "render_gantt"]


@dataclass
class ExecutionTrace:
    """Recorded assignments of one execution.

    Attributes
    ----------
    rows:
        One ``(m,)`` assignment array per simulated step, in time order.
    """

    rows: list = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        """Number of recorded steps."""
        return len(self.rows)

    def table(self) -> np.ndarray:
        """Assignments as a ``(steps, m)`` array (IDLE = -1)."""
        if not self.rows:
            return np.zeros((0, 0), dtype=np.int64)
        return np.vstack(self.rows)

    def machine_utilization(self) -> np.ndarray:
        """Fraction of steps each machine was assigned a job."""
        t = self.table()
        if t.size == 0:
            return np.zeros(0)
        return (t >= 0).mean(axis=0)

    def job_steps(self, n_jobs: int) -> np.ndarray:
        """Total machine-steps each job was assigned."""
        t = self.table()
        out = np.zeros(n_jobs, dtype=np.int64)
        if t.size:
            active = t[t >= 0]
            np.add.at(out, active, 1)
        return out


class TracingPolicy(Policy):
    """Record every assignment of an inner policy.

    The wrapper is transparent: it forwards ``start``/``assign`` and stores
    a copy of each returned row in :attr:`trace`.
    """

    def __init__(self, inner: Policy):
        self.inner = inner
        self.trace = ExecutionTrace()
        self.name = f"traced({inner.name})"

    def start(self, instance, rng) -> None:
        self.trace = ExecutionTrace()
        self.inner.start(instance, rng)

    def assign(self, state: SimulationState) -> np.ndarray:
        row = np.asarray(self.inner.assign(state))
        self.trace.rows.append(row.copy())
        return row


_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_gantt(
    trace: ExecutionTrace,
    *,
    max_width: int = 100,
    completion_times: np.ndarray | None = None,
) -> str:
    """ASCII Gantt chart: one row per machine, one glyph per step.

    Jobs are drawn with cycling alphanumeric glyphs (job id mod 62); idle
    steps are ``.``.  Executions longer than ``max_width`` are truncated
    with a marker.  When ``completion_times`` is given, a footer line marks
    each step where at least one job completed with ``^``.
    """
    t = trace.table()
    if t.size == 0:
        return "(empty trace)"
    steps, m = t.shape
    shown = min(steps, max_width)
    lines = [
        f"steps 0..{shown - 1} of {steps}"
        + (" (truncated)" if steps > shown else "")
    ]
    for i in range(m):
        chars = []
        for s in range(shown):
            j = t[s, i]
            chars.append("." if j < 0 else _GLYPHS[j % len(_GLYPHS)])
        lines.append(f"m{i:<3d} |" + "".join(chars) + "|")
    if completion_times is not None:
        marks = np.zeros(shown, dtype=bool)
        for ct in np.asarray(completion_times):
            if 1 <= ct <= shown:
                marks[int(ct) - 1] = True
        lines.append("done |" + "".join("^" if f else " " for f in marks) + "|")
    return "\n".join(lines)
