"""Simulation substrate: the SUU/SUU* engines and Monte Carlo estimators."""

from repro.sim.batch import BatchSimResult, run_policy_batch
from repro.sim.engine import DEFAULT_MAX_STEPS, draw_thresholds, run_policy
from repro.sim.montecarlo import (
    compare_policies,
    estimate_expected_makespan,
    sample_oblivious_repeat_makespans,
)
from repro.sim.results import MakespanStats, SimResult
from repro.sim.trace import ExecutionTrace, TracingPolicy, render_gantt

__all__ = [
    "TracingPolicy",
    "ExecutionTrace",
    "render_gantt",
    "run_policy",
    "run_policy_batch",
    "draw_thresholds",
    "DEFAULT_MAX_STEPS",
    "estimate_expected_makespan",
    "compare_policies",
    "sample_oblivious_repeat_makespans",
    "MakespanStats",
    "SimResult",
    "BatchSimResult",
]
