"""The trial-vectorized batch simulation kernel.

:func:`run_policy_batch` advances *all* Monte Carlo trials of one policy
simultaneously: the execution state becomes ``(n_trials, n_jobs)`` arrays,
every step does whole-batch numpy work, and the per-step Python overhead —
the thing that made ``run_policy``-in-a-loop scale as
``O(trials x steps)`` in interpreter time — is paid once per *timestep*
instead of once per trial-step.

Why this is sound
-----------------
The paper's SUU* reformulation (Appendix A / Theorem 10) makes every
execution a *deterministic* function of the pre-drawn thresholds
``theta_j = -log2 r_j``.  Trials therefore never interact: stacking them
along a leading axis and advancing in lock step computes exactly the same
per-trial trajectories as running them one at a time — provided the policy
itself is a deterministic function of the state it is shown, which is the
:class:`~repro.schedule.base.VectorizedPolicy` contract.  Common-random-
number pairing (`compare_policies`) survives unchanged because the shared
thresholds remain the coupling variable.

Grouped dispatch for adaptive policies
--------------------------------------
Adaptive policies (``sem``, ``suu-c``, ``suu-t``, ``layered``, ``adapt``)
condition on per-trial completion history, so one broadcast
``assign_batch`` row cannot drive them.  Their per-trial control state is
nevertheless *coarse* — a round index, a level, a cursor into a solved
round schedule — which is what the :class:`~repro.schedule.base.
PhasedPolicy` protocol exposes.  Each step the kernel asks ``phase_key``
for every live trial, partitions the live trials by key (the groups are a
partition: every live trial lands in exactly one group), and calls
``assign_group`` once per distinct key.  Trials in lock step through the
same solved schedule therefore cost one row lookup instead of one policy
call each, and — the dominant win — the per-trial LP solves collapse:
trial-independent preparation happens once in ``start_phased``, and
per-round LP solutions are memoized by (target, remaining-set) so every
trial entering a round with the same survivor set reuses one solve.

RNG disciplines (v1 serial replay, v2 batch native)
---------------------------------------------------
The kernel supports two versioned RNG disciplines, resolved by
:func:`repro.util.rng.resolve_discipline` (explicit argument, then the
``REPRO_DISCIPLINE`` environment variable, then ``"v1"``):

Under **v1** (the default) the kernel consumes randomness *exactly* like
the serial estimators: one child generator per trial
(``rng.spawn(n_trials)``), and per trial the engine's
``spawn(2) -> (policy_rng, outcome_rng)`` split.  Under ``suu_star``,
trial ``k``'s thresholds are drawn from its own ``outcome_rng``; under
``suu``, each trial's per-step uniforms are drawn from its ``outcome_rng``
in the engine's order (scheduled jobs ascending).  Phased policies
additionally receive the per-trial ``policy_rng`` list in ``start_phased``
and must draw any internal randomness (SUU-C's chain delays,
per-level/per-block spawns) from trial ``k``'s generator in the scalar
order.  Serial, vectorized, and phase-grouped execution therefore produce
**bit-identical** makespan samples, and the Monte Carlo front ends route
through this kernel transparently whenever the policy supports either
protocol.

Under **v2** (a documented break: different streams, same distributions)
outcome randomness is drawn in whole-batch blocks from the per-run
:class:`~repro.util.rng.BatchStreams` spawn tree instead of replaying the
serial tree trial by trial: ``suu`` completions come from a single
``(n_trials, n_jobs)`` uniform matrix per step, ``suu_star`` thresholds
from one matrix draw, and v2-capable phased policies
(:meth:`~repro.schedule.base.PhasedPolicy.start_phased_v2`) receive the
streams to draw matrix-valued internal randomness (SUU-C's chain-delay
matrix).  Rows are addressed by global trial index, so v2 samples are
deterministic in the seed and invariant under backend and chunk layout —
they just differ from v1's.  The per-trial ``Generator.random(k)`` loop in
``_draw_suu_completions`` is what this removes; it is the reason v2 exists.

Policies that support neither protocol (e.g. internally randomized
per-step ones) fall back to a per-trial loop over
:func:`~repro.sim.engine.run_policy` with the same v1 RNG tree under
either discipline, so :func:`run_policy_batch` is safe to call with any
policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from concurrent.futures import ThreadPoolExecutor

from repro.errors import ScheduleViolationError, SimulationHorizonError
from repro.instance.instance import SUUInstance
from repro.kernels import (
    active_backend,
    get_backend,
    kernel_context,
    resolve_kernel_threads,
)
from repro.kernels._stepimpl import BAD_RANGE, OK
from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    Policy,
    supports_batch,
    supports_phased,
)
from repro.sim.engine import (
    DEFAULT_MAX_STEPS,
    _readonly_view,
    draw_thresholds,
    run_policy,
)
from repro.sim.results import MakespanStats
from repro.util.rng import (
    BatchStreams,
    ensure_rng,
    resolve_discipline,
    run_seed_sequence,
)

__all__ = ["BatchSimResult", "run_policy_batch"]


@dataclass(frozen=True)
class BatchSimResult:
    """Outcome of ``n_trials`` simulated executions of one policy.

    The batched analogue of :class:`~repro.sim.results.SimResult`: every
    scalar field gains a leading trial axis.

    Attributes
    ----------
    makespans:
        Per-trial makespan, shape ``(n_trials,)``, int64.
    completion_times:
        Per-trial, per-job completion step (1-based), shape
        ``(n_trials, n_jobs)``.
    busy_machine_steps:
        Per-trial machine-steps spent on uncompleted jobs.
    semantics:
        ``"suu"`` or ``"suu_star"``.
    policy_name:
        The executing policy's ``name``.
    vectorized:
        True when the lock-stepped batch kernel ran (broadcast or
        phase-grouped dispatch); False when the per-trial scalar fallback
        was used (policy supporting neither protocol).
    discipline:
        The RNG discipline the samples were drawn under (``"v1"`` or
        ``"v2"``; see the module docstring).
    kernel:
        The kernel backend that drove the run (``"numpy"``, ``"numba"``
        or ``"python"``; see :mod:`repro.kernels`).  Informational on
        the scalar fallback path, which has no batch hot loop.
    """

    makespans: np.ndarray
    completion_times: np.ndarray
    busy_machine_steps: np.ndarray
    semantics: str
    policy_name: str
    vectorized: bool
    discipline: str = "v1"
    kernel: str = "numpy"

    @property
    def n_trials(self) -> int:
        """Number of simulated trials."""
        return int(self.makespans.size)

    def stats(self, label: str | None = None) -> MakespanStats:
        """The makespan samples as :class:`~repro.sim.results.MakespanStats`."""
        return MakespanStats(
            samples=self.makespans, policy_name=label or self.policy_name
        )


def run_policy_batch(
    instance: SUUInstance,
    policy,
    n_trials: int | None = None,
    rng=None,
    *,
    semantics: str = "suu",
    max_steps: int = DEFAULT_MAX_STEPS,
    thresholds: np.ndarray | None = None,
    trial_rngs=None,
    discipline: str | None = None,
    streams: BatchStreams | None = None,
    lp_reuse: str | None = None,
    kernel: str | None = None,
    kernel_threads: int | None = None,
    validate: bool = True,
) -> BatchSimResult:
    """Execute ``n_trials`` independent runs of ``policy``, vectorized.

    Parameters
    ----------
    policy:
        A :class:`~repro.schedule.base.Policy` instance, a ``Policy``
        subclass, or a zero-argument factory.  Batch-capable policies (see
        :func:`~repro.schedule.base.supports_batch`) drive all trials at
        once; phased policies (:func:`~repro.schedule.base.supports_phased`)
        go through grouped dispatch; the rest run through the transparent
        per-trial fallback (which needs a class/factory, or a policy whose
        ``start`` fully resets it).
    n_trials:
        Number of trials; may be omitted when ``trial_rngs`` is given.
    rng:
        Seed or generator for the per-trial RNG tree (with ``trial_rngs``
        given it is only consulted under discipline v2, as the streams
        root when ``streams`` is omitted).
    semantics:
        ``"suu"`` or ``"suu_star"``, with the same meaning as
        :func:`~repro.sim.engine.run_policy`.
    thresholds:
        Optional pre-drawn SUU* threshold matrix, shape
        ``(n_trials, n_jobs)`` (ignored under ``"suu"``); row ``k`` plays
        the role of scalar ``run_policy``'s ``thresholds`` for trial ``k``.
    trial_rngs:
        Optional pre-spawned per-trial generators (one per trial), exactly
        the ``rng.spawn(n_trials)`` list the serial estimators build.  This
        is how the Monte Carlo front ends keep batched results bit-identical
        to their serial paths.
    discipline:
        RNG discipline: ``"v1"`` (serial replay, bit-identical to the
        scalar path), ``"v2"`` (batch-native streams; statistically
        equivalent, different samples), or ``None`` to resolve through the
        ``REPRO_DISCIPLINE`` environment variable (default v1).
    streams:
        Pre-built v2 :class:`~repro.util.rng.BatchStreams` (the service
        passes offset-rebased streams so worker chunks read their global
        rows).  Ignored under v1; built from ``rng`` when omitted under v2.
    lp_reuse:
        LP survivor-set reuse mode scoped over this batch: ``"exact"``
        (bit-identical, the default), ``"subset"`` (reuse cached round
        schedules for survivor subsets within the documented coverage
        eps), or ``None`` to resolve through ``REPRO_LP_REUSE``.  See
        :mod:`repro.core.phased`.
    kernel:
        Hot-loop kernel backend: ``"numpy"`` (default), ``"numba"``
        (compiled fused steppers; bit-identical outputs, falls back to
        numpy with a logged warning when numba is missing), ``"python"``
        (the compiled loops run uncompiled — debugging/testing), or
        ``None`` to resolve through ``REPRO_KERNEL``.  See
        :mod:`repro.kernels`.
    kernel_threads:
        CPU threads for this one batch (``None`` resolves through
        ``REPRO_KERNEL_THREADS``, default 1).  On the numba backend,
        ``threads > 1`` selects the ``parallel=True`` compile whose
        ``prange``-over-trials loops run inside the kernel; on every
        other backend the batch is split into contiguous trial shards
        along the service's chunk seam and run on a thread pool
        (requires a policy class/factory — a shared policy *instance*
        cannot be sharded and runs serially; ``lp_reuse="subset"`` also
        stays serial, because donor selection reads the shared solve
        cache whose order under concurrent shards is
        scheduling-dependent).  Both routes are
        bit-identical to ``kernel_threads=1``: trials are independent
        rows, v1 shards slice the per-trial RNG tree, and v2's Philox
        streams are addressed by global trial index (shard ``lo`` rebases
        via ``streams.with_offset``), so shard boundaries are invisible
        in the samples.
    validate:
        When True (default), the per-step assignment checks (shape,
        dtype, job-id range, precedence eligibility) run every timestep.
        When False, the range/eligibility checks run only on the first
        step — the trusted-policy fast path used by the registry-backed
        service front ends.  Shape/dtype checks always run (they are
        O(1)), and the loop-nest backends always range-check internally
        (a compiled kernel must never index out of bounds), so with
        ``validate=False`` a misbehaving policy yields semantically
        wrong trajectories on the numpy backend rather than memory
        errors.

    Raises
    ------
    ScheduleViolationError
        If the policy assigns a machine to a job whose predecessors have
        not all completed (in any trial).
    SimulationHorizonError
        If any trial exceeds ``max_steps``.
    """
    if semantics not in ("suu", "suu_star"):
        raise ValueError(f"unknown semantics {semantics!r}")
    discipline = resolve_discipline(discipline)
    if trial_rngs is not None:
        trial_rngs = list(trial_rngs)
        if n_trials is not None and n_trials != len(trial_rngs):
            raise ValueError(
                f"n_trials={n_trials} disagrees with {len(trial_rngs)} trial_rngs"
            )
        n_trials = len(trial_rngs)
    if n_trials is None or n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if discipline == "v2" and streams is None:
        if trial_rngs is not None and rng is None:
            # Fresh OS entropy here would make v2 silently
            # irreproducible; the v2 contract is determinism in the seed.
            raise ValueError(
                "discipline='v2' with pre-spawned trial_rngs needs a seed "
                "root: pass streams=BatchStreams(run_seed_sequence(seed)) "
                "(offset-rebased for chunks) or the run's rng/seed"
            )
        # Derive the v2 spawn-tree root before the v1 tree consumes the
        # generator, so both trees hang off the same per-run entropy.
        streams = BatchStreams(run_seed_sequence(rng))
    if trial_rngs is None:
        trial_rngs = list(ensure_rng(rng).spawn(n_trials))
    if discipline != "v2":
        streams = None

    n = instance.n_jobs
    if thresholds is not None:
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (n_trials, n):
            raise ValueError(
                f"thresholds must have shape ({n_trials}, {n}), "
                f"got {thresholds.shape}"
            )

    if isinstance(policy, Policy):
        probe, factory = policy, None
    else:
        factory = policy
        probe = factory()

    # The threads axis: in-kernel prange (numba parallel flavor) runs
    # below through kernel_context; every other backend shards trials
    # across a thread pool here, along the service's chunk seam.
    # Subset LP reuse stays serial: donor schedules come from the shared
    # process solve cache, whose population order under concurrent
    # shards depends on thread scheduling — sharding would make the
    # (already approximate) samples nondeterministic run to run.
    # Imported here: repro.core pulls policy modules that import this one,
    # and repro.api.config sits above both (the unified knob chain).
    from repro.api.config import resolve_lp_reuse
    from repro.core.phased import lp_reuse_context

    threads = resolve_kernel_threads(kernel_threads)
    if (
        threads > 1
        and n_trials >= 2
        and factory is not None
        and resolve_lp_reuse(lp_reuse) != "subset"
        and not getattr(get_backend(kernel, threads), "inkernel_threads", False)
    ):
        return _run_sharded(
            instance, factory, trial_rngs, threads,
            semantics=semantics, max_steps=max_steps, thresholds=thresholds,
            discipline=discipline, streams=streams, lp_reuse=lp_reuse,
            kernel=kernel, validate=validate,
        )

    with lp_reuse_context(lp_reuse), kernel_context(kernel, threads):
        if supports_batch(probe):
            return _run_vectorized(
                instance, probe, trial_rngs, semantics, max_steps, thresholds,
                discipline, streams, validate,
            )
        if supports_phased(probe):
            return _run_phased(
                instance, probe, trial_rngs, semantics, max_steps, thresholds,
                discipline, streams, validate,
            )
        return _run_fallback(
            instance, probe, factory, trial_rngs, semantics, max_steps, thresholds,
            discipline,
        )


def _run_sharded(
    instance, factory, trial_rngs, threads, *, semantics, max_steps,
    thresholds, discipline, streams, lp_reuse, kernel, validate,
) -> BatchSimResult:
    """Split one batch into contiguous trial shards on a thread pool.

    The trial-shard route for serial backends when ``kernel_threads > 1``:
    each shard is a full recursive :func:`run_policy_batch` run (fresh
    policy from ``factory``, ``kernel_threads=1``) over its span of the
    already-built per-trial RNG list (v1) and the offset-rebased batch
    streams (v2) — exactly the seam ``api.service`` chunks batches
    across worker processes on, which is bit-identical to the unsplit
    run by construction.  Results concatenate in trial order, so shard
    boundaries are invisible in the samples.
    """
    B = len(trial_rngs)
    n_shards = min(threads, B)
    cuts = np.linspace(0, B, n_shards + 1).astype(int)
    spans = [
        (int(lo), int(hi)) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo
    ]

    def run_span(span):
        lo, hi = span
        return run_policy_batch(
            instance, factory, hi - lo,
            semantics=semantics, max_steps=max_steps,
            thresholds=None if thresholds is None else thresholds[lo:hi],
            trial_rngs=trial_rngs[lo:hi], discipline=discipline,
            # Rebase relative to this batch's own base: the service may
            # already have offset the streams for a worker chunk.
            streams=None
            if streams is None
            else streams.with_offset(streams.offset + lo),
            lp_reuse=lp_reuse, kernel=kernel, kernel_threads=1,
            validate=validate,
        )

    with ThreadPoolExecutor(max_workers=len(spans)) as pool:
        parts = list(pool.map(run_span, spans))
    first = parts[0]
    return BatchSimResult(
        makespans=np.concatenate([p.makespans for p in parts]),
        completion_times=np.concatenate(
            [p.completion_times for p in parts], axis=0
        ),
        busy_machine_steps=np.concatenate(
            [p.busy_machine_steps for p in parts]
        ),
        semantics=first.semantics,
        policy_name=first.policy_name,
        vectorized=all(p.vectorized for p in parts),
        discipline=first.discipline,
        kernel=first.kernel,
    )


def _run_fallback(
    instance, probe, factory, trial_rngs, semantics, max_steps, thresholds,
    discipline="v1",
) -> BatchSimResult:
    """Per-trial scalar loop for policies without batch support.

    The scalar engine is inherently serial-replay, so this path consumes
    the v1 RNG tree under either discipline (v2 == v1 here; documented in
    the module docstring)."""
    B, n = len(trial_rngs), instance.n_jobs
    makespans = np.empty(B, dtype=np.int64)
    completion = np.empty((B, n), dtype=np.int64)
    busy = np.empty(B, dtype=np.int64)
    name = probe.name
    for k, trial_rng in enumerate(trial_rngs):
        p = factory() if factory is not None else probe
        result = run_policy(
            instance,
            p,
            trial_rng,
            semantics=semantics,
            max_steps=max_steps,
            thresholds=None if thresholds is None else thresholds[k],
        )
        makespans[k] = result.makespan
        completion[k] = result.completion_times
        busy[k] = result.busy_machine_steps
    return BatchSimResult(
        makespans=makespans,
        completion_times=completion,
        busy_machine_steps=busy,
        semantics=semantics,
        policy_name=name,
        vectorized=False,
        discipline=discipline,
        kernel=active_backend().name,
    )


def _run_vectorized(
    instance, policy, trial_rngs, semantics, max_steps, thresholds,
    discipline, streams, validate=True,
) -> BatchSimResult:
    """The broadcast path: one ``assign_batch`` call drives all trials."""
    B, n = len(trial_rngs), instance.n_jobs

    # v1 mirrors run_policy's per-trial ``spawn(2) -> (policy_rng,
    # outcome_rng)`` split.  When thresholds are supplied (the
    # common-random-number path), no outcome randomness is consumed at all
    # — exactly like the scalar engine — so only the lead trial's
    # policy_rng needs spawning.  v2 replaces the per-trial outcome draws
    # with whole-batch stream draws.
    outcome_rngs = None
    if semantics == "suu_star" and thresholds is not None:
        theta = thresholds
        policy.start_batch(instance, trial_rngs[0].spawn(2)[0], B)
    elif streams is not None:
        theta = streams.thresholds(B, n) if semantics == "suu_star" else None
        policy.start_batch(instance, trial_rngs[0].spawn(2)[0], B)
    else:
        pairs = [r.spawn(2) for r in trial_rngs]
        policy.start_batch(instance, pairs[0][0], B)
        if semantics == "suu_star":
            theta = np.empty((B, n), dtype=np.float64)
            for k, (_, outcome_rng) in enumerate(pairs):
                theta[k] = draw_thresholds(n, outcome_rng)
        else:
            theta = None
            outcome_rngs = [outcome for _, outcome in pairs]
    return _drive_batch(
        instance, policy.name, policy.assign_batch, B, semantics, max_steps,
        theta, outcome_rngs, discipline, streams, validate,
    )


class _GroupedDispatch:
    """Per-step phase grouping: one ``assign_group`` call per distinct key.

    The kernel's assignment callable for phased policies.  Each step it
    invokes the policy's optional ``begin_step`` hook once (policies with
    batch-wide per-step work — SUU-C/SUU-T's signature-grouped boundary
    stepping — vectorize it there instead of repeating it per trial), then
    queries ``phase_key`` for every live trial (ascending order — part of
    the protocol contract), partitions the live trials by key, and fills
    one ``(n_trials, m)`` assignment buffer group by group.  Inactive
    trials keep IDLE rows, which the engine ignores.
    """

    def __init__(self, policy, n_trials: int, n_machines: int):
        self._policy = policy
        self._begin_step = getattr(policy, "begin_step", None)
        self._out = np.empty((n_trials, n_machines), dtype=np.int64)

    def __call__(self, state: BatchSimulationState) -> np.ndarray:
        policy = self._policy
        if self._begin_step is not None:
            self._begin_step(state)
        out = self._out
        out.fill(IDLE)
        groups: dict = {}
        for k in np.flatnonzero(state.active):
            k = int(k)
            groups.setdefault(policy.phase_key(k, state), []).append(k)
        for members in groups.values():
            idx = np.asarray(members, dtype=np.int64)
            rows = np.asarray(policy.assign_group(state, idx))
            # Writing into the int64 buffer would silently truncate float
            # job ids, so the dtype guard the driver applies to broadcast
            # assignments must run here, pre-copy.
            if rows.dtype.kind not in "iu":
                raise ScheduleViolationError(
                    f"{policy.name!r} returned non-integer group assignment "
                    f"dtype {rows.dtype}"
                )
            # A single (m,) row broadcasts across the whole group.
            out[idx] = rows
        return out


def _run_phased(
    instance, policy, trial_rngs, semantics, max_steps, thresholds,
    discipline, streams, validate=True,
) -> BatchSimResult:
    """The grouped-dispatch path for :class:`PhasedPolicy` implementations."""
    B, n = len(trial_rngs), instance.n_jobs

    # Under v2, a policy implementing start_phased_v2 draws its internal
    # randomness from the batch streams (matrix-valued, chunk-invariant)
    # and needs no per-trial generators at all; it may decline (False),
    # in which case the v1-style per-trial path below runs.
    started = False
    if streams is not None:
        start_v2 = getattr(policy, "start_phased_v2", None)
        if callable(start_v2):
            started = bool(start_v2(instance, streams, B))

    outcome_rngs = None
    theta = None
    if streams is not None:
        if semantics == "suu_star":
            theta = thresholds if thresholds is not None else streams.thresholds(B, n)
        if not started:
            pairs = [r.spawn(2) for r in trial_rngs]
            policy.start_phased(instance, [p for p, _ in pairs])
    else:
        # v1: phased policies consume per-trial policy randomness (e.g.
        # SUU-C's chain delays), so the engine's per-trial spawn(2) split
        # is replayed even on the common-random-number path where
        # thresholds are given.
        pairs = [r.spawn(2) for r in trial_rngs]
        if semantics == "suu_star":
            if thresholds is not None:
                theta = thresholds
            else:
                theta = np.empty((B, n), dtype=np.float64)
                for k, (_, outcome_rng) in enumerate(pairs):
                    theta[k] = draw_thresholds(n, outcome_rng)
        else:
            outcome_rngs = [outcome for _, outcome in pairs]
        policy.start_phased(instance, [p for p, _ in pairs])
    dispatch = _GroupedDispatch(policy, B, instance.n_machines)
    return _drive_batch(
        instance, policy.name, dispatch, B, semantics, max_steps, theta,
        outcome_rngs, discipline, streams, validate,
    )


#: Placeholder for the unused completion-rule operand (theta under suu,
#: uniforms under suu_star): keeps backend call signatures uniform so a
#: compiled backend sees one type per argument slot.  Never indexed.
_UNUSED = np.zeros((0, 0), dtype=np.float64)


def _drive_batch(
    instance, policy_name, assign, B, semantics, max_steps, theta,
    outcome_rngs, discipline="v1", streams=None, validate=True,
) -> BatchSimResult:
    """The lock-stepped all-trials engine (see module docstring).

    ``assign`` is the per-step assignment callable — ``assign_batch`` for
    vectorized policies, a :class:`_GroupedDispatch` for phased ones —
    mapping the shared :class:`BatchSimulationState` to ``(B, m)`` job ids.
    Under ``suu`` semantics, completions come from the per-trial
    ``outcome_rngs`` (v1) or from one whole-batch stream draw per step
    (v2, ``streams`` set).

    The step body itself lives in the active kernel backend (see
    :mod:`repro.kernels`): one fused ``drive_step`` call per step on the
    v2-``suu`` and ``suu_star`` paths; an ``accrue`` / rng draw /
    ``commit`` split on the v1-``suu`` path, whose per-trial generator
    consumption cannot cross the compiled boundary.
    """
    n, m = instance.n_jobs, instance.n_machines
    ell = instance.ell
    graph = instance.graph
    backend = active_backend()
    succ_indptr, succ_indices = graph.successors_csr()

    remaining = np.ones((B, n), dtype=bool)
    indeg = np.repeat(graph.in_degree_array()[None, :], B, axis=0)
    eligible = remaining & (indeg == 0)
    mass_accrued = np.zeros((B, n), dtype=np.float64)
    completion_times = np.zeros((B, n), dtype=np.int64)
    busy = np.zeros(B, dtype=np.int64)
    active = np.ones(B, dtype=bool)
    # Independent instances can never trip the precedence check (eligible
    # is identically remaining), so the backends collapse the validation
    # gather and the in-degree bookkeeping away.
    independent = graph.n_edges == 0

    state = BatchSimulationState(
        t=0,
        remaining=_readonly_view(remaining),
        eligible=_readonly_view(eligible),
        mass_accrued=_readonly_view(mass_accrued),
        active=_readonly_view(active),
    )

    # The completion rule the fused step applies: mode 0 thresholds
    # accrued mass against theta (suu_star), mode 1 tests one whole-batch
    # uniform matrix per step (suu under v2).  v1 suu never reaches the
    # fused step — see the loop body.
    v1_suu = semantics == "suu" and streams is None
    mode = 1 if semantics == "suu" else 0
    theta_arg = _UNUSED if mode == 1 else np.ascontiguousarray(
        theta, dtype=np.float64
    )

    t = 0
    while active.any():
        if t >= max_steps:
            raise SimulationHorizonError(
                f"{policy_name!r} exceeded max_steps={max_steps} with "
                f"{int(active.sum())} of {B} trials unfinished",
                steps=t,
            )
        object.__setattr__(state, "t", t)
        a = np.asarray(assign(state))
        if a.shape != (B, m):
            raise ScheduleViolationError(
                f"{policy_name!r} returned batch assignment of shape "
                f"{a.shape}, expected ({B}, {m})"
            )
        if a.dtype.kind not in "iu":
            raise ScheduleViolationError(
                f"{policy_name!r} returned non-integer assignment dtype {a.dtype}"
            )
        a = np.ascontiguousarray(a, dtype=np.int64)
        check = validate or t == 0

        if v1_suu:
            # The per-trial Generator draws in _draw_suu_completions keep
            # v1 bit-identical to the serial engine and cannot move into
            # a compiled kernel, so this path splits the step around them.
            status, vb, vi, step_mass = backend.accrue(
                a, ell, remaining, eligible, busy, independent, check
            )
            if status != OK:
                _raise_violation(status, policy_name, a, vb, vi, t)
            done_now = _draw_suu_completions(step_mass, outcome_rngs)
            mass_accrued += step_mass
            t += 1
            backend.commit(
                done_now, t, completion_times, remaining, eligible, indeg,
                succ_indptr, succ_indices, active, independent,
            )
        else:
            u = streams.step_uniforms(t, B, n) if mode == 1 else _UNUSED
            status, vb, vi = backend.drive_step(
                a, ell, theta_arg, u, mode, t + 1, remaining, eligible,
                indeg, mass_accrued, completion_times, busy, active,
                succ_indptr, succ_indices, independent, check,
            )
            if status != OK:
                _raise_violation(status, policy_name, a, vb, vi, t)
            t += 1

    return BatchSimResult(
        makespans=completion_times.max(axis=1),
        completion_times=completion_times,
        busy_machine_steps=busy,
        semantics=semantics,
        policy_name=policy_name,
        vectorized=True,
        discipline=discipline,
        kernel=backend.name,
    )


def _raise_violation(status, policy_name, a, b, i, t):
    """Raise the ScheduleViolationError a backend reported as a status code
    (backends return codes instead of raising so the compiled ones stay
    exception-free); messages match the pre-backend driver exactly."""
    if status == BAD_RANGE:
        raise ScheduleViolationError(
            f"{policy_name!r} assigned an out-of-range job id"
        )
    raise ScheduleViolationError(
        f"{policy_name!r} assigned machine {int(i)} to job "
        f"{int(a[b, i])} whose predecessors are incomplete "
        f"(t={t}, trial={int(b)})"
    )


def _draw_suu_completions(step_mass, outcome_rngs) -> np.ndarray:
    """Per-step SUU coin flips, consuming each trial's rng like the scalar
    engine (one ``random(k)`` call over that trial's scheduled jobs,
    ascending) so batched ``suu`` runs stay bit-identical to serial ones."""
    scheduled = step_mass > 0.0
    counts = scheduled.sum(axis=1)
    total = int(counts.sum())
    done_now = np.zeros_like(scheduled)
    if total == 0:
        return done_now
    u = np.empty(total, dtype=np.float64)
    offset = 0
    for b in np.flatnonzero(counts):
        k = int(counts[b])
        u[offset : offset + k] = outcome_rngs[b].random(k)
        offset += k
    rows, cols = np.nonzero(scheduled)  # row-major: trial-major, jobs ascending
    failed = u >= np.power(2.0, -step_mass[rows, cols])
    done_now[rows[failed], cols[failed]] = True
    return done_now
