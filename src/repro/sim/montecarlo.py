"""Monte Carlo estimation of expected makespans.

Three estimators:

* :func:`estimate_expected_makespan` — run the real engine ``n_trials``
  times with independent RNG streams.  Works for every policy.
* :func:`compare_policies` — paired comparison with **common random
  numbers**: all policies face the *same* hidden SUU* thresholds in each
  trial.  By Theorem 10 this changes no marginal distribution, but it
  cancels the shared threshold noise out of makespan *differences*, making
  head-to-head experiments far sharper at equal trial counts.
All estimators route through the trial-vectorized kernel
(:func:`repro.sim.batch.run_policy_batch`) and accept a ``discipline``
argument (default: the ``REPRO_DISCIPLINE`` environment variable, else
``"v1"``).  Under discipline v1 the kernel replays the exact RNG tree of
the per-trial path, so routing never changes a single sample — it only
changes wall-clock time.  Under discipline v2 the kernel draws batch-native
streams (statistically equivalent, different samples; see
:mod:`repro.util.rng`).

* :func:`sample_oblivious_repeat_makespans` — an exact *closed-form sampler*
  for the special case of a finite oblivious schedule repeated until all
  jobs complete (the SUU-I-OBL execution model).  Using the SUU* view, job
  ``j``'s completion time is a deterministic function of its threshold
  ``theta_j`` and the schedule's per-pass mass profile, so we can sample
  makespans in ``O(n log P)`` per trial without stepping the engine.  The
  test suite checks this sampler against the engine distributionally.
"""

from __future__ import annotations

import numpy as np

from repro.instance.instance import SUUInstance
from repro.schedule.oblivious import FiniteObliviousSchedule
from repro.sim.batch import run_policy_batch
from repro.sim.engine import DEFAULT_MAX_STEPS, draw_thresholds
from repro.sim.results import MakespanStats
from repro.util.rng import (
    BatchStreams,
    ensure_rng,
    resolve_discipline,
    run_seed_sequence,
)

__all__ = [
    "estimate_expected_makespan",
    "compare_policies",
    "sample_oblivious_repeat_makespans",
]


def estimate_expected_makespan(
    instance: SUUInstance,
    policy_factory,
    n_trials: int,
    rng=None,
    *,
    semantics: str = "suu",
    max_steps: int = DEFAULT_MAX_STEPS,
    discipline: str | None = None,
    kernel: str | None = None,
    kernel_threads: int | None = None,
) -> MakespanStats:
    """Estimate ``E[T_policy]`` by simulation.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a *fresh* policy per trial
        (policies are stateful across a single execution).
    discipline:
        RNG discipline (``"v1"``/``"v2"``; ``None`` resolves through the
        environment).  Under v1 the samples are bit-identical to the
        historical per-trial loop; under v2 they are statistically
        equivalent batch-native draws.
    kernel:
        Hot-loop kernel backend (``"numpy"``/``"numba"``/``"python"``;
        ``None`` resolves through ``REPRO_KERNEL``).  Backends are
        bit-identical — the knob only changes wall-clock time.
    kernel_threads:
        Trial-parallel worker count (``None`` resolves through
        ``REPRO_KERNEL_THREADS``; default 1).  Bit-identical to serial —
        numba pranges over trials in-kernel, other backends shard the
        batch onto threads.

    All dispatch lives in :func:`~repro.sim.batch.run_policy_batch`:
    batch-capable policies drive every trial at once, the rest loop the
    scalar engine.  Under v1, both paths consume the same RNG tree (one
    spawned generator per trial), so the samples are bit-identical either
    way.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    batch = run_policy_batch(
        instance,
        policy_factory,
        n_trials,
        rng,
        semantics=semantics,
        max_steps=max_steps,
        discipline=discipline,
        kernel=kernel,
        kernel_threads=kernel_threads,
    )
    return batch.stats()


def compare_policies(
    instance: SUUInstance,
    policy_factories: dict,
    n_trials: int,
    rng=None,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    discipline: str | None = None,
    kernel: str | None = None,
    kernel_threads: int | None = None,
) -> dict[str, MakespanStats]:
    """Paired Monte Carlo comparison with common random numbers.

    Each trial draws one SUU* threshold vector and runs *every* policy
    against it (policies still get independent internal randomness).  The
    per-policy marginal statistics are unchanged (Theorem 10), but paired
    differences between policies have much lower variance than with
    independent runs.

    Parameters
    ----------
    policy_factories:
        Mapping label -> zero-argument policy factory.

    Returns
    -------
    Mapping label -> :class:`MakespanStats`; sample arrays are aligned
    trial-by-trial, so ``a.samples - b.samples`` is the paired difference.

    Every policy runs through :func:`~repro.sim.batch.run_policy_batch`
    against the whole threshold matrix at once (vectorized or via its
    per-trial fallback); the thresholds and per-run generators are
    pre-drawn in the serial loop's exact order, so mixing batched and
    non-batched policies changes no sample.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    discipline = resolve_discipline(discipline)
    rng = ensure_rng(rng)
    labels = list(policy_factories)
    # Under v2, policy-internal randomness comes from per-policy stream
    # families off the run's root (derived before the v1 tree consumes
    # the generator); thresholds stay the common coupling variable.
    streams = None
    if discipline == "v2":
        streams = BatchStreams(run_seed_sequence(rng))
    # Pre-draw the common thresholds and per-(trial, policy) generators in
    # the historical trial-major order, preserving bit-identical streams.
    thetas = np.empty((n_trials, instance.n_jobs), dtype=np.float64)
    run_rngs = {label: [] for label in labels}
    for t in range(n_trials):
        thetas[t] = draw_thresholds(instance.n_jobs, rng)
        for label in labels:
            run_rngs[label].append(rng.spawn(1)[0])
    return {
        label: run_policy_batch(
            instance,
            policy_factories[label],
            trial_rngs=run_rngs[label],
            semantics="suu_star",
            thresholds=thetas,
            max_steps=max_steps,
            discipline=discipline,
            streams=None if streams is None else streams.child(k),
            kernel=kernel,
            kernel_threads=kernel_threads,
        ).stats(label)
        for k, label in enumerate(labels)
    }


def sample_oblivious_repeat_makespans(
    instance: SUUInstance,
    schedule: FiniteObliviousSchedule,
    n_trials: int,
    rng=None,
) -> MakespanStats:
    """Exactly sample makespans of ``schedule`` repeated until completion.

    Only valid for independent jobs (precedence would make completions
    interact with eligibility).  Under SUU*, job ``j`` with threshold
    ``theta_j`` finishes during pass ``f`` at the first in-pass step where
    the cumulative mass crosses the residual ``theta_j - (f-1) * M_j``
    (``M_j`` = mass per full pass), so the makespan is a deterministic
    ``max`` over jobs.  By Theorem 10 the sampled distribution equals the
    engine's SUU distribution.
    """
    if not instance.is_independent():
        raise ValueError("exact oblivious-repeat sampling requires independent jobs")
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    rng = ensure_rng(rng)
    n = instance.n_jobs
    per_step = schedule.mass_per_step(instance.ell)  # (P, n)
    pass_mass = per_step.sum(axis=0)
    if (pass_mass <= 0).any():
        starved = np.nonzero(pass_mass <= 0)[0]
        raise ValueError(
            f"schedule gives zero mass to jobs {starved.tolist()}; "
            "repetition would never complete them"
        )
    cum = np.cumsum(per_step, axis=0)  # (P, n)
    P = schedule.length

    theta = draw_thresholds(n * n_trials, rng).reshape(n_trials, n)
    # Full passes completed before the finishing pass.
    full = np.floor_divide(theta, pass_mass[None, :]).astype(np.int64)
    residual = theta - full * pass_mass[None, :]
    # A zero residual (theta an exact multiple; probability 0 but guard
    # anyway) means the job finished at the end of the previous pass.
    exact = residual <= 0.0
    full = np.where(exact, full - 1, full)
    residual = np.where(exact, pass_mass[None, :], residual)
    completion = np.empty((n_trials, n), dtype=np.int64)
    for j in range(n):
        # First in-pass step whose cumulative mass reaches the residual.
        step = np.searchsorted(cum[:, j], residual[:, j], side="left")
        # Float round-off could push the residual a hair above the final
        # cumulative value; that still completes on the last step.
        step = np.minimum(step, P - 1)
        completion[:, j] = full[:, j] * P + step + 1
    samples = completion.max(axis=1)
    return MakespanStats(samples=samples, policy_name="oblivious-repeat-exact")
