"""Result records for simulations and Monte Carlo estimation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimResult", "MakespanStats"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan:
        Number of unit steps until the last job completed.
    completion_times:
        Per-job completion step (1-based: a job finishing during step 0 has
        completion time 1, matching "the expected time at which all jobs
        complete").
    busy_machine_steps:
        Total machine-steps spent on uncompleted jobs (work actually done;
        excludes idling and assignments to completed jobs).
    semantics:
        ``"suu"`` (per-step coin flips) or ``"suu_star"`` (deferred
        thresholds).
    policy_name:
        The executing policy's ``name``.
    """

    makespan: int
    completion_times: np.ndarray
    busy_machine_steps: int
    semantics: str
    policy_name: str

    def __post_init__(self):
        ct = np.asarray(self.completion_times)
        if ct.size and int(ct.max()) != self.makespan:
            raise ValueError(
                f"makespan {self.makespan} disagrees with completion times "
                f"(max {int(ct.max())})"
            )


@dataclass(frozen=True)
class MakespanStats:
    """Monte Carlo summary of a policy's makespan distribution.

    Attributes
    ----------
    samples:
        The raw makespan samples (one per trial).
    """

    samples: np.ndarray
    policy_name: str = "policy"

    @property
    def n_trials(self) -> int:
        """Number of Monte Carlo trials."""
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        """Sample mean of the makespan (the ``E[T]`` estimate)."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single trial)."""
        if self.samples.size < 2:
            return 0.0
        return float(self.samples.std(ddof=1))

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.samples.size < 2:
            return 0.0
        return self.std / float(np.sqrt(self.samples.size))

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.ci95
        return (
            f"MakespanStats({self.policy_name}: mean={self.mean:.3f} "
            f"ci95=[{lo:.3f}, {hi:.3f}] n={self.n_trials})"
        )
