"""Declarative scenario descriptions: what to simulate, as data.

A :class:`Scenario` is a frozen, JSON-serializable recipe for one SUU
instance — shape, size, failure model, and seed — and a :class:`SimConfig`
is a recipe for how to measure it (trials, semantics, seed, horizon).
Together they let experiments, the CLI, and services describe work without
holding instances or policies: a scenario can be stored in a results file,
shipped to a worker process, or swept over a :class:`ScenarioGrid`.

The same deterministic generators back both paths: ``Scenario(...).
to_instance()`` produces bit-identical instances to calling the
:mod:`repro.instance.generators` functions directly with the same seed.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass

from repro.api.config import (
    DISCIPLINES,
    KERNELS,
    LP_REUSE_MODES,
    SUBSTREAMS_MODES,
    ResolvedKnobs,
    resolve_discipline,
    resolve_kernel,
    resolve_kernel_threads,
    resolve_knobs,
    resolve_lp_reuse,
    resolve_substreams,
)
from repro.errors import InvalidScenarioError
from repro.instance.generators import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
    random_dag_instance,
    tree_instance,
)
from repro.instance.instance import SUUInstance
from repro.sim.engine import DEFAULT_MAX_STEPS

__all__ = ["SCENARIO_SHAPES", "FAILURE_MODELS", "SimConfig", "Scenario", "ScenarioGrid"]

_FORMAT = "repro-scenario-v1"

#: Precedence shapes a scenario can describe (every generator is covered).
SCENARIO_SHAPES: tuple[str, ...] = (
    "independent",
    "chains",
    "tree",
    "forest",
    "layered",
    "random_dag",
)

#: Failure-probability models understood by the generators.
FAILURE_MODELS: tuple[str, ...] = ("uniform", "powerlaw", "specialist", "related")


@dataclass(frozen=True)
class SimConfig:
    """How to run the Monte Carlo measurement of a scenario.

    Attributes
    ----------
    n_trials:
        Number of independent simulated executions.
    seed:
        Seed of the trial RNG tree (independent of the scenario's instance
        seed, so the same workload can be re-measured with fresh noise).
    semantics:
        ``"suu"`` (per-step coin flips) or ``"suu_star"`` (deferred
        thresholds); distributionally equivalent by Theorem 10.
    max_steps:
        Simulation horizon per trial.
    discipline:
        RNG discipline for the batch kernel: ``"v1"`` (serial replay,
        bit-identical to the scalar path), ``"v2"`` (batch-native streams,
        statistically equivalent), or ``None`` to resolve through the
        ``REPRO_DISCIPLINE`` environment variable at run time (default
        v1).  See :mod:`repro.util.rng`.
    lp_reuse:
        LP survivor-set reuse mode: ``"exact"`` (every distinct survivor
        set solves its own LP — bit-identical to earlier releases),
        ``"subset"`` (a survivor set that is a subset of an already-solved
        one, within the documented capped-mass coverage ``eps``, reuses the
        cached round schedule restricted to its columns), or ``None`` to
        resolve through ``REPRO_LP_REUSE`` at run time (default exact).
        See :mod:`repro.core.phased`.
    kernel:
        Hot-loop kernel backend: ``"numpy"`` (default), ``"numba"``
        (compiled fused steppers, bit-identical outputs, graceful numpy
        fallback when numba is missing), ``"python"`` (uncompiled
        reference loops), or ``None`` to resolve through the
        ``REPRO_KERNEL`` environment variable at run time.  See
        :mod:`repro.kernels`.
    kernel_threads:
        Trial-parallel worker count for one batch: with the numba backend
        the compiled steppers run ``prange`` over trials in-kernel; with
        the numpy/python backends the batch is split into contiguous trial
        shards executed on a thread pool (bit-identical either way).
        ``None`` resolves through ``REPRO_KERNEL_THREADS`` at run time
        (default 1 — serial).
    substreams:
        How sweep cells consume the seed's randomness: ``"shared"``
        (every policy sees the same trial RNG tree / batch
        streams — common-random-numbers pairing, minimum-variance policy
        *differences*) or ``"per-policy"`` (each policy in an
        ``evaluate_grid`` sweep draws from its own
        ``BatchStreams.child`` substream — independent estimates per
        cell, minimum-variance cell *means*).  ``None`` (the default)
        resolves through ``REPRO_SUBSTREAMS`` at run time (default
        shared).  Single-policy ``simulate()`` calls are unaffected.

    Every knob resolves through the one documented chain in
    :mod:`repro.api.config` — explicit argument → this config's field →
    environment variable → default; :meth:`resolved` snapshots all five
    at once.
    """

    n_trials: int = 30
    seed: int = 0
    semantics: str = "suu"
    max_steps: int = DEFAULT_MAX_STEPS
    discipline: str | None = None
    lp_reuse: str | None = None
    kernel: str | None = None
    kernel_threads: int | None = None
    substreams: str | None = None

    def __post_init__(self):
        if self.n_trials < 1:
            raise InvalidScenarioError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.semantics not in ("suu", "suu_star"):
            raise InvalidScenarioError(f"unknown semantics {self.semantics!r}")
        if self.max_steps < 1:
            raise InvalidScenarioError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.discipline is not None and self.discipline not in DISCIPLINES:
            raise InvalidScenarioError(
                f"unknown discipline {self.discipline!r}; expected one of "
                f"{DISCIPLINES} (or None for the environment default)"
            )
        if self.lp_reuse is not None and self.lp_reuse not in LP_REUSE_MODES:
            raise InvalidScenarioError(
                f"unknown lp_reuse mode {self.lp_reuse!r}; expected one of "
                f"{LP_REUSE_MODES} (or None for the environment default)"
            )
        if self.kernel is not None and self.kernel not in KERNELS:
            raise InvalidScenarioError(
                f"unknown kernel backend {self.kernel!r}; expected one of "
                f"{KERNELS} (or None for the environment default)"
            )
        if self.kernel_threads is not None and (
            not isinstance(self.kernel_threads, int) or self.kernel_threads < 1
        ):
            raise InvalidScenarioError(
                f"kernel_threads must be an integer >= 1, got "
                f"{self.kernel_threads!r} (or None for the environment default)"
            )
        if self.substreams is not None and self.substreams not in SUBSTREAMS_MODES:
            raise InvalidScenarioError(
                f"unknown substreams mode {self.substreams!r}; expected "
                f"'shared' or 'per-policy' (or None for the environment "
                f"default)"
            )

    def resolved(self) -> ResolvedKnobs:
        """All five knobs resolved through the one chain in
        :mod:`repro.api.config` (explicit field → environment variable →
        default) — the snapshot that feeds suite-cell digests."""
        return resolve_knobs(config=self)

    def resolved_discipline(self) -> str:
        """The discipline trials will actually run under (env-resolved)."""
        return resolve_discipline(self.discipline)

    def resolved_lp_reuse(self) -> str:
        """The lp_reuse mode trials will actually run under (env-resolved)."""
        return resolve_lp_reuse(self.lp_reuse)

    def resolved_kernel(self) -> str:
        """The kernel backend trials will request (env-resolved; a missing
        numba still degrades to numpy at run time)."""
        return resolve_kernel(self.kernel)

    def resolved_kernel_threads(self) -> int:
        """The trial-parallel worker count trials will request
        (env-resolved; non-numba backends still shard rather than prange)."""
        return resolve_kernel_threads(self.kernel_threads)

    def resolved_substreams(self) -> str:
        """The sweep substream mode trials will run under (env-resolved)."""
        return resolve_substreams(self.substreams)

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> SimConfig:
        """Inverse of :meth:`to_dict`; unknown keys fail loudly (a typo in
        a suite file must not silently fall back to a default)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise InvalidScenarioError(
                f"unknown SimConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """A declarative, hashable recipe for one SUU instance.

    Only ``shape``-relevant knobs are consulted (e.g. ``edge_prob`` is
    ignored unless ``shape == "random_dag"``), so grids can sweep a knob
    without invalidating other shapes.

    Attributes
    ----------
    shape:
        One of :data:`SCENARIO_SHAPES`.
    n_jobs, n_machines:
        Instance dimensions.
    model:
        Failure-probability model (:data:`FAILURE_MODELS`).
    seed:
        Instance-generation seed; fully determines the instance.
    n_chains:
        Chain count for ``"chains"`` (default: ``max(1, n_jobs // 6)``).
    n_trees:
        Tree count for ``"forest"`` (default: ``max(1, n_jobs // 10)``).
    orientation:
        ``"out"``/``"in"`` for trees; forests additionally allow
        ``"mixed"``.  ``None`` (the default) resolves per shape: ``"out"``
        for trees, ``"mixed"`` for forests — matching the CLI's historical
        choices, and keeping ``generate`` and ``sweep`` workloads
        comparable.
    n_layers:
        Layer count for ``"layered"`` (jobs split as evenly as possible).
    density:
        Cross-layer edge density for ``"layered"``.
    edge_prob:
        Forward-edge probability for ``"random_dag"``.
    """

    shape: str = "independent"
    n_jobs: int = 20
    n_machines: int = 5
    model: str = "specialist"
    seed: int = 0
    n_chains: int | None = None
    n_trees: int | None = None
    orientation: str | None = None
    n_layers: int = 2
    density: float = 1.0
    edge_prob: float = 0.1

    def __post_init__(self):
        if self.shape not in SCENARIO_SHAPES:
            raise InvalidScenarioError(
                f"unknown shape {self.shape!r}; expected one of {SCENARIO_SHAPES}"
            )
        if self.model not in FAILURE_MODELS:
            raise InvalidScenarioError(
                f"unknown failure model {self.model!r}; expected one of {FAILURE_MODELS}"
            )
        if self.n_jobs < 1 or self.n_machines < 1:
            raise InvalidScenarioError(
                f"need n_jobs >= 1 and n_machines >= 1, got "
                f"{self.n_jobs} x {self.n_machines}"
            )
        if self.n_layers < 1:
            raise InvalidScenarioError(f"n_layers must be >= 1, got {self.n_layers}")
        if self.orientation not in (None, "out", "in", "mixed"):
            raise InvalidScenarioError(
                f"orientation must be 'out', 'in', or 'mixed', got "
                f"{self.orientation!r}"
            )

    def to_instance(self) -> SUUInstance:
        """Materialize the deterministic SUU instance this scenario names."""
        if self.shape == "independent":
            return independent_instance(
                self.n_jobs, self.n_machines, self.model, rng=self.seed
            )
        if self.shape == "chains":
            n_chains = self.n_chains if self.n_chains is not None else max(
                1, self.n_jobs // 6
            )
            return chain_instance(
                self.n_jobs, self.n_machines, n_chains, self.model, rng=self.seed
            )
        if self.shape == "tree":
            return tree_instance(
                self.n_jobs, self.n_machines, self.orientation or "out",
                self.model, rng=self.seed,
            )
        if self.shape == "forest":
            n_trees = self.n_trees if self.n_trees is not None else max(
                1, self.n_jobs // 10
            )
            return forest_instance(
                self.n_jobs, self.n_machines, n_trees,
                self.orientation or "mixed", self.model, rng=self.seed,
            )
        if self.shape == "layered":
            base, extra = divmod(self.n_jobs, self.n_layers)
            if base == 0:
                raise InvalidScenarioError(
                    f"cannot split {self.n_jobs} jobs into {self.n_layers} layers"
                )
            # Extra jobs land in the *last* layers, matching the pre-1.1 CLI
            # split so seeded `generate --shape layered` output is unchanged.
            sizes = [
                base + (1 if k >= self.n_layers - extra else 0)
                for k in range(self.n_layers)
            ]
            return layered_instance(
                sizes, self.n_machines, self.model, rng=self.seed,
                density=self.density,
            )
        # __post_init__ guarantees the only remaining shape:
        return random_dag_instance(
            self.n_jobs, self.n_machines, self.edge_prob, self.model, rng=self.seed
        )

    def label(self) -> str:
        """Compact human-readable tag for tables and logs."""
        return f"{self.shape}/{self.model} n={self.n_jobs} m={self.n_machines} s={self.seed}"

    def to_dict(self) -> dict:
        """JSON-compatible representation (tagged with a format version)."""
        data = dataclasses.asdict(self)
        data["format"] = _FORMAT
        return data

    @classmethod
    def from_dict(cls, data: dict) -> Scenario:
        """Inverse of :meth:`to_dict` (the format tag is optional)."""
        data = dict(data)
        fmt = data.pop("format", _FORMAT)
        if fmt != _FORMAT:
            raise InvalidScenarioError(f"unrecognized scenario format {fmt!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise InvalidScenarioError(f"unknown scenario fields {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> Scenario:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


class ScenarioGrid:
    """A cartesian sweep over scenario fields.

    Parameters
    ----------
    base:
        Scenario providing every unswept field.
    axes:
        Mapping ``field name -> sequence of values``.  Iteration order is
        the cartesian product with the *first* axis varying slowest, so
        sweeps are reproducible and reports line up with the declaration.

    Example::

        grid = ScenarioGrid(
            Scenario(model="specialist"),
            shape=["independent", "chains"],
            n_jobs=[20, 40],
        )
        len(grid)        # 4
        list(grid)       # four Scenario objects
    """

    def __init__(self, base: Scenario | None = None, **axes):
        self.base = base if base is not None else Scenario()
        valid = {f.name for f in dataclasses.fields(Scenario)}
        unknown = set(axes) - valid
        if unknown:
            raise InvalidScenarioError(f"unknown grid axes {sorted(unknown)}")
        self.axes: dict[str, tuple] = {}
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise InvalidScenarioError(f"grid axis {name!r} has no values")
            self.axes[name] = values

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def __iter__(self):
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dataclasses.replace(self.base, **dict(zip(names, combo)))

    def scenarios(self) -> list[Scenario]:
        """The sweep as a concrete list."""
        return list(self)

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioGrid:
        """Inverse of :meth:`to_dict`; unknown keys fail loudly (a typo in
        a suite file must not silently drop an axis)."""
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise InvalidScenarioError(
                f"unknown grid fields {sorted(unknown)}; expected 'base' and 'axes'"
            )
        if "base" not in data:
            raise InvalidScenarioError("grid dict needs a 'base' scenario")
        return cls(Scenario.from_dict(data["base"]), **data.get("axes", {}))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        axes = ", ".join(f"{n}={len(v)} values" for n, v in self.axes.items())
        return f"ScenarioGrid({len(self)} scenarios: {axes or 'single point'})"
