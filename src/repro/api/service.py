"""The batched simulation service: scenarios in, reports out.

:func:`simulate` is the facade's single entry point for measuring a policy
on a scenario: it materializes the instance, resolves the policy through
the :mod:`repro.api.registry` (``"auto"`` picks the registered default for
the instance's precedence class), runs the Monte Carlo trials, and returns
a :class:`Report` bundling the makespan statistics with the provable lower
bound.  :func:`evaluate_grid` sweeps a :class:`~repro.api.scenario.
ScenarioGrid` across many policies.

Both accept ``backend="serial"`` or ``backend="process"``, or an
injected request *executor* (``executor=``, see
:mod:`repro.server.executors`) that owns a long-lived worker pool reused
across calls — the request server's warm-pool story.  The process
backend dispatches contiguous chunks of trials across a
``multiprocessing`` pool; because every trial's RNG stream is spawned
up-front from the config seed (the same ``Generator.spawn`` tree the
serial loop walks), the two backends produce **bit-identical** makespan
samples — parallelism never changes results, only wall-clock time.  That
invariance holds under both RNG disciplines (``SimConfig.discipline``):
v1 replays the serial tree, v2 addresses its batch-native streams by
global trial index, so chunk layout is invisible either way.  Worker
pools install the cross-batch solve cache
(:func:`repro.core.phased.install_solve_cache`) through their
initializer, so a grid sweep's shared round-1 LPs are solved once per
worker process instead of once per chunk.
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING

import numpy as np

from repro.api.config import resolve_kernel, resolve_kernel_threads
from repro.api.registry import default_policy_for, policy_factory, policy_info
from repro.api.scenario import Scenario, ScenarioGrid, SimConfig
from repro.core.phased import install_solve_cache
from repro.instance.instance import SUUInstance
from repro.kernels import (
    get_backend,
    kernel_info,
    silence_numba_fallback,
    warmup as warmup_kernel,
)
from repro.lp.stats import lp_stats_delta, lp_stats_snapshot
from repro.sim.batch import run_policy_batch
from repro.sim.results import MakespanStats
from repro.util.rng import (
    BatchStreams,
    ensure_rng,
    run_seed_sequence,
    spawn_rngs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (deferred: layer cycle)
    from repro.analysis.perjob import PerJobStats

__all__ = [
    "Report",
    "simulate",
    "evaluate_grid",
    "run_trial_batch",
    "worker_pool",
]

_BACKENDS = ("serial", "process")

#: Start method for worker pools.  ``spawn`` is used everywhere (not just
#: where it is the OS default) so results and failure modes are identical
#: across platforms and workers never inherit forked interpreter state.
_MP_START_METHOD = "spawn"


@dataclass(frozen=True)
class Report:
    """Outcome of measuring one policy on one scenario.

    Attributes
    ----------
    scenario:
        The declarative recipe that was simulated (``None`` when
        :func:`simulate` was handed a raw instance).
    policy:
        Canonical registry name (or display label) of the measured policy.
    stats:
        Monte Carlo makespan statistics.
    lower_bound:
        Provable lower bound on ``E[T_OPT]`` for the instance.
    config:
        The :class:`~repro.api.scenario.SimConfig` the trials used.
    per_job:
        Per-job completion statistics
        (:class:`~repro.analysis.perjob.PerJobStats`) when the simulation
        was asked for them (``per_job=True``); ``None`` otherwise.
    lp_stats:
        LP-wall attribution for this run (:mod:`repro.lp.stats` fields:
        ``lp_solves``, ``assembly_seconds``, ``reuse_hits``,
        ``coalesced_batches``, ``coalesced_solves``), summed across worker
        chunks.  ``None`` on legacy paths that did not collect it.
    kernel:
        The resolved kernel backend (:func:`repro.kernels.kernel_info`
        keys: ``requested``, ``active``, ``numba_available``,
        ``warmup_seconds``, ``threads``, ``inkernel_threads``) the trials
        ran on.  ``None`` on legacy paths.
    """

    scenario: Scenario | None
    policy: str
    stats: MakespanStats
    lower_bound: float
    config: SimConfig
    per_job: "PerJobStats | None" = None
    lp_stats: dict | None = None
    kernel: dict | None = None

    @property
    def mean(self) -> float:
        """Estimated expected makespan ``E[T]``."""
        return self.stats.mean

    @property
    def ratio(self) -> float:
        """Measured approximation ratio ``E[T] / lower_bound``."""
        if self.lower_bound <= 0:
            return float("inf")
        return self.mean / self.lower_bound

    def to_dict(self) -> dict:
        """JSON-compatible representation (includes raw samples)."""
        return {
            "scenario": self.scenario.to_dict() if self.scenario else None,
            "policy": self.policy,
            "samples": self.stats.samples.tolist(),
            "mean": self.mean,
            "ci95": list(self.stats.ci95),
            "lower_bound": self.lower_bound,
            "ratio": self.ratio,
            "config": self.config.to_dict(),
            "per_job": self.per_job.to_dict() if self.per_job else None,
            "lp": self.lp_stats,
            "kernel": self.kernel,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.scenario.label() if self.scenario else "instance"
        return (
            f"Report({self.policy} on {where}: E[T]={self.mean:.3f}, "
            f"ratio<={self.ratio:.3f}, n={self.stats.n_trials})"
        )


def run_trial_batch(
    instance, factory, rngs, semantics, max_steps, want_completions=False,
    discipline="v1", streams=None, lp_reuse="exact", want_lp_stats=False,
    kernel="numpy", validate=True, kernel_threads=1,
):
    """Run one chunk of Monte Carlo trials; returns the makespans.

    Module-level (rather than a closure) so the process backend can ship it
    to ``spawn``-ed workers.  ``factory`` must therefore be picklable — the
    registry's :func:`~repro.api.registry.policy_factory` partials are (and
    so are :class:`~repro.util.rng.BatchStreams`).

    The trial-vectorized kernel owns all dispatch: batch-capable policies
    drive the whole chunk at once, phased (adaptive) policies go through
    grouped dispatch, the rest loop the scalar engine.  Under discipline
    v1 the kernel replays this chunk's RNG streams exactly, so chunking,
    backends, and dispatch mode all produce bit-identical samples; under
    v2 the chunk reads its global rows of the run's batch streams
    (``streams`` arrives offset-rebased), so samples are still invariant
    to chunk layout — they are just v2 samples.  The discipline — and,
    identically, the ``lp_reuse`` mode, the ``kernel`` backend, and the
    ``kernel_threads`` count — is resolved by the *caller* and passed
    explicitly so workers never consult their own environment.
    ``validate=False`` marks the policy as trusted (registry-dispatched):
    per-step assignment validation runs
    on the first step only (see :func:`repro.sim.batch.run_policy_batch`).

    With ``want_completions=True`` the chunk's ``(n_trials, n_jobs)``
    completion matrix rides along as a second return value (the raw
    material of :func:`repro.analysis.per_job_stats`); with
    ``want_lp_stats=True`` the chunk's LP-wall counter delta
    (:func:`repro.lp.stats.lp_stats_delta` around the run, measured inside
    the worker process) rides along as the final element.
    """
    before = lp_stats_snapshot() if want_lp_stats else None
    batch = run_policy_batch(
        instance, factory, trial_rngs=rngs, semantics=semantics,
        max_steps=max_steps, discipline=discipline, streams=streams,
        lp_reuse=lp_reuse, kernel=kernel, validate=validate,
        kernel_threads=kernel_threads,
    )
    out = (batch.makespans,)
    if want_completions:
        out = out + (batch.completion_times,)
    if want_lp_stats:
        out = out + (lp_stats_delta(before),)
    return out if len(out) > 1 else out[0]


def _resolve_policy(policy, instance, policy_kwargs):
    """Normalize a policy spec into ``(label, zero-arg factory, trusted)``.

    ``trusted`` is True for registry-dispatched specs (a name or
    ``"auto"``): those policies carry the library's own test coverage, so
    the batch driver validates their assignments on the first step only
    (``validate=False``).  User-supplied classes and factories keep full
    per-step validation.
    """
    if isinstance(policy, str):
        name = default_policy_for(instance) if policy == "auto" else policy
        info = policy_info(name)
        return info.name, policy_factory(info.name, **policy_kwargs), True
    if isinstance(policy, type):
        label = getattr(policy, "name", policy.__name__)
        return label, _with_kwargs(policy, policy_kwargs), False
    # Otherwise treat it as a zero-argument factory (each trial needs a
    # fresh policy, so already-constructed instances are not accepted).
    label = getattr(policy, "name", getattr(policy, "__name__", "policy"))
    return str(label), _with_kwargs(policy, policy_kwargs), False


def _with_kwargs(fn, kwargs):
    """Bind constructor kwargs onto a class/factory as a zero-arg factory."""
    return functools.partial(fn, **kwargs) if kwargs else fn


#: Below this many trials the process backend runs the batch kernel
#: in-process: with the kernel paying its per-step cost once per timestep,
#: a small batch finishes faster than worker dispatch + pickling even
#: starts.  Chunk layout never changes samples (the per-trial RNG tree is
#: spawned up-front), so the fast path is bit-identical by construction.
SERIAL_BATCH_THRESHOLD = 256

#: Solve-cache capacity installed into pool workers.  A worker serves
#: many chunks and grid cells over its lifetime, so it gets a larger
#: cache than the in-process default (the pool initializer is what makes
#: the setting land in ``spawn``-ed processes).
WORKER_SOLVE_CACHE_ENTRIES = 4096

#: Minimum trials per process-backend chunk.  One chunk per worker was
#: tuned for the scalar loop; the batch kernel amortizes per-step work
#: over the whole chunk, so many tiny chunks waste kernel efficiency and
#: IPC — fewer, larger chunks win once workers outnumber the trials'
#: useful parallelism.
MIN_CHUNK_TRIALS = 64


def _init_worker(solve_cache_entries: int, kernel: str,
                 kernel_threads: int = 1, quiet_fallback: bool = False) -> None:
    """Pool-worker initializer: solve cache + kernel warm-up.

    Runs once per ``spawn``-ed worker.  Installing the solve cache keeps
    round-1 LPs warm across chunks; warming the kernel backend makes a
    numba worker JIT-compile (or load the on-disk cache) *before* its
    first chunk, so warm-pool workers compile once and every subsequent
    request reuses the machine code.  ``quiet_fallback`` marks the
    numba-missing fallback warning as already delivered — the parent emits
    it exactly once at pool construction, so a 16-worker pool does not
    repeat it 16 times.
    """
    if quiet_fallback:
        silence_numba_fallback()
    install_solve_cache(solve_cache_entries)
    warmup_kernel(kernel, kernel_threads)


def worker_pool(n_workers: int | None = None,
                solve_cache_entries: int = WORKER_SOLVE_CACHE_ENTRIES,
                kernel: str | None = None,
                kernel_threads: int | None = None) -> ProcessPoolExecutor:
    """Construct the standard trial-chunk worker pool.

    The single place pool workers are configured: ``spawn`` start method
    (platform-uniform, no inherited interpreter state), the process solve
    cache installed through the initializer so every worker keeps a warm
    cache across all chunks, grid cells, and server requests it handles,
    and the kernel backend and thread count (resolved *here*, in the
    parent — workers never consult their own environment) pre-warmed so
    JIT compilation happens at pool start-up, not inside the first chunk.
    If the requested backend has to degrade (``"numba"`` without numba
    installed), the parent emits the fallback warning once, here, and the
    workers warm up silently.  Callers own the lifecycle —
    :func:`simulate` / :func:`evaluate_grid` build one per call when
    asked for the process backend with no injected executor (the
    historical behavior), while
    :class:`repro.server.executors.WarmPoolExecutor` keeps one alive
    across requests.
    """
    kernel = resolve_kernel(kernel)
    kernel_threads = resolve_kernel_threads(kernel_threads)
    # Probe the backend in the parent: a missing numba logs its one-time
    # fallback warning here, at pool construction, instead of once per
    # spawned worker process.
    get_backend(kernel, kernel_threads)
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=get_context(_MP_START_METHOD),
        initializer=_init_worker,
        initargs=(solve_cache_entries, kernel, kernel_threads, True),
    )


def _chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous batch-kernel-sized spans.

    At most ``n_chunks`` spans (one per worker), but never more than
    ``n_items / MIN_CHUNK_TRIALS`` — the auto heuristic that keeps every
    chunk large enough for the vectorized kernel to amortize its per-step
    cost.  Chunk layout is invisible in the results (samples concatenate
    in trial order with pre-spawned RNG streams).
    """
    n_chunks = max(1, min(n_chunks, n_items, n_items // MIN_CHUNK_TRIALS or 1))
    base, extra = divmod(n_items, n_chunks)
    bounds, start = [], 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _sum_lp_deltas(deltas) -> dict:
    """Field-wise sum of per-chunk LP-wall counter deltas."""
    total: dict = {}
    for delta in deltas:
        for name, value in delta.items():
            total[name] = total.get(name, 0) + value
    return total


def _map_chunks(pool, n_workers, instance, factory, rngs, config,
                want_completions=False, discipline="v1", streams=None,
                lp_reuse="exact", want_lp_stats=False, kernel="numpy",
                validate=True, kernel_threads=1):
    """Fan trial chunks out over ``pool`` and reassemble them in order.

    Under discipline v2 every chunk receives the run's streams re-based at
    its global start index, so a chunk computes exactly the rows of the
    whole-run draw it covers — chunk layout stays invisible in the samples.
    LP-wall counter deltas (measured inside each worker) sum across chunks.
    """
    bounds = _chunk_bounds(config.n_trials, n_workers)
    chunks = list(pool.map(
        run_trial_batch,
        *zip(
            *[
                (instance, factory, rngs[lo:hi], config.semantics,
                 config.max_steps, want_completions, discipline,
                 None if streams is None else streams.with_offset(lo),
                 lp_reuse, want_lp_stats, kernel, validate, kernel_threads)
                for lo, hi in bounds
            ]
        ),
    ))
    if not (want_completions or want_lp_stats):
        return np.concatenate(chunks)
    parts = [c if isinstance(c, tuple) else (c,) for c in chunks]
    out = (np.concatenate([p[0] for p in parts]),)
    if want_completions:
        out = out + (np.concatenate([p[1] for p in parts]),)
    if want_lp_stats:
        out = out + (_sum_lp_deltas(p[-1] for p in parts),)
    return out


def _fast_path_eligible(factory, discipline: str = "v1") -> bool:
    """True when small batches of this policy should skip the pool.

    Only policies for which in-process batching genuinely amortizes:
    vectorized ones and *keyed* phased ones (trials share rows and LP
    solves).  Fallback-dispatch policies gain nothing from in-process
    batching — for them ``run_trial_batch`` is literally the old scalar
    loop — and replica-phased ones (``phase_grouping == "replica"``, e.g.
    SUU-C under discipline v1) only share their start-up work, so an
    explicit process request stands for both.  Under discipline v2 a
    policy's ``phase_grouping_v2`` wins: SUU-C/SUU-T become keyed
    (array-based cursors share rows), so their small batches stay
    in-process too.
    """
    from repro.schedule.base import supports_batch, supports_phased

    try:
        probe = factory()
    except Exception:
        return False
    if supports_batch(probe):
        return True
    if not supports_phased(probe):
        return False
    grouping = getattr(probe, "phase_grouping", "keyed")
    if discipline == "v2":
        # phase_grouping_v2 only counts when this configuration will
        # actually take the v2 path.  Since the array cursors gained
        # prelude solo rows and obl/repeat inner cursors, every SUU-C /
        # SUU-T configuration does (accepts_discipline_v2 is True across
        # the board); the probe is still consulted so a third-party
        # phased policy that declines v2 keeps its explicit process
        # request.
        accepts = getattr(probe, "accepts_discipline_v2", None)
        if accepts is None or accepts():
            grouping = getattr(probe, "phase_grouping_v2", None) or grouping
    return grouping != "replica"


def _small_batch(config: SimConfig) -> bool:
    """Whether the trial count is below the serial fast-path threshold.

    One predicate shared by :func:`_run_batched` (take the fast path) and
    :func:`evaluate_grid` (skip building a pool) so the two sites cannot
    drift apart.
    """
    return config.n_trials < SERIAL_BATCH_THRESHOLD


def _spec_fast_path_eligible(spec, discipline: str = "v1") -> bool:
    """Fast-path eligibility for a policy *spec* as :func:`evaluate_grid`
    receives it (registry name, ``"auto"``, class, or factory).

    ``"auto"`` resolves per scenario — some precedence-class defaults are
    replica-phased under discipline v1 (suu-c, suu-t) — so it
    conservatively reports False: the sweep builds its shared pool, and
    cells that do take the fast path simply never touch it.
    """
    if isinstance(spec, str):
        if spec == "auto":
            return False
        try:
            spec = policy_factory(spec)
        except Exception:
            return False
    return _fast_path_eligible(spec, discipline)


def _run_batched(
    instance, factory, config: SimConfig, backend: str, n_workers, pool=None,
    want_completions=False, force_transport=False, want_lp_stats=False,
    validate=True, substream=None,
):
    """Dispatch the trials on the requested backend; returns all samples.

    The per-trial RNG tree is spawned up-front either way, so the samples
    are bit-identical across backends, worker counts, and chunk layouts.
    ``pool`` lets :func:`evaluate_grid` (and injected request executors)
    reuse one long-lived pool (with ``n_workers`` workers) across many
    cells/requests instead of paying pool startup per call.
    ``force_transport`` disables the small-batch fast path: an explicitly
    injected executor owns the transport decision, and its warm workers
    (not this process) are where cache reuse should accumulate.
    ``validate=False`` marks a trusted (registry-dispatched) policy —
    per-step assignment validation runs on the first step only.
    ``substream`` (``config.substreams == "per-policy"`` in grid sweeps)
    re-roots *all* the run's randomness — the v1 trial tree and the v2
    batch streams alike — at :meth:`BatchStreams.child` of that index, so
    the same seed gives each compared policy statistically independent
    draws instead of common random numbers.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
    # Resolve every knob here, once, through the unified chain
    # (:func:`repro.api.config.resolve_knobs`), so workers never consult
    # their own environment; under v2 the whole run shares one stream
    # root addressed by global trial index (chunk-layout invariant).
    knobs = config.resolved()
    discipline = knobs.discipline
    lp_reuse = knobs.lp_reuse
    kernel = knobs.kernel
    kernel_threads = knobs.kernel_threads
    sub_root = None
    if substream is not None:
        sub_root = BatchStreams(run_seed_sequence(config.seed)).child(substream).root
    streams = None
    if discipline == "v2":
        streams = BatchStreams(sub_root if sub_root is not None else
                               run_seed_sequence(config.seed))
    base_rng = (ensure_rng(config.seed) if sub_root is None
                else np.random.default_rng(sub_root))
    rngs = spawn_rngs(base_rng, config.n_trials)
    # Serial-batch fast path: for fast-path-eligible policies, small
    # batches lose more to pool dispatch than they gain from parallelism.
    # Identical samples either way — only the transport changes.
    # Fallback- and replica-dispatch policies keep their explicit process
    # request regardless of size.
    if backend == "serial" or (
        not force_transport
        and _small_batch(config)
        and _fast_path_eligible(factory, discipline)
    ):
        return run_trial_batch(
            instance, factory, rngs, config.semantics, config.max_steps,
            want_completions, discipline, streams, lp_reuse, want_lp_stats,
            kernel, validate, kernel_threads,
        )
    n_workers = n_workers or min(os.cpu_count() or 1, config.n_trials)
    if pool is not None:
        return _map_chunks(
            pool, n_workers, instance, factory, rngs, config,
            want_completions, discipline, streams, lp_reuse, want_lp_stats,
            kernel, validate, kernel_threads,
        )
    with worker_pool(n_workers, kernel=kernel,
                     kernel_threads=kernel_threads) as pool:
        return _map_chunks(
            pool, n_workers, instance, factory, rngs, config,
            want_completions, discipline, streams, lp_reuse, want_lp_stats,
            kernel, validate, kernel_threads,
        )


def _resolve_executor(executor, backend, n_workers):
    """Fold an injected request executor into ``(backend, n_workers, pool)``.

    Executors (see :mod:`repro.server.executors`) are duck-typed here so
    the api layer never imports the server layer: anything with a
    ``backend`` attribute (``"serial"``/``"process"``), an ``n_workers``
    attribute, and an ``acquire()`` returning a chunk pool (or ``None``
    for in-process execution) plugs in.  When an executor is given it
    *owns* the transport — it overrides ``backend`` and, for process
    executors, supplies the long-lived pool.
    """
    if executor is None:
        return backend, n_workers, None, False
    pool = executor.acquire()
    return executor.backend, executor.n_workers or n_workers, pool, True


def simulate(
    scenario: Scenario | SUUInstance,
    policy="auto",
    config: SimConfig | None = None,
    *,
    backend: str = "serial",
    n_workers: int | None = None,
    executor=None,
    per_job: bool = False,
    **policy_kwargs,
) -> Report:
    """Measure ``policy`` on ``scenario`` and return a :class:`Report`.

    Parameters
    ----------
    scenario:
        A declarative :class:`~repro.api.scenario.Scenario`, or a
        ready-made :class:`~repro.instance.instance.SUUInstance`.
    policy:
        Registry name or alias, ``"auto"`` (registered default for the
        instance's precedence class), a ``Policy`` subclass, or a
        picklable zero-argument factory.
    config:
        Trial count / seed / semantics / horizon; defaults to
        ``SimConfig()``.
    backend:
        ``"serial"`` or ``"process"`` (bit-identical samples).
    n_workers:
        Process-backend pool size (default: CPU count, capped at the
        trial count).
    executor:
        An injected request executor (e.g. :class:`repro.server.
        executors.WarmPoolExecutor`) that owns the dispatch transport —
        long-lived warm pools reused across calls instead of a per-call
        pool spin-up.  Overrides ``backend``; samples stay bit-identical
        regardless (the per-trial RNG tree is spawned up-front).
    per_job:
        Also collect the per-trial completion matrix and attach
        :class:`~repro.analysis.perjob.PerJobStats` to the report
        (``report.per_job``: per-job tail latencies, completion
        quantiles, makespan attribution).
    **policy_kwargs:
        Extra constructor arguments for the policy (e.g.
        ``inner="obl"`` for SUU-C ablations).
    """
    config = config or SimConfig()
    backend, n_workers, pool, forced = _resolve_executor(
        executor, backend, n_workers
    )
    if isinstance(scenario, SUUInstance):
        declarative, instance = None, scenario
    else:
        declarative, instance = scenario, scenario.to_instance()
    return _simulate_instance(
        declarative, instance, policy, config, backend, n_workers,
        policy_kwargs, pool=pool, per_job=per_job, force_transport=forced,
    )


def _simulate_instance(
    declarative,
    instance,
    policy,
    config,
    backend,
    n_workers,
    policy_kwargs,
    pool=None,
    bound=None,
    per_job=False,
    force_transport=False,
    substream=None,
):
    """Shared core of :func:`simulate` / :func:`evaluate_grid`.

    ``pool`` and ``bound`` let grid sweeps (and injected executors) reuse
    one process pool and one LP lower-bound solve across the cells that
    share a scenario; ``substream`` is the per-policy stream index grid
    sweeps pass under ``config.substreams == "per-policy"``.
    """
    label, factory, trusted = _resolve_policy(policy, instance, policy_kwargs)
    out = _run_batched(
        instance, factory, config, backend, n_workers, pool=pool,
        want_completions=per_job, force_transport=force_transport,
        want_lp_stats=True, validate=not trusted, substream=substream,
    )
    samples = out[0]
    lp_stats = out[-1]
    job_stats = None
    if per_job:
        # Deferred import: analysis -> core -> api is a cycle at package
        # init time (see _lower_bound).
        from repro.analysis.perjob import per_job_stats

        job_stats = per_job_stats(out[1], policy_name=label)
    if bound is None:
        bound = _lower_bound(instance)
    return Report(
        scenario=declarative,
        policy=label,
        stats=MakespanStats(samples=samples, policy_name=label),
        lower_bound=bound,
        config=config,
        per_job=job_stats,
        lp_stats=lp_stats,
        kernel=kernel_info(config.resolved_kernel(),
                           config.resolved_kernel_threads()),
    )


def _lower_bound(instance) -> float:
    # Deferred import: analysis -> core -> api is a cycle while those
    # packages are still initializing, so the bound is resolved at call time.
    from repro.analysis.bounds import lower_bound

    return float(lower_bound(instance))


def evaluate_grid(
    grid: ScenarioGrid | list[Scenario],
    policies=("auto",),
    *,
    config: SimConfig | None = None,
    backend: str = "serial",
    n_workers: int | None = None,
    executor=None,
    per_job: bool = False,
) -> list[Report]:
    """Measure every policy on every scenario of a sweep.

    Returns reports ordered scenario-major (all policies of the first
    scenario, then the second, ...), matching the grid's declaration
    order; each (scenario, policy) cell runs under the same ``config``.

    Per-scenario work is shared across the policy cells: the instance is
    materialized and its LP lower bound solved once, and under
    ``backend="process"`` a single worker pool serves the whole sweep
    instead of being re-spawned per cell.  An injected ``executor``
    replaces that per-sweep pool with its own long-lived one (reused
    across *sweeps*, not just cells) and overrides ``backend``.
    """
    if isinstance(policies, str):
        policies = (policies,)
    config = config or SimConfig()
    knobs = config.resolved()
    discipline = knobs.discipline
    backend, n_workers, injected_pool, forced = _resolve_executor(
        executor, backend, n_workers
    )
    pool_cm = nullcontext(injected_pool)
    # Skip the shared pool only when *every* cell will take the serial-
    # batch fast path; one fallback/replica-dispatch policy in the sweep
    # keeps the single shared pool (per-cell pools would pay spawn-method
    # worker start-up once per cell).  Workers get the process-wide solve
    # cache installed up front, so the round-1 LPs shared by a sweep's
    # cells are solved once per worker, not once per chunk.
    if executor is None and backend == "process" and not (
        _small_batch(config)
        and all(_spec_fast_path_eligible(p, discipline) for p in policies)
    ):
        n_workers = n_workers or min(os.cpu_count() or 1, config.n_trials)
        pool_cm = worker_pool(n_workers, kernel=knobs.kernel,
                              kernel_threads=knobs.kernel_threads)
    # Per-policy substreams: under "per-policy" every policy column gets
    # its own child of the run's stream root (independent estimates);
    # the "shared" default keeps common random numbers across policies.
    per_policy = knobs.substreams == "per-policy"
    reports = []
    with pool_cm as pool:
        for scenario in grid:
            instance = scenario.to_instance()
            bound = _lower_bound(instance)
            for k, policy in enumerate(policies):
                reports.append(
                    _simulate_instance(
                        scenario, instance, policy, config, backend,
                        n_workers, {}, pool=pool, bound=bound,
                        per_job=per_job, force_transport=forced,
                        substream=k if per_policy else None,
                    )
                )
    return reports
