"""The policy registry: one authoritative name -> policy-class mapping.

Before this module existed, policy wiring was duplicated by hand: the CLI
kept a ``POLICIES`` dict, each experiment kept its own label -> factory
dicts, and adding a policy meant editing every one of them.  The registry
inverts that: a policy class declares its own public name (and optional
aliases and precedence-class defaults) at definition time with
:func:`register_policy`, and every consumer — CLI, experiments, the
:mod:`repro.api.service` simulation service — resolves names through the
same table.

Usage::

    from repro.api.registry import register_policy

    @register_policy("sem", aliases=("suu-i-sem",), default_for=("independent",))
    class SUUISemPolicy(Policy):
        ...

    get_policy("suu-i-sem")          # -> SUUISemPolicy (alias resolution)
    default_policy_for(instance)     # -> "sem" for an independent instance
    policy_factory("suu-c", inner="obl")()  # -> configured SUUCPolicy

The registry itself never imports policy modules at import time (policies
import *us* for the decorator); lookups lazily import the built-in policy
packages so ``get_policy`` works no matter which corner of the library was
imported first.
"""

from __future__ import annotations

import functools
import importlib
from dataclasses import dataclass

from repro.errors import UnknownPolicyError

__all__ = [
    "PolicyInfo",
    "register_policy",
    "get_policy",
    "policy_info",
    "list_policies",
    "policy_names",
    "default_policy_for",
    "make_policy",
    "policy_factory",
]

#: Modules whose import registers every built-in policy.  Lookups import
#: these lazily, so the registry module itself stays dependency-free.
_BUILTIN_POLICY_MODULES = ("repro.core", "repro.baselines")


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry.

    Attributes
    ----------
    name:
        Canonical registry name (the CLI spelling, e.g. ``"suu-c"``).
    cls:
        The registered :class:`~repro.schedule.base.Policy` subclass.
    aliases:
        Alternative names resolving to the same class.
    default_for:
        Precedence-class values (``PrecedenceClass.value`` strings) for
        which this policy is the automatic choice of ``policy="auto"``.
    """

    name: str
    cls: type
    aliases: tuple[str, ...] = ()
    default_for: tuple[str, ...] = ()

    @property
    def vectorized(self) -> bool:
        """True when the policy implements the batched-assignment protocol.

        Vectorized policies are dispatched to the trial-batched simulation
        kernel (:func:`repro.sim.batch.run_policy_batch`) by the Monte
        Carlo front ends as one broadcast ``assign_batch`` call per step.
        """
        from repro.schedule.base import supports_batch  # deferred: layer-free

        return supports_batch(self.cls)

    @property
    def phased(self) -> bool:
        """True when the policy implements phase-grouped batch dispatch.

        Phased (adaptive) policies run through the same batch kernel, with
        live trials partitioned by phase key and one ``assign_group`` call
        per distinct key each step.
        """
        from repro.schedule.base import supports_phased  # deferred: layer-free

        return supports_phased(self.cls)

    @property
    def batch_dispatch(self) -> str:
        """How the batch kernel drives this policy.

        ``"vectorized"`` (one broadcast call for all trials),
        ``"phased"`` (grouped dispatch by phase key), or ``"fallback"``
        (per-trial scalar loop).  This is what the ``repro policies``
        CLI's "batched" column shows.
        """
        if self.vectorized:
            return "vectorized"
        if self.phased:
            return "phased"
        return "fallback"

    @property
    def dispatch_detail(self) -> str:
        """The "batched" column text: kernel path plus grouping structure.

        Phased policies append their phase-grouping structure, and — when
        it differs — the structure under RNG discipline v2.  SUU-C/SUU-T
        read ``phased (replica; keyed under v2)``: replica dispatch under
        v1 (pinned by bit-identity), array-cursor keyed grouping under v2
        for *every* configuration (preludes and obl/repeat inners
        included — no replica fallback remains on that path).
        """
        base = self.batch_dispatch
        if base != "phased":
            return base
        g1 = getattr(self.cls, "phase_grouping", "keyed")
        g2 = getattr(self.cls, "phase_grouping_v2", None)
        if g2 and g2 != g1:
            return f"phased ({g1}; {g2} under v2)"
        return f"phased ({g1})"

    @property
    def summary(self) -> str:
        """First line of the policy class docstring."""
        doc = self.cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    @property
    def display_name(self) -> str:
        """The policy's human-readable ``Policy.name`` attribute."""
        return getattr(self.cls, "name", self.name)


_REGISTRY: dict[str, PolicyInfo] = {}
_ALIASES: dict[str, str] = {}  # alias -> canonical name
_DEFAULTS: dict[str, str] = {}  # precedence-class value -> canonical name
_loaded = False


def register_policy(name: str, *, aliases=(), default_for=()):
    """Class decorator registering a policy under ``name``.

    Parameters
    ----------
    name:
        Canonical name.  Must be unique across names and aliases.
    aliases:
        Extra names resolving to the same class.
    default_for:
        Precedence-class value strings this policy is the default for
        (each class may have at most one default policy).

    Raises
    ------
    ValueError
        On a name/alias collision or a duplicated precedence-class default
        (re-registering the *same* class under the same name is a no-op so
        module reloads stay safe).
    """
    aliases = tuple(aliases)
    default_for = tuple(default_for)

    def deco(cls):
        existing = _REGISTRY.get(name)
        if existing is not None:
            if (
                existing.cls.__qualname__ == cls.__qualname__
                and existing.cls.__module__ == cls.__module__
            ):  # module reload
                return cls
            raise ValueError(
                f"policy name {name!r} already registered to {existing.cls.__name__}"
            )
        if name in _ALIASES:
            # _resolve consults aliases first, so a canonical name shadowed
            # by an existing alias would be listed yet unreachable.
            raise ValueError(
                f"policy name {name!r} collides with an alias of {_ALIASES[name]!r}"
            )
        info = PolicyInfo(name=name, cls=cls, aliases=aliases, default_for=default_for)
        for alias in aliases:
            owner = _ALIASES.get(alias) or (alias if alias in _REGISTRY else None)
            if owner is not None:
                raise ValueError(f"policy alias {alias!r} collides with {owner!r}")
        for pc in default_for:
            if pc in _DEFAULTS:
                raise ValueError(
                    f"precedence class {pc!r} already defaults to {_DEFAULTS[pc]!r}"
                )
        _REGISTRY[name] = info
        _ALIASES.update({alias: name for alias in aliases})
        _DEFAULTS.update({pc: name for pc in default_for})
        return cls

    return deco


def _ensure_builtins_loaded() -> None:
    """Import the built-in policy modules once, registering their policies."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    for mod in _BUILTIN_POLICY_MODULES:
        importlib.import_module(mod)


def _resolve(name: str) -> str:
    _ensure_builtins_loaded()
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise UnknownPolicyError(name, known=policy_names())
    return canonical


def policy_info(name: str) -> PolicyInfo:
    """Return the :class:`PolicyInfo` for ``name`` (alias-aware)."""
    return _REGISTRY[_resolve(name)]


def get_policy(name: str) -> type:
    """Return the policy class registered under ``name`` or an alias."""
    return policy_info(name).cls


def list_policies() -> list[PolicyInfo]:
    """All registry entries, sorted by canonical name."""
    _ensure_builtins_loaded()
    return sorted(_REGISTRY.values(), key=lambda info: info.name)


def policy_names(*, include_aliases: bool = False) -> tuple[str, ...]:
    """Sorted canonical names (plus aliases when requested)."""
    _ensure_builtins_loaded()
    names = set(_REGISTRY)
    if include_aliases:
        names |= set(_ALIASES)
    return tuple(sorted(names))


def default_policy_for(instance_or_class) -> str:
    """Canonical name of the default policy for a precedence class.

    Accepts an :class:`~repro.instance.instance.SUUInstance`, a
    :class:`~repro.instance.precedence.PrecedenceClass`, or a class-value
    string such as ``"chains"``.
    """
    _ensure_builtins_loaded()
    pc = instance_or_class
    pc = getattr(pc, "precedence_class", pc)  # SUUInstance -> PrecedenceClass
    pc = getattr(pc, "value", pc)  # PrecedenceClass -> str
    try:
        return _DEFAULTS[pc]
    except KeyError:
        raise UnknownPolicyError(
            f"auto:{pc}", known=sorted(_DEFAULTS)
        ) from None


def make_policy(spec, **kwargs):
    """Instantiate a policy from a flexible ``spec``.

    ``spec`` may be a registry name or alias, a ``Policy`` subclass, or a
    zero-argument factory; ``kwargs`` are passed to the constructor/factory.
    An already-constructed ``Policy`` instance is returned unchanged (and
    rejects ``kwargs``).
    """
    from repro.schedule.base import Policy  # deferred: registry is layer-free

    if isinstance(spec, str):
        return get_policy(spec)(**kwargs)
    if isinstance(spec, type):
        return spec(**kwargs)
    if isinstance(spec, Policy):
        if kwargs:
            raise TypeError(
                f"cannot apply kwargs {sorted(kwargs)} to policy instance {spec.name!r}"
            )
        return spec
    return spec(**kwargs)


def policy_factory(name: str, **kwargs):
    """Return a picklable zero-argument factory for registry policy ``name``.

    The result is what the Monte Carlo estimators expect (a fresh policy
    per trial) and is safe to ship to ``multiprocessing`` workers because
    it closes over the *name*, not the class.
    """
    _resolve(name)  # fail fast on unknown names
    return functools.partial(_construct, name, tuple(sorted(kwargs.items())))


def _construct(name: str, kv: tuple):
    """Module-level construction hook so :func:`policy_factory` pickles."""
    return get_policy(name)(**dict(kv))
