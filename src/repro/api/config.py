"""One config-resolution chain for every run-time knob.

Five knobs steer how a batch of trials executes without changing *what*
is measured: the RNG ``discipline``, the LP survivor-set ``lp_reuse``
mode, the hot-loop ``kernel`` backend, its trial-parallel
``kernel_threads`` count, and the grid-sweep ``substreams`` mode.
Historically each grew its own explicit → env → default chain in the
module that consumed it (``repro.util.rng``, ``repro.core.phased``,
``repro.kernels``); this module is now the **only** place those
environment variables are read, and every consumer — ``SimConfig``,
:func:`repro.api.simulate` / :func:`repro.api.evaluate_grid`,
:func:`repro.sim.batch.run_policy_batch`, the kernel registry, and the
request server — resolves through it (the historical per-module
``resolve_*`` functions remain as thin delegates).

The chain, identical for every knob::

    explicit argument  →  SimConfig field  →  environment variable  →  default

========================  =========================  ==========
knob                      environment variable       default
========================  =========================  ==========
``discipline``            ``REPRO_DISCIPLINE``       ``"v1"``
``lp_reuse``              ``REPRO_LP_REUSE``         ``"exact"``
``kernel``                ``REPRO_KERNEL``           ``"numpy"``
``kernel_threads``        ``REPRO_KERNEL_THREADS``   ``1``
``substreams``            ``REPRO_SUBSTREAMS``       ``"shared"``
========================  =========================  ==========

Unknown values raise ``ValueError`` **including when they arrive via the
environment**, so typos fail loudly instead of silently running the
default.  :func:`resolve_knobs` resolves all five at once into a frozen
:class:`ResolvedKnobs` snapshot — the value that feeds suite-cell
digests (:mod:`repro.suite.digest`): a cell's content address commits to
the knobs it actually ran under, not to however the environment happened
to be set.

Two auxiliary settings ride the same single-reader rule (they tune the
machinery the knobs select, and are consulted at use sites rather than
snapshotted): ``REPRO_LP_REUSE_EPS`` (:func:`lp_reuse_eps`) and
``REPRO_SOLVE_CACHE`` (:func:`solve_cache_enabled`).

This module deliberately imports only the *constant tables* of the
low-level modules (never their machinery), so it can be imported lazily
from any layer without cycles.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.core.phased import DEFAULT_LP_REUSE_EPS, LP_REUSE_MODES
from repro.kernels import KERNEL_ENV_VAR, KERNEL_THREADS_ENV_VAR, KERNELS
from repro.util.rng import DISCIPLINE_ENV_VAR, DISCIPLINES

__all__ = [
    "DISCIPLINES",
    "DISCIPLINE_ENV_VAR",
    "LP_REUSE_MODES",
    "LP_REUSE_ENV_VAR",
    "LP_REUSE_EPS_ENV_VAR",
    "KERNELS",
    "KERNEL_ENV_VAR",
    "KERNEL_THREADS_ENV_VAR",
    "SUBSTREAMS_MODES",
    "SUBSTREAMS_ENV_VAR",
    "SOLVE_CACHE_ENV_VAR",
    "KNOB_NAMES",
    "ResolvedKnobs",
    "resolve_knobs",
    "resolve_discipline",
    "resolve_lp_reuse",
    "resolve_kernel",
    "resolve_kernel_threads",
    "resolve_substreams",
    "lp_reuse_eps",
    "solve_cache_enabled",
]

#: Environment variable supplying the default lp_reuse mode.
LP_REUSE_ENV_VAR = "REPRO_LP_REUSE"

#: Environment variable tuning subset-reuse's length-overhead gate.
LP_REUSE_EPS_ENV_VAR = "REPRO_LP_REUSE_EPS"

#: Recognized grid-sweep substream modes; ``SUBSTREAMS_MODES[0]`` is the
#: default (common random numbers across a sweep's policy columns).
SUBSTREAMS_MODES: tuple[str, ...] = ("shared", "per-policy")

#: Environment variable supplying the default substreams mode.
SUBSTREAMS_ENV_VAR = "REPRO_SUBSTREAMS"

#: Environment variable disabling the process solve cache (``"0"``).
SOLVE_CACHE_ENV_VAR = "REPRO_SOLVE_CACHE"

#: The five knobs, in the order :class:`ResolvedKnobs` carries them.
KNOB_NAMES: tuple[str, ...] = (
    "discipline", "lp_reuse", "kernel", "kernel_threads", "substreams",
)


def resolve_discipline(discipline: str | None = None) -> str:
    """The active RNG discipline: argument, else env var, else ``"v1"``.

    Raises :class:`ValueError` on anything outside :data:`DISCIPLINES`
    (including a bad ``REPRO_DISCIPLINE`` value, so typos fail loudly
    rather than silently running v1).
    """
    if discipline is None:
        discipline = os.environ.get(DISCIPLINE_ENV_VAR) or DISCIPLINES[0]
    if discipline not in DISCIPLINES:
        raise ValueError(
            f"unknown RNG discipline {discipline!r}; expected one of {DISCIPLINES}"
        )
    return discipline


def resolve_lp_reuse(mode: str | None = None) -> str:
    """The LP survivor-set reuse mode: argument → ``REPRO_LP_REUSE`` →
    ``"exact"``; unknown values (env included) raise ``ValueError``."""
    if mode is None:
        mode = os.environ.get(LP_REUSE_ENV_VAR) or LP_REUSE_MODES[0]
    if mode not in LP_REUSE_MODES:
        raise ValueError(
            f"unknown lp_reuse mode {mode!r}; expected one of {LP_REUSE_MODES}"
        )
    return mode


def resolve_kernel(kernel: str | None = None) -> str:
    """The hot-loop kernel backend: argument → ``REPRO_KERNEL`` →
    ``"numpy"``; unknown names (env included) raise ``ValueError``."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or KERNELS[0]
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel backend {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def resolve_kernel_threads(threads: int | None = None) -> int:
    """The trial-parallel worker count: argument →
    ``REPRO_KERNEL_THREADS`` → 1; non-integer or < 1 values (env
    included) raise ``ValueError``."""
    if threads is None:
        raw = os.environ.get(KERNEL_THREADS_ENV_VAR)
        if not raw:
            return 1
        threads = raw  # type: ignore[assignment]
    try:
        count = int(threads)
    except (TypeError, ValueError):
        raise ValueError(
            f"kernel_threads must be an integer >= 1, got {threads!r}"
        ) from None
    if count < 1:
        raise ValueError(f"kernel_threads must be >= 1, got {count}")
    return count


def resolve_substreams(mode: str | None = None) -> str:
    """The grid-sweep substream mode: argument → ``REPRO_SUBSTREAMS`` →
    ``"shared"``; unknown modes (env included) raise ``ValueError``."""
    if mode is None:
        mode = os.environ.get(SUBSTREAMS_ENV_VAR) or SUBSTREAMS_MODES[0]
    if mode not in SUBSTREAMS_MODES:
        raise ValueError(
            f"unknown substreams mode {mode!r}; expected "
            f"'shared' or 'per-policy'"
        )
    return mode


def lp_reuse_eps() -> float:
    """Subset-reuse length-overhead tolerance (``REPRO_LP_REUSE_EPS``)."""
    eps = float(os.environ.get(LP_REUSE_EPS_ENV_VAR, DEFAULT_LP_REUSE_EPS))
    if not (0.0 <= eps < 1.0):
        raise ValueError(f"lp_reuse eps must be in [0, 1), got {eps}")
    return eps


def solve_cache_enabled() -> bool:
    """Whether the process solve cache is enabled (``REPRO_SOLVE_CACHE``
    anything-but-``"0"``; the size bound is the cache's own concern)."""
    return os.environ.get(SOLVE_CACHE_ENV_VAR, "1") != "0"


@dataclass(frozen=True)
class ResolvedKnobs:
    """A frozen snapshot of all five knobs after resolution.

    Every field holds the concrete value trials will run under — no
    ``None`` placeholders left.  The snapshot is JSON-ready via
    :meth:`as_dict`, which is what suite-cell digests hash: re-running a
    suite under a different ``REPRO_*`` environment addresses different
    cells, so cached results are never served across a knob change.
    """

    discipline: str = DISCIPLINES[0]
    lp_reuse: str = LP_REUSE_MODES[0]
    kernel: str = KERNELS[0]
    kernel_threads: int = 1
    substreams: str = SUBSTREAMS_MODES[0]

    def as_dict(self) -> dict:
        """JSON-compatible representation (insertion-ordered fields)."""
        return dataclasses.asdict(self)


_RESOLVERS = {
    "discipline": resolve_discipline,
    "lp_reuse": resolve_lp_reuse,
    "kernel": resolve_kernel,
    "kernel_threads": resolve_kernel_threads,
    "substreams": resolve_substreams,
}


def resolve_knobs(
    config=None,
    *,
    discipline: str | None = None,
    lp_reuse: str | None = None,
    kernel: str | None = None,
    kernel_threads: int | None = None,
    substreams: str | None = None,
) -> ResolvedKnobs:
    """Resolve all five knobs through the one documented chain.

    Per knob: the explicit keyword wins, then the same-named field of
    ``config`` (anything with the attribute — normally a
    :class:`~repro.api.scenario.SimConfig`; duck-typed so this module
    stays import-cycle-free), then the knob's environment variable, then
    its default.  Unknown values raise ``ValueError`` wherever they came
    from.
    """
    explicit = {
        "discipline": discipline,
        "lp_reuse": lp_reuse,
        "kernel": kernel,
        "kernel_threads": kernel_threads,
        "substreams": substreams,
    }
    resolved = {}
    for name, value in explicit.items():
        if value is None and config is not None:
            value = getattr(config, name, None)
        resolved[name] = _RESOLVERS[name](value)
    return ResolvedKnobs(**resolved)
