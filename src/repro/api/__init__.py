"""``repro.api`` — the unified front door to the reproduction.

Four layers, each usable on its own:

* :mod:`repro.api.config` — the one documented knob-resolution chain
  (explicit argument → :class:`SimConfig` field → ``REPRO_*`` environment
  variable → default) behind :func:`resolve_knobs`; every env-sensitive
  knob in the library resolves here and nowhere else.
* :mod:`repro.api.registry` — every policy class registers itself with
  :func:`register_policy`; consumers resolve names (and aliases, and
  per-precedence-class defaults) with :func:`get_policy`,
  :func:`list_policies`, and :func:`default_policy_for`.
* :mod:`repro.api.scenario` — frozen, JSON-round-trippable
  :class:`Scenario` / :class:`SimConfig` recipes and :class:`ScenarioGrid`
  sweeps describe *what* to simulate as plain data.
* :mod:`repro.api.service` — :func:`simulate` and :func:`evaluate_grid`
  turn scenarios into :class:`Report` objects, batching Monte Carlo trials
  over a ``multiprocessing`` pool (``backend="process"``) with
  bit-identical results to the serial path.

Quick start::

    from repro.api import Scenario, simulate

    report = simulate(Scenario(shape="chains", n_jobs=24, n_machines=6),
                      policy="auto", backend="process")
    print(report.mean, report.ratio)
"""

from repro.api.config import KNOB_NAMES, ResolvedKnobs, resolve_knobs
from repro.api.registry import (
    PolicyInfo,
    default_policy_for,
    get_policy,
    list_policies,
    make_policy,
    policy_factory,
    policy_info,
    policy_names,
    register_policy,
)
from repro.api.scenario import (
    FAILURE_MODELS,
    SCENARIO_SHAPES,
    Scenario,
    ScenarioGrid,
    SimConfig,
)
from repro.api.service import Report, evaluate_grid, simulate

__all__ = [
    # Config resolution
    "KNOB_NAMES",
    "ResolvedKnobs",
    "resolve_knobs",
    # Registry
    "PolicyInfo",
    "register_policy",
    "get_policy",
    "policy_info",
    "list_policies",
    "policy_names",
    "default_policy_for",
    "make_policy",
    "policy_factory",
    # Scenarios
    "Scenario",
    "SimConfig",
    "ScenarioGrid",
    "SCENARIO_SHAPES",
    "FAILURE_MODELS",
    # Service
    "Report",
    "simulate",
    "evaluate_grid",
]
