"""Experiment harness: one runner per DESIGN.md experiment id.

``python -m repro.experiments`` executes every experiment at its default
(full) configuration and rewrites the measured-results section of
EXPERIMENTS.md; the benchmark suite runs the same functions at reduced
sizes and prints their tables.
"""

from repro.experiments.adaptive_exp import run_adaptive
from repro.experiments.chains import run_chains, run_delay, run_segments_ablation
from repro.experiments.common import ExperimentResult
from repro.experiments.competitive import run_competitive
from repro.experiments.equivalence import run_equivalence
from repro.experiments.independent import (
    run_lp_rounding,
    run_obl_scaling,
    run_rounds_ablation,
    run_sem_scaling,
)
from repro.experiments.optimal_exp import run_opt_tiny
from repro.experiments.perjob_exp import run_perjob
from repro.experiments.rounding_ablation import run_rounding_ablation
from repro.experiments.stochastic_exp import run_stochastic
from repro.experiments.table1 import run_table1
from repro.experiments.trees import run_trees

#: Registry of every experiment runner, keyed by DESIGN.md experiment id.
ALL_EXPERIMENTS = {
    "T1": run_table1,
    "E-OBL": run_obl_scaling,
    "E-SEM": run_sem_scaling,
    "E-LP1": run_lp_rounding,
    "E-CHAIN": run_chains,
    "E-DELAY": run_delay,
    "E-TREE": run_trees,
    "E-EQUIV": run_equivalence,
    "E-STOCH": run_stochastic,
    "E-OPT": run_opt_tiny,
    "E-COMP": run_competitive,
    "E-PERJOB": run_perjob,
    "A-ROUND": run_rounding_ablation,
    "A-ROUNDS": run_rounds_ablation,
    "A-SEG": run_segments_ablation,
    "A-ADAPT": run_adaptive,
}

__all__ = [
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_table1",
    "run_competitive",
    "run_adaptive",
    "run_obl_scaling",
    "run_sem_scaling",
    "run_lp_rounding",
    "run_chains",
    "run_delay",
    "run_trees",
    "run_equivalence",
    "run_stochastic",
    "run_opt_tiny",
    "run_perjob",
    "run_rounding_ablation",
    "run_rounds_ablation",
    "run_segments_ablation",
]
