"""Experiment harness: one runner per DESIGN.md experiment id.

Each runner registers itself with
:func:`repro.experiments.common.register_experiment` at import time, so
``python -m repro.experiments``, the benchmark suite, and declarative
suite files (:mod:`repro.suite`) dispatch through one id → runner table
(:func:`get_experiment` / :func:`experiment_ids`).

``python -m repro.experiments`` executes every experiment at its default
(full) configuration and rewrites the measured-results section of
EXPERIMENTS.md; the benchmark suite runs the same functions at reduced
sizes and prints their tables.

The legacy ``ALL_EXPERIMENTS`` dict is still importable but deprecated —
it is rebuilt from the registry on access and warns; new code should call
:func:`all_experiments` (or :func:`get_experiment` for one id).
"""

import warnings

from repro.experiments.adaptive_exp import run_adaptive
from repro.experiments.chains import run_chains, run_delay, run_segments_ablation
from repro.experiments.common import (
    ExperimentResult,
    all_experiments,
    experiment_ids,
    get_experiment,
    register_experiment,
)
from repro.experiments.competitive import run_competitive
from repro.experiments.equivalence import run_equivalence
from repro.experiments.independent import (
    run_lp_rounding,
    run_obl_scaling,
    run_rounds_ablation,
    run_sem_scaling,
)
from repro.experiments.optimal_exp import run_opt_tiny
from repro.experiments.perjob_exp import run_perjob
from repro.experiments.rounding_ablation import run_rounding_ablation
from repro.experiments.stochastic_exp import run_stochastic
from repro.experiments.table1 import run_table1
from repro.experiments.trees import run_trees

__all__ = [
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "experiment_ids",
    "all_experiments",
    "run_table1",
    "run_competitive",
    "run_adaptive",
    "run_obl_scaling",
    "run_sem_scaling",
    "run_lp_rounding",
    "run_chains",
    "run_delay",
    "run_trees",
    "run_equivalence",
    "run_stochastic",
    "run_opt_tiny",
    "run_perjob",
    "run_rounding_ablation",
    "run_rounds_ablation",
    "run_segments_ablation",
]


def __getattr__(name):
    if name == "ALL_EXPERIMENTS":
        warnings.warn(
            "repro.experiments.ALL_EXPERIMENTS is deprecated; use "
            "repro.experiments.all_experiments() (or get_experiment(id))",
            DeprecationWarning,
            stacklevel=2,
        )
        return all_experiments()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
