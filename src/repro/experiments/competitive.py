"""E-COMP: the competitive-analysis view behind Theorem 4 (Section 3).

The paper's SEM analysis is a competitive argument: fix the hidden input
``{r_j}`` (equivalently the thresholds ``theta_j = -log2 r_j``), and
compare the online algorithm's makespan against the *offline* optimum OFF
that knows the thresholds.  OFF must deliver at least ``theta_j`` mass to
each job, so ``t*_LP1`` with per-job mass targets ``theta_j`` lower-bounds
``T_OFF(theta)``.

This experiment draws threshold profiles — including adversarial
point-mass profiles far in the exponential's tail — runs SEM (and
baselines) on the *fixed* thresholds via the SUU* engine, and reports
``makespan / offline LP bound``.  Theorem 4's proof predicts the SEM column
stays bounded by ``O(K)`` uniformly over threshold profiles; an oblivious
O(log n) algorithm degrades as thresholds grow (it keeps delivering
round-1-sized doses).
"""

from __future__ import annotations

import numpy as np

from repro.core.suu_i_obl import SUUIOblPolicy
from repro.core.suu_i_sem import SUUISemPolicy, paper_round_count
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import independent_instance
from repro.lp.model import LinearProgram
from repro.core.lp1 import MASS_EPS
from repro.sim.engine import run_policy
from repro.util.logmass import capped_logmass
from repro.util.rng import ensure_rng

__all__ = ["offline_threshold_bound", "run_competitive"]


def offline_threshold_bound(instance, thresholds: np.ndarray) -> float:
    """LP lower bound on any offline schedule for fixed thresholds.

    Minimizes ``t`` subject to machine loads ``<= t`` and per-job capped
    mass ``>= theta_j`` (capping each ``l_ij`` at ``theta_j`` is harmless
    for the bound since integral schedules deliver mass stepwise and the
    offline optimum is integral).
    """
    theta = np.asarray(thresholds, dtype=np.float64)
    m, n = instance.ell.shape
    lp = LinearProgram()
    t_var = lp.add_variable(objective=1.0)
    var_of = {}
    for j in range(n):
        cap = max(float(theta[j]), 1e-9)
        col = capped_logmass(instance.ell[:, j], cap)
        for i in np.nonzero(col > MASS_EPS)[0]:
            var_of[(int(i), j)] = (lp.add_variable(objective=0.0), float(col[i]))
    for j in range(n):
        coeffs = {
            var: w for (i, jj), (var, w) in var_of.items() if jj == j
        }
        lp.add_ge(coeffs, float(theta[j]))
    for i in range(m):
        coeffs = {var: 1.0 for (ii, _), (var, _) in var_of.items() if ii == i}
        if coeffs:
            coeffs[t_var] = -1.0
            lp.add_le(coeffs, 0.0)
    return float(lp.solve().value)


def _threshold_profile(kind: str, n: int, rng) -> np.ndarray:
    """Threshold generators: the random law and adversarial point masses."""
    if kind == "random":
        return rng.exponential(scale=1.0 / np.log(2.0), size=n)
    if kind.startswith("point-"):
        value = float(kind.split("-", 1)[1])
        return np.full(n, value)
    if kind == "one-heavy":
        theta = rng.exponential(scale=1.0 / np.log(2.0), size=n)
        theta[int(rng.integers(n))] = 24.0
        return theta
    raise ValueError(f"unknown threshold profile {kind!r}")


@register_experiment("E-COMP")
def run_competitive(
    *,
    n: int = 30,
    m: int = 8,
    profiles=("random", "point-1", "point-8", "point-16", "one-heavy"),
    n_trials: int = 10,
    seed: int = 15,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """SEM vs OBL competitively, on fixed threshold profiles."""
    rng = ensure_rng(seed)
    inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
    res = ExperimentResult(
        exp_id="E-COMP",
        title="Section 3 competitive view: makespan / offline bound, fixed thresholds",
        headers=[
            "thresholds",
            "offline LP bound",
            "SEM competitive",
            "OBL competitive",
            "K",
        ],
    )
    for kind in profiles:
        sem_ratios, obl_ratios, bounds = [], [], []
        for _ in range(n_trials):
            theta = _threshold_profile(kind, n, rng.spawn(1)[0])
            off = max(offline_threshold_bound(inst, theta), 1.0)
            sem = run_policy(
                inst,
                SUUISemPolicy(),
                rng.spawn(1)[0],
                semantics="suu_star",
                thresholds=theta,
                max_steps=max_steps,
            )
            obl = run_policy(
                inst,
                SUUIOblPolicy(),
                rng.spawn(1)[0],
                semantics="suu_star",
                thresholds=theta,
                max_steps=max_steps,
            )
            bounds.append(off)
            sem_ratios.append(sem.makespan / off)
            obl_ratios.append(obl.makespan / off)
        res.add(
            kind,
            float(np.mean(bounds)),
            float(np.mean(sem_ratios)),
            float(np.mean(obl_ratios)),
            paper_round_count(n, m),
        )
    res.notes.append(
        "Theorem 4's proof predicts the SEM column stays O(K) across "
        "profiles; OBL degrades as thresholds grow (point-16 >> point-1)."
    )
    return res
