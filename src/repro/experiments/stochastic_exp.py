"""E-STOCH: stochastic scheduling (Appendix C, Theorem 13).

STC-I (doubling Lawler–Labetoulle rounds) against the ``O(log n)``-style
static-mean repetition and the serial fastest-machine floor, all measured
against the realized preemptive optimum ``E[C*(p)]``.
"""

from __future__ import annotations

from repro.core.stoch import (
    estimate_stochastic,
    serial_fastest_trial,
    static_mean_trial,
    stc_i_trial,
    stochastic_round_count,
)
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import stochastic_instance
from repro.util.rng import ensure_rng

__all__ = ["run_stochastic"]


@register_experiment("E-STOCH")
def run_stochastic(
    *,
    sizes=((10, 4), (20, 6), (40, 8)),
    n_trials: int = 15,
    seed: int = 12,
) -> ExperimentResult:
    """Compare STC-I (both variants) against baselines on specialist speeds."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-STOCH",
        title="Theorem 13: STC-I vs baselines (ratios vs E[C*(p)])",
        headers=[
            "n",
            "m",
            "K",
            "E[C*(p)]",
            "serial ratio",
            "static-mean ratio",
            "STC-I ratio",
            "STC-I restart ratio",
        ],
    )

    def restart_trial(instance, realized):
        return stc_i_trial(instance, realized, variant="restart")

    restart_trial.__name__ = "stc_i_restart"

    for n, m in sizes:
        inst = stochastic_instance(n, m, rng=rng.spawn(1)[0], speed_model="specialist")
        rows = {}
        lb_mean = None
        for label, fn in (
            ("serial", serial_fastest_trial),
            ("static", static_mean_trial),
            ("stc_i", stc_i_trial),
            ("restart", restart_trial),
        ):
            stats, lbs = estimate_stochastic(inst, fn, n_trials, rng.spawn(1)[0])
            rows[label] = stats.mean / lbs.mean
            lb_mean = lbs.mean
        res.add(
            n,
            m,
            stochastic_round_count(n),
            lb_mean,
            rows["serial"],
            rows["static"],
            rows["stc_i"],
            rows["restart"],
        )
    res.notes.append(
        "E[C*(p)] (mean realized preemptive optimum) is a valid lower bound "
        "on E[T_OPT]; STC-I should dominate both baselines."
    )
    return res
