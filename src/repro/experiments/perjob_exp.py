"""E-PERJOB: which jobs dominate the makespan?

The approximation-ratio experiments reduce every execution to one number;
this one keeps the ``(n_trials, n_jobs)`` completion matrix
(:class:`~repro.analysis.perjob.PerJobStats`, via
``simulate(per_job=True)``) and asks the capacity-planner question the
ratio tables hide: *which* jobs finish last, how heavy are their tails,
and does the paper policy move the bottleneck relative to the greedy
baseline?

For a chains workload the table lists the jobs with the highest makespan
attribution (``critical_fraction`` — the fraction of trials a job finishes
last, ties split), alongside their mean / p99 completion steps under the
precedence-matched paper policy and under greedy.  A concentrated
``crit%`` column is the concrete story behind a competitive ratio: the
policy's expected makespan is owned by those few jobs.
"""

from __future__ import annotations

import numpy as np

from repro.api.scenario import Scenario, SimConfig
from repro.api.service import simulate
from repro.experiments.common import ExperimentResult, register_experiment

__all__ = ["run_perjob"]


@register_experiment("E-PERJOB")
def run_perjob(
    *,
    shape: str = "chains",
    n_jobs: int = 18,
    n_machines: int = 5,
    model: str = "uniform",
    instance_seed: int = 7,
    n_trials: int = 200,
    seed: int = 11,
    top_k: int = 6,
    discipline: str | None = None,
) -> ExperimentResult:
    """Rank jobs by makespan attribution under the auto policy vs greedy."""
    scenario = Scenario(
        shape=shape, n_jobs=n_jobs, n_machines=n_machines, model=model,
        seed=instance_seed,
    )
    config = SimConfig(n_trials=n_trials, seed=seed, discipline=discipline)
    auto = simulate(scenario, "auto", config, per_job=True)
    greedy = simulate(scenario, "greedy", config, per_job=True)

    res = ExperimentResult(
        exp_id="E-PERJOB",
        title=f"Makespan attribution: {auto.policy} vs greedy on "
              f"{scenario.label()}",
        headers=[
            "job",
            f"{auto.policy} crit%",
            "mean",
            "p99",
            "greedy crit%",
            "greedy mean",
            "greedy p99",
        ],
    )
    crit = auto.per_job.critical_fraction
    order = np.argsort(crit)[::-1][:top_k]
    p99 = auto.per_job.quantile(0.99)
    g_crit = greedy.per_job.critical_fraction
    g_p99 = greedy.per_job.quantile(0.99)
    for j in order:
        res.add(
            int(j),
            f"{100 * crit[j]:.1f}",
            f"{auto.per_job.mean[j]:.1f}",
            f"{p99[j]:.0f}",
            f"{100 * g_crit[j]:.1f}",
            f"{greedy.per_job.mean[j]:.1f}",
            f"{g_p99[j]:.0f}",
        )
    covered = float(crit[order].sum())
    res.notes.append(
        f"top {top_k} jobs own {100 * covered:.0f}% of {auto.policy}'s "
        f"makespan attribution ({n_trials} trials; E[T]={auto.mean:.2f} vs "
        f"greedy {greedy.mean:.2f})"
    )
    res.notes.append(
        "crit% = fraction of trials the job finishes last (ties split); "
        "sums to 100% over all jobs — the makespan's ownership table."
    )
    return res
