"""A-ROUND: ablation of the Lemma 2 rounding constant.

The paper's geometric-series argument needs scale 6.  Smaller scales can
still *happen* to produce feasible roundings (the argument is worst-case);
this ablation measures, over an instance battery, how often each scale
misses the mass target and what load blow-up each scale pays.
"""

from __future__ import annotations

import numpy as np

from repro.core.lp1 import solve_lp1
from repro.core.rounding import round_assignment
from repro.errors import RoundingError
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import independent_instance
from repro.util.rng import ensure_rng

__all__ = ["run_rounding_ablation"]


@register_experiment("A-ROUND")
def run_rounding_ablation(
    *,
    scales=(2, 3, 6, 9, 12),
    n_instances: int = 20,
    n: int = 40,
    m: int = 8,
    seed: int = 14,
) -> ExperimentResult:
    """Sweep the rounding scale over a battery of specialist instances."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="A-ROUND",
        title="Ablation: Lemma 2 rounding scale",
        headers=[
            "scale",
            "paper?",
            "feasible",
            "infeasible",
            "mean load/t*",
            "mean mass margin",
        ],
    )
    instances = [
        independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
        for _ in range(n_instances)
    ]
    relaxations = [solve_lp1(inst, target=0.5) for inst in instances]
    for scale in scales:
        ok = 0
        bad = 0
        blowups = []
        margins = []
        for relax in relaxations:
            try:
                rounded = round_assignment(relax, scale=scale)
            except RoundingError:
                bad += 1
                continue
            ok += 1
            blowups.append(rounded.load / max(relax.t_star, 1e-12))
            mass = rounded.mass_per_job(relax.ell_capped)
            margins.append(float(np.min(mass[list(relax.jobs)]) / relax.target))
        res.add(
            scale,
            "yes" if scale == 6 else "",
            ok,
            bad,
            float(np.mean(blowups)) if blowups else float("nan"),
            float(np.mean(margins)) if margins else float("nan"),
        )
    res.notes.append(
        "scale >= 6 must have zero infeasible roundings (Lemma 2); smaller "
        "scales trade load for occasional infeasibility."
    )
    return res
