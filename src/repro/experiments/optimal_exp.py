"""E-OPT: ground truth on tiny instances.

The exact DP gives true ``E[T_OPT]``, which lets us (a) measure how tight
the LP lower bound is (it is what all large-scale ratios divide by), and
(b) report *true* approximation ratios for the algorithms on instances
where that is computable at all.
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound
from repro.api.registry import default_policy_for, policy_factory
from repro.baselines.malewicz import optimal_chains_expected_makespan
from repro.baselines.optimal import optimal_expected_makespan
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import chain_instance, independent_instance
from repro.sim.montecarlo import estimate_expected_makespan
from repro.util.rng import ensure_rng

__all__ = ["run_opt_tiny"]


@register_experiment("E-OPT")
def run_opt_tiny(
    *,
    configs=(
        ("independent", 5, 2),
        ("independent", 7, 3),
        ("chains", 6, 2),
        ("chains", 18, 3),
    ),
    n_trials: int = 400,
    seed: int = 13,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """Exact OPT vs lower bound vs algorithms on exactly-solvable instances.

    Independent configs use the generic subset DP (``n <= 16``); chain
    configs use the Malewicz-style chain-progress DP, which scales to much
    longer chains when the width is small.
    """
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-OPT",
        title="Exact optimum on tiny instances: LB tightness and true ratios",
        headers=[
            "workload",
            "n",
            "m",
            "LB",
            "E[T_OPT] (DP)",
            "OPT/LB",
            "paper-alg true ratio",
            "greedy true ratio",
        ],
    )
    for kind, n, m in configs:
        if kind == "independent":
            inst = independent_instance(n, m, "uniform", rng=rng.spawn(1)[0])
            paper_factory = policy_factory(default_policy_for(inst))
            opt = optimal_expected_makespan(inst)
        else:
            inst = chain_instance(n, m, 2, "uniform", rng=rng.spawn(1)[0])
            paper_factory = policy_factory(default_policy_for(inst))
            opt = optimal_chains_expected_makespan(inst)
        bound = lower_bound(inst)
        sem = estimate_expected_makespan(
            inst, paper_factory, n_trials, rng.spawn(1)[0], max_steps=max_steps
        )
        greedy = estimate_expected_makespan(
            inst, policy_factory("greedy"), n_trials, rng.spawn(1)[0], max_steps=max_steps
        )
        res.add(
            kind,
            n,
            m,
            bound,
            opt.value,
            opt.value / bound,
            sem.mean / opt.value,
            greedy.mean / opt.value,
        )
    res.notes.append(
        "OPT/LB calibrates how much the large-scale measured ratios "
        "over-state the truth."
    )
    return res
