"""Independent-jobs experiments: E-OBL, E-SEM, E-LP1, A-ROUNDS.

These verify Theorems 3 and 4 empirically: SUU-I-OBL's ratio should track
``log2 n`` while SUU-I-SEM's stays near-flat (``log log``), and Lemma 2's
rounding should inflate the LP value by only a constant.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import lower_bound
from repro.analysis.ratios import measure_ratio
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.lp1 import solve_lp1
from repro.core.rounding import round_assignment
from repro.core.suu_i_obl import build_obl_schedule
from repro.core.suu_i_sem import SUUISemPolicy, paper_round_count
from repro.experiments.common import ExperimentResult, loglog, register_experiment, safe_log2
from repro.instance.generators import independent_instance
from repro.sim.montecarlo import sample_oblivious_repeat_makespans
from repro.util.rng import ensure_rng

__all__ = ["run_obl_scaling", "run_sem_scaling", "run_lp_rounding", "run_rounds_ablation"]


@register_experiment("E-OBL")
def run_obl_scaling(
    *,
    ns=(10, 20, 40, 80, 160),
    m: int = 10,
    n_trials: int = 200,
    n_instances: int = 3,
    seed: int = 3,
) -> ExperimentResult:
    """E-OBL: SUU-I-OBL ratio vs ``log2 n`` (uses the exact repeat sampler).

    Ratios are averaged over ``n_instances`` independent instance draws per
    size to suppress instance-to-instance noise.
    """
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-OBL",
        title="Theorem 3: oblivious repeat, ratio growth vs log2 n",
        headers=["n", "m", "mean LB", "mean E[T] OBL", "ratio", "ratio/log2(n)"],
    )
    for n in ns:
        bounds, means = [], []
        for _ in range(n_instances):
            inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
            bounds.append(lower_bound(inst))
            schedule = build_obl_schedule(inst)
            stats = sample_oblivious_repeat_makespans(
                inst, schedule, n_trials, rng.spawn(1)[0]
            )
            means.append(stats.mean)
        ratio = float(np.mean([mu / b for mu, b in zip(means, bounds)]))
        res.add(
            n, m, float(np.mean(bounds)), float(np.mean(means)), ratio,
            ratio / safe_log2(n),
        )
    res.notes.append(
        "ratio/log2(n) should be roughly flat if the O(log n) bound is tight "
        "on specialist workloads."
    )
    return res


@register_experiment("E-SEM")
def run_sem_scaling(
    *,
    ns=(10, 20, 40, 80),
    m: int = 10,
    n_trials: int = 30,
    n_trials_obl: int = 200,
    n_instances: int = 3,
    seed: int = 4,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """E-SEM: SEM vs OBL vs greedy; SEM's curve should flatten (Theorem 4)."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-SEM",
        title="Theorem 4: semioblivious rounds vs O(log n) baselines",
        headers=[
            "n",
            "m",
            "mean LB",
            "greedy ratio",
            "OBL ratio",
            "SEM ratio",
            "K (paper)",
            "SEM/loglog",
        ],
    )
    for n in ns:
        bounds, r_greedy, r_obl, r_sem = [], [], [], []
        for _ in range(n_instances):
            inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
            bound = lower_bound(inst)
            bounds.append(bound)
            greedy = measure_ratio(
                inst, GreedyLRPolicy, n_trials, rng.spawn(1)[0], bound=bound,
                max_steps=max_steps,
            )
            r_greedy.append(greedy.ratio)
            schedule = build_obl_schedule(inst)
            obl_stats = sample_oblivious_repeat_makespans(
                inst, schedule, n_trials_obl, rng.spawn(1)[0]
            )
            r_obl.append(obl_stats.mean / bound)
            sem = measure_ratio(
                inst, SUUISemPolicy, n_trials, rng.spawn(1)[0], bound=bound,
                max_steps=max_steps,
            )
            r_sem.append(sem.ratio)
        sem_ratio = float(np.mean(r_sem))
        res.add(
            n,
            m,
            float(np.mean(bounds)),
            float(np.mean(r_greedy)),
            float(np.mean(r_obl)),
            sem_ratio,
            paper_round_count(n, m),
            sem_ratio / loglog(min(m, n)),
        )
    res.notes.append(
        "SEM's ratio should stay roughly flat in n while greedy/OBL grow; "
        "each row averages over independent instance draws."
    )
    return res


@register_experiment("E-LP1")
def run_lp_rounding(
    *,
    sizes=((20, 5), (40, 10), (80, 20)),
    models=("uniform", "specialist", "powerlaw"),
    seed: int = 5,
) -> ExperimentResult:
    """E-LP1: Lemma 2 rounding quality — load blow-up and mass margins."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-LP1",
        title="Lemmas 1-2: rounding blow-up (load / t*) and mass margin",
        headers=["model", "n", "m", "t*", "rounded load", "load/t*", "min mass/L"],
    )
    for model in models:
        for n, m in sizes:
            inst = independent_instance(n, m, model, rng=rng.spawn(1)[0])
            relax = solve_lp1(inst, target=0.5)
            rounded = round_assignment(relax)
            mass = rounded.mass_per_job(relax.ell_capped)
            jobs = list(relax.jobs)
            min_margin = float(np.min(mass[jobs]) / relax.target)
            blow = rounded.load / max(relax.t_star, 1e-12)
            res.add(model, n, m, relax.t_star, rounded.load, blow, min_margin)
    res.notes.append(
        "Lemma 2 guarantees load <= ceil(6 t*) (blow-up <= ~6) and "
        "mass margin >= 1; measured blow-ups are usually far smaller."
    )
    return res


@register_experiment("A-ROUNDS")
def run_rounds_ablation(
    *,
    n: int = 60,
    m: int = 10,
    k_values=(1, 2, 3, 4, 5, 6),
    n_trials: int = 30,
    seed: int = 6,
    max_steps: int = 400_000,
    discipline: str | None = None,
) -> ExperimentResult:
    """A-ROUNDS: sweep the number of SEM rounds ``K`` around the paper's value."""
    rng = ensure_rng(seed)
    inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
    bound = lower_bound(inst)
    res = ExperimentResult(
        exp_id="A-ROUNDS",
        title="Ablation: SUU-I-SEM round budget K",
        headers=["K", "paper K?", "E[T]", "ratio"],
    )
    k_paper = paper_round_count(n, m)
    for k in k_values:
        meas = measure_ratio(
            inst,
            lambda k=k: SUUISemPolicy(n_rounds=k),
            n_trials,
            rng.spawn(1)[0],
            bound=bound,
            max_steps=max_steps,
            discipline=discipline,
        )
        res.add(k, "yes" if k == k_paper else "", meas.stats.mean, meas.ratio)
    res.notes.append(
        "small K leans on the fallback; large K wastes rounds. The paper's "
        f"K={k_paper} should sit near the flat region."
    )
    return res
