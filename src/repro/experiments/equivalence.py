"""E-EQUIV: the SUU ≡ SUU* reformulation (Theorem 10 / Appendix A).

Run the same oblivious policy under both semantics with independent
randomness and compare the makespan distributions: means within CI overlap
and a two-sample Kolmogorov–Smirnov test that should *not* reject.  (The
theorem asserts exact distributional equality, so any detectable gap is an
engine bug.)
"""

from __future__ import annotations

from scipy import stats as scipy_stats

from repro.api.registry import policy_factory
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import chain_instance, independent_instance
from repro.sim.montecarlo import estimate_expected_makespan
from repro.util.rng import ensure_rng

__all__ = ["run_equivalence"]


@register_experiment("E-EQUIV")
def run_equivalence(
    *,
    n: int = 24,
    m: int = 6,
    n_trials: int = 300,
    seed: int = 11,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """Compare SUU and SUU* makespan distributions for the same policy."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-EQUIV",
        title="Theorem 10: SUU vs SUU* makespan distributions",
        headers=[
            "workload",
            "mean (SUU)",
            "mean (SUU*)",
            "KS stat",
            "KS p-value",
        ],
    )
    # An oblivious policy for the independent workload; precedence-aware
    # greedy for chains (SUU-I schedules are only valid without precedence).
    workloads = {
        "independent": (
            independent_instance(n, m, "specialist", rng=rng.spawn(1)[0]),
            policy_factory("obl"),
        ),
        "chains": (
            chain_instance(n, m, max(2, n // 6), "uniform", rng=rng.spawn(1)[0]),
            policy_factory("greedy"),
        ),
    }
    for label, (inst, factory) in workloads.items():
        a = estimate_expected_makespan(
            inst, factory, n_trials, rng.spawn(1)[0], semantics="suu",
            max_steps=max_steps,
        )
        b = estimate_expected_makespan(
            inst, factory, n_trials, rng.spawn(1)[0], semantics="suu_star",
            max_steps=max_steps,
        )
        ks = scipy_stats.ks_2samp(a.samples, b.samples)
        res.add(label, a.mean, b.mean, float(ks.statistic), float(ks.pvalue))
    res.notes.append(
        "Theorem 10 asserts exact equality; the KS test should not reject "
        "(p well above 0.01)."
    )
    return res
