"""Shared plumbing for the experiment harness.

Every experiment in DESIGN.md's per-experiment index is a function in this
package returning an :class:`ExperimentResult` (headers + rows + notes).
The benchmark suite times the *quick* configurations and prints the rows;
``python -m repro.experiments`` runs the *full* configurations and rewrites
the results section of EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.tables import format_markdown_table, format_table

__all__ = ["ExperimentResult", "loglog", "safe_log2"]


@dataclass
class ExperimentResult:
    """Tabular output of one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        """Append one row (must match ``headers`` in length)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"{self.exp_id}: row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(row))

    def to_text(self) -> str:
        """Fixed-width rendering (printed by the benchmarks)."""
        out = format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def to_markdown(self) -> str:
        """Markdown rendering (embedded in EXPERIMENTS.md)."""
        parts = [f"### {self.exp_id} — {self.title}", ""]
        parts.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"*{n}*" for n in self.notes)
        return "\n".join(parts)


def safe_log2(v: float) -> float:
    """``log2(max(v, 2))`` — the guard used in all the paper's factors."""
    return math.log2(max(float(v), 2.0))


def loglog(v: float) -> float:
    """``log2 log2 v`` with the same guard."""
    return safe_log2(safe_log2(v))
