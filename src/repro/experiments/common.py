"""Shared plumbing for the experiment harness.

Every experiment in DESIGN.md's per-experiment index is a function in this
package returning an :class:`ExperimentResult` (headers + rows + notes),
decorated with :func:`register_experiment` so the CLI
(``python -m repro.experiments``), the benchmark suite, and declarative
suite files (:mod:`repro.suite`) all share one id → runner table.
The benchmark suite times the *quick* configurations and prints the rows;
``python -m repro.experiments`` runs the *full* configurations and rewrites
the results section of EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.tables import format_markdown_table, format_table

__all__ = [
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "experiment_ids",
    "all_experiments",
    "loglog",
    "safe_log2",
]

#: The one name → runner table (populated by :func:`register_experiment`
#: as experiment modules import; insertion order is DESIGN.md order).
_REGISTRY: dict = {}


def register_experiment(exp_id: str):
    """Class-registry decorator for experiment runners.

    Registers the decorated zero-or-keyword-arg function under the
    DESIGN.md experiment id so ``repro experiments``, the benchmarks, and
    suite-file ``experiments`` entries dispatch through one table.
    Double registration of an id fails loudly.
    """

    def deco(fn):
        if exp_id in _REGISTRY:
            raise ValueError(f"experiment id {exp_id!r} registered twice")
        _REGISTRY[exp_id] = fn
        return fn

    return deco


def get_experiment(exp_id: str):
    """The registered runner for ``exp_id``; unknown ids fail loudly."""
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment id {exp_id!r}; expected one of "
            f"{experiment_ids()}"
        ) from None


def experiment_ids() -> tuple[str, ...]:
    """Every registered experiment id, in registration (DESIGN.md) order."""
    return tuple(_REGISTRY)


def all_experiments() -> dict:
    """A snapshot copy of the id → runner table."""
    return dict(_REGISTRY)


@dataclass
class ExperimentResult:
    """Tabular output of one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        """Append one row (must match ``headers`` in length)."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"{self.exp_id}: row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(row))

    def to_text(self) -> str:
        """Fixed-width rendering (printed by the benchmarks)."""
        out = format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def to_markdown(self) -> str:
        """Markdown rendering (embedded in EXPERIMENTS.md)."""
        parts = [f"### {self.exp_id} — {self.title}", ""]
        parts.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"*{n}*" for n in self.notes)
        return "\n".join(parts)


def safe_log2(v: float) -> float:
    """``log2(max(v, 2))`` — the guard used in all the paper's factors."""
    return math.log2(max(float(v), 2.0))


def loglog(v: float) -> float:
    """``log2 log2 v`` with the same guard."""
    return safe_log2(safe_log2(v))
