"""T1 — empirical reproduction of the paper's Table 1.

The paper's only evaluation artifact compares approximation *ratios*:

    | precedence  | Lin–Rajaraman                  | this paper                    |
    | independent | O(log n)                       | O(log log min{m,n})           |
    | chains      | O(log m log n log(n+m)/loglog) | O(log(n+m) log log min{m,n})  |
    | forests     | ... x log n                    | ... x log n                   |

We reproduce it empirically: on each workload, measure
``E[T] / lower bound`` for the prior-art-style algorithm and for the
paper's algorithm.  Comparators:

* independent — Lin–Rajaraman's greedy and the oblivious repeat
  (SUU-I-OBL, also ``O(log n)``) vs **SUU-I-SEM**;
* chains — SUU-C with the ``O(log n)`` oblivious inner loop (the L&R-style
  skeleton) vs **SUU-C** with the SEM inner loop;
* forests — the same pair lifted through the chain-block decomposition.

The reproduction claim is about *shape*: the paper's column should win on
every row, by a factor that grows with ``n`` in the independent case.
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound
from repro.analysis.ratios import measure_ratio
from repro.api.registry import policy_factory
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import (
    chain_instance,
    forest_instance,
    independent_instance,
)
from repro.util.rng import ensure_rng

__all__ = ["run_table1"]


def _row(inst, policies, n_trials, rng, max_steps):
    bound = lower_bound(inst)
    ratios = {}
    for label, factory in policies.items():
        meas = measure_ratio(
            inst, factory, n_trials, rng, bound=bound, max_steps=max_steps
        )
        ratios[label] = meas.ratio
    return bound, ratios


@register_experiment("T1")
def run_table1(
    *,
    sizes=((20, 5), (40, 10), (80, 10)),
    n_trials: int = 25,
    seed: int = 2008,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """Run the Table 1 head-to-head on all three precedence classes."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="T1",
        title="Table 1, empirical: measured E[T]/LB, prior art vs this paper",
        headers=[
            "precedence",
            "n",
            "m",
            "LB",
            "LR-style ratio",
            "this-paper ratio",
            "improvement",
        ],
    )
    for n, m in sizes:
        inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
        bound, r = _row(
            inst,
            {
                "lr": policy_factory("greedy"),
                "ours": policy_factory("sem"),
            },
            n_trials,
            rng.spawn(1)[0],
            max_steps,
        )
        res.add("independent", n, m, bound, r["lr"], r["ours"], r["lr"] / r["ours"])
    for n, m in sizes:
        inst = chain_instance(
            n, m, max(2, n // 6), "specialist", rng=rng.spawn(1)[0]
        )
        bound, r = _row(
            inst,
            {
                "lr": policy_factory("suu-c", inner="obl"),
                "ours": policy_factory("suu-c"),
            },
            n_trials,
            rng.spawn(1)[0],
            max_steps,
        )
        res.add("chains", n, m, bound, r["lr"], r["ours"], r["lr"] / r["ours"])
    for n, m in sizes:
        inst = forest_instance(
            n, m, max(2, n // 10), "out", "specialist", rng=rng.spawn(1)[0]
        )
        bound, r = _row(
            inst,
            {
                "lr": policy_factory("suu-t", inner="obl"),
                "ours": policy_factory("suu-t"),
            },
            n_trials,
            rng.spawn(1)[0],
            max_steps,
        )
        res.add("forests", n, m, bound, r["lr"], r["ours"], r["lr"] / r["ours"])
    res.notes.append(
        "LB = max(LP1/2, LP2/2, critical path); ratios are upper estimates "
        "of the true approximation ratios."
    )
    res.notes.append(
        "independent LR-style = Lin-Rajaraman greedy; chains/forests "
        "LR-style = same skeleton with O(log n) oblivious inner loop."
    )
    return res
