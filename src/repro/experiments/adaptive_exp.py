"""A-ADAPT: the conclusion's conjecture — does full adaptivity help?

The paper conjectures a fully adaptive schedule could trim the
``O(log log)`` factor.  This ablation races the adaptive re-solving policy
(:class:`repro.core.adaptive.SUUIAdaptiveLPPolicy`) against SEM and the
greedy baseline across sizes, also reporting how many LP solves adaptivity
costs.
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound
from repro.analysis.ratios import measure_ratio
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.experiments.common import ExperimentResult, register_experiment
from repro.instance.generators import independent_instance
from repro.sim.engine import run_policy
from repro.util.rng import ensure_rng

__all__ = ["run_adaptive"]


@register_experiment("A-ADAPT")
def run_adaptive(
    *,
    ns=(20, 40, 80),
    m: int = 8,
    n_trials: int = 15,
    seed: int = 16,
    max_steps: int = 400_000,
    discipline: str | None = None,
) -> ExperimentResult:
    """Race ADAPT vs SEM vs greedy on specialist workloads."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="A-ADAPT",
        title="Conclusion's conjecture: fully adaptive LP vs SEM",
        headers=[
            "n",
            "m",
            "LB",
            "greedy ratio",
            "SEM ratio",
            "ADAPT ratio",
            "ADAPT LP solves",
        ],
    )
    for n in ns:
        inst = independent_instance(n, m, "specialist", rng=rng.spawn(1)[0])
        bound = lower_bound(inst)
        greedy = measure_ratio(
            inst, GreedyLRPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps, discipline=discipline,
        )
        sem = measure_ratio(
            inst, SUUISemPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps, discipline=discipline,
        )
        adapt = measure_ratio(
            inst, SUUIAdaptiveLPPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps, discipline=discipline,
        )
        probe = SUUIAdaptiveLPPolicy()
        run_policy(inst, probe, rng.spawn(1)[0], max_steps=max_steps)
        res.add(
            n, m, bound, greedy.ratio, sem.ratio, adapt.ratio, probe.lp_solves
        )
    res.notes.append(
        "ADAPT has no proven guarantee (that is the open question); the "
        "conjecture is supported if its column tracks or beats SEM's."
    )
    return res
