"""E-TREE: forest precedence (Theorem 12).

Checks both halves of the theorem's machinery: the decomposition produces
at most ``floor(log2 n) + 1`` blocks, and sequential SUU-C over the blocks
beats the serial floor while staying within the predicted
``log n * log(n+m) * log log`` envelope.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import lower_bound
from repro.analysis.ratios import measure_ratio
from repro.baselines.naive import SerialAllMachinesPolicy
from repro.core.suu_t import SUUTPolicy
from repro.experiments.common import ExperimentResult, register_experiment, safe_log2
from repro.instance.decomposition import decompose_forest
from repro.instance.generators import forest_instance, tree_instance
from repro.util.rng import ensure_rng

__all__ = ["run_trees"]


@register_experiment("E-TREE")
def run_trees(
    *,
    sizes=((20, 5), (40, 10), (80, 10)),
    n_trials: int = 15,
    seed: int = 10,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """Run SUU-T vs the serial floor on random out-forests and in-trees."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-TREE",
        title="Theorem 12: forests via chain blocks",
        headers=[
            "shape",
            "n",
            "m",
            "blocks",
            "log2(n)+1",
            "LB",
            "serial ratio",
            "SUU-T ratio",
        ],
    )
    for n, m in sizes:
        for shape in ("out-forest", "in-tree"):
            if shape == "out-forest":
                inst = forest_instance(
                    n, m, max(2, n // 10), "out", "specialist", rng=rng.spawn(1)[0]
                )
            else:
                inst = tree_instance(n, m, "in", "specialist", rng=rng.spawn(1)[0])
            blocks = decompose_forest(inst.graph)
            bound = lower_bound(inst)
            serial = measure_ratio(
                inst, SerialAllMachinesPolicy, n_trials, rng.spawn(1)[0],
                bound=bound, max_steps=max_steps,
            )
            ours = measure_ratio(
                inst, SUUTPolicy, n_trials, rng.spawn(1)[0],
                bound=bound, max_steps=max_steps,
            )
            res.add(
                shape,
                n,
                m,
                len(blocks),
                int(math.floor(safe_log2(n))) + 1,
                bound,
                serial.ratio,
                ours.ratio,
            )
    res.notes.append("blocks <= floor(log2 n) + 1 is the Theorem 12 premise.")
    return res
