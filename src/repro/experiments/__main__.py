"""Run every experiment and print (or save) the result tables.

Usage::

    python -m repro.experiments            # run all, print tables
    python -m repro.experiments T1 E-SEM   # run a subset
    python -m repro.experiments --markdown results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import experiment_ids, get_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's Table 1 and per-theorem experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help=f"experiment ids to run (default: all of {', '.join(experiment_ids())})",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write the tables as markdown to PATH",
    )
    args = parser.parse_args(argv)

    ids = args.experiments or list(experiment_ids())
    unknown = [e for e in ids if e not in experiment_ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    blocks = []
    for exp_id in ids:
        t0 = time.perf_counter()
        result = get_experiment(exp_id)()
        dt = time.perf_counter() - t0
        print(result.to_text())
        print(f"  ({dt:.1f}s)\n")
        blocks.append(result.to_markdown())
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("\n\n".join(blocks) + "\n")
        print(f"wrote markdown tables to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
