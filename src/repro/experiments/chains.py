"""Chain experiments: E-CHAIN (Theorem 9), E-DELAY (Theorem 7), A-SEG.

E-DELAY is the purest reproduction target in the paper: random start
delays must collapse pseudoschedule congestion from ~(number of chains)
down to ``O(log(n+m)/log log(n+m))``.  It is measured *statically* on the
deterministic pseudoschedule layout, exactly as Theorem 7 is stated.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import lower_bound
from repro.analysis.ratios import measure_ratio
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.baselines.naive import SerialAllMachinesPolicy
from repro.core.lp2 import round_lp2, solve_lp2
from repro.core.suu_c import SUUCPolicy
from repro.experiments.common import ExperimentResult, register_experiment, safe_log2
from repro.instance.chains import extract_chains
from repro.instance.generators import chain_instance
from repro.schedule.pseudo import build_chain_programs, congestion_profile, draw_delays
from repro.sim.engine import run_policy
from repro.util.rng import ensure_rng

__all__ = ["run_chains", "run_delay", "run_segments_ablation"]


@register_experiment("E-CHAIN")
def run_chains(
    *,
    sizes=((20, 5), (40, 10), (80, 10)),
    n_trials: int = 20,
    seed: int = 7,
    max_steps: int = 400_000,
) -> ExperimentResult:
    """E-CHAIN: SUU-C vs greedy and the serial O(n) floor on chain workloads."""
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-CHAIN",
        title="Theorem 9: SUU-C vs baselines on disjoint chains",
        headers=[
            "n",
            "m",
            "chains",
            "LB",
            "serial ratio",
            "greedy ratio",
            "SUU-C ratio",
            "SUU-C/log(n+m)",
        ],
    )
    for n, m in sizes:
        z = max(2, n // 6)
        inst = chain_instance(n, m, z, "specialist", rng=rng.spawn(1)[0])
        bound = lower_bound(inst)
        serial = measure_ratio(
            inst, SerialAllMachinesPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps,
        )
        greedy = measure_ratio(
            inst, GreedyLRPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps,
        )
        ours = measure_ratio(
            inst, SUUCPolicy, n_trials, rng.spawn(1)[0], bound=bound,
            max_steps=max_steps,
        )
        res.add(
            n, m, z, bound, serial.ratio, greedy.ratio, ours.ratio,
            ours.ratio / safe_log2(n + m),
        )
    return res


@register_experiment("E-DELAY")
def run_delay(
    *,
    configs=((40, 5, 10), (80, 5, 20), (160, 5, 40), (320, 5, 80)),
    n_seeds: int = 10,
    seed: int = 8,
) -> ExperimentResult:
    """E-DELAY: congestion with vs without random delays (Theorem 7).

    ``configs`` rows are ``(n, m, n_chains)``.  Chains are given identical
    job profiles so that, undelayed, their blocks align and congestion
    peaks at ~``n_chains``; random delays must flatten it to
    ``O(log(n+m)/log log(n+m))``.
    """
    rng = ensure_rng(seed)
    res = ExperimentResult(
        exp_id="E-DELAY",
        title="Theorem 7: pseudoschedule congestion, delayed vs undelayed",
        headers=[
            "n",
            "m",
            "chains",
            "cong (no delay)",
            "cong (delay, mean)",
            "bound log/loglog",
        ],
    )
    for n, m, z in configs:
        inst = chain_instance(n, m, z, "related", rng=rng.spawn(1)[0])
        chains = extract_chains(inst.graph)
        relax = solve_lp2(inst, chains)
        assignment = round_lp2(relax)
        programs = build_chain_programs(chains, assignment)
        no_delay = congestion_profile(
            programs, np.zeros(len(chains), dtype=np.int64), m
        )
        horizon = assignment.load
        delayed_max = []
        for s in range(n_seeds):
            delays = draw_delays(len(chains), horizon, rng.spawn(1)[0])
            prof = congestion_profile(programs, delays, m)
            delayed_max.append(int(prof.max()) if prof.size else 0)
        lognm = safe_log2(n + m)
        res.add(
            n,
            m,
            z,
            int(no_delay.max()) if no_delay.size else 0,
            float(np.mean(delayed_max)),
            lognm / max(1.0, safe_log2(lognm)),
        )
    res.notes.append(
        "'related' failure model gives all chains identical per-job "
        "profiles, the congestion worst case for undelayed starts."
    )
    return res


@register_experiment("A-SEG")
def run_segments_ablation(
    *,
    n: int = 30,
    m: int = 4,
    n_chains: int = 6,
    n_trials: int = 15,
    seed: int = 9,
    max_steps: int = 400_000,
    discipline: str | None = None,
) -> ExperimentResult:
    """A-SEG: long-job segmentation on/off on a heavy-tailed chain workload."""
    rng = ensure_rng(seed)
    inst = chain_instance(
        n, m, n_chains, "specialist", rng=rng.spawn(1)[0], q_bad=0.9999
    )
    bound = lower_bound(inst)
    res = ExperimentResult(
        exp_id="A-SEG",
        title="Ablation: SUU-C long-job segmentation",
        headers=["variant", "E[T]", "ratio"],
    )
    for label, kwargs in (
        ("segments on (paper)", {}),
        ("segments off", {"enable_segments": False}),
        ("delays off", {"enable_delays": False}),
    ):
        meas = measure_ratio(
            inst,
            lambda kw=kwargs: SUUCPolicy(**kw),
            n_trials,
            rng.spawn(1)[0],
            bound=bound,
            max_steps=max_steps,
            discipline=discipline,
        )
        res.add(label, meas.stats.mean, meas.ratio)
    # One diagnostic run for the stats dict.
    pol = SUUCPolicy()
    run_policy(inst, pol, rng.spawn(1)[0], max_steps=max_steps)
    res.notes.append(
        f"paper variant diagnostics: gamma={pol.stats['gamma']}, "
        f"long jobs={pol.stats['n_long_jobs']}, sem runs={pol.stats['sem_runs']}, "
        f"max congestion={pol.stats['max_congestion']}"
    )
    return res
