"""Declarative suite files: what a sweep *is*, as plain data.

A suite file (JSON always; TOML on Python 3.11+ where :mod:`tomllib`
exists) names a scenario grid × a policy list × a config sweep, plus
optional registered-experiment entries::

    {
      "name": "demo",
      "grid": {"base": {"shape": "independent", "n_jobs": 12,
                        "n_machines": 4}},
      "policies": ["obl", "greedy"],
      "config": {"n_trials": 40, "max_steps": 40000},
      "sweep": {"discipline": ["v1", "v2"], "seed": [0, 1]},
      "experiments": [{"id": "E-LP1", "args": {"sizes": [[8, 3]]}}]
    }

``sweep`` axes are :class:`~repro.api.scenario.SimConfig` fields (seeds,
disciplines, kernels, kernel_threads, ...); every combination multiplies
the grid × policies product.  Loading is *strict*: unknown top-level
keys, unknown sweep fields, unknown policies, and unknown experiment ids
all raise :class:`SuiteError` at load time — a typo must never silently
shrink a sweep.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass

from repro.api.registry import get_policy
from repro.api.scenario import Scenario, ScenarioGrid, SimConfig
from repro.errors import InvalidScenarioError, UnknownPolicyError

__all__ = [
    "SuiteError",
    "SimulateCell",
    "ExperimentCell",
    "SuiteSpec",
    "load_suite",
]

_TOP_LEVEL_KEYS = ("name", "grid", "policies", "config", "sweep", "experiments")


class SuiteError(ValueError):
    """A suite file (or spec) is malformed."""


@dataclass(frozen=True)
class SimulateCell:
    """One measurement: a policy on a scenario under a concrete config."""

    scenario: Scenario
    policy: str
    config: SimConfig

    def label(self) -> str:
        knobs = self.config.resolved()
        return (
            f"{self.policy} on {self.scenario.label()} "
            f"[{knobs.discipline}/{knobs.kernel} seed={self.config.seed}]"
        )


@dataclass(frozen=True)
class ExperimentCell:
    """One registered-experiment run (:mod:`repro.experiments`).

    ``args`` is stored as a canonical JSON string so the cell stays
    hashable and its digest is insensitive to dict ordering.
    """

    exp_id: str
    args_json: str = "{}"

    @property
    def args(self) -> dict:
        return json.loads(self.args_json)

    def label(self) -> str:
        return f"experiment {self.exp_id}"


@dataclass(frozen=True)
class SuiteSpec:
    """A loaded, validated suite: everything needed to expand cells."""

    name: str
    grid: ScenarioGrid | None
    policies: tuple[str, ...]
    config: SimConfig
    sweep: tuple[tuple[str, tuple], ...]
    experiments: tuple[ExperimentCell, ...]

    def configs(self) -> list[SimConfig]:
        """The config sweep expanded (first axis varying slowest)."""
        names = [name for name, _ in self.sweep]
        combos = itertools.product(*(values for _, values in self.sweep))
        out = []
        for combo in combos:
            try:
                out.append(dataclasses.replace(self.config, **dict(zip(names, combo))))
            except InvalidScenarioError as exc:
                raise SuiteError(f"suite {self.name!r}: bad sweep value: {exc}") from exc
        return out

    def cells(self) -> list[SimulateCell | ExperimentCell]:
        """Every cell, scenario-major (scenario → policy → sweep combo),
        experiments last.  Deterministic: declaration order throughout."""
        cells: list[SimulateCell | ExperimentCell] = []
        configs = self.configs()
        if self.grid is not None:
            for scenario in self.grid:
                for policy in self.policies:
                    for config in configs:
                        cells.append(SimulateCell(scenario, policy, config))
        cells.extend(self.experiments)
        return cells

    def to_dict(self) -> dict:
        """JSON-compatible representation (inverse of :func:`load_suite`)."""
        return {
            "name": self.name,
            "grid": self.grid.to_dict() if self.grid is not None else None,
            "policies": list(self.policies),
            "config": self.config.to_dict(),
            "sweep": {name: list(values) for name, values in self.sweep},
            "experiments": [
                {"id": e.exp_id, "args": e.args} for e in self.experiments
            ],
        }


def _validate_policies(policies, name: str) -> tuple[str, ...]:
    if isinstance(policies, str):
        policies = [policies]
    out = []
    for policy in policies:
        if not isinstance(policy, str):
            raise SuiteError(f"suite {name!r}: policy {policy!r} is not a name")
        if policy != "auto":
            try:
                get_policy(policy)
            except UnknownPolicyError as exc:
                raise SuiteError(f"suite {name!r}: {exc}") from None
        out.append(policy)
    if not out:
        raise SuiteError(f"suite {name!r}: empty policy list")
    return tuple(out)


def _validate_sweep(sweep: dict, name: str) -> tuple[tuple[str, tuple], ...]:
    if not isinstance(sweep, dict):
        raise SuiteError(f"suite {name!r}: 'sweep' must be a mapping")
    valid = {f.name for f in dataclasses.fields(SimConfig)}
    out = []
    for field, values in sweep.items():
        if field not in valid:
            raise SuiteError(
                f"suite {name!r}: unknown sweep field {field!r}; "
                f"expected a SimConfig field ({sorted(valid)})"
            )
        values = tuple(values)
        if not values:
            raise SuiteError(f"suite {name!r}: sweep axis {field!r} has no values")
        out.append((field, values))
    return tuple(out)


def _validate_experiments(entries, name: str) -> tuple[ExperimentCell, ...]:
    # Deferred import: repro.experiments pulls analysis/sim modules that
    # are not needed to *load* a simulate-only suite.
    from repro.experiments import experiment_ids

    known = experiment_ids()
    cells = []
    for entry in entries:
        if isinstance(entry, str):
            entry = {"id": entry}
        if not isinstance(entry, dict):
            raise SuiteError(f"suite {name!r}: bad experiment entry {entry!r}")
        unknown = set(entry) - {"id", "args"}
        if unknown:
            raise SuiteError(
                f"suite {name!r}: unknown experiment entry keys {sorted(unknown)}"
            )
        exp_id = entry.get("id")
        if exp_id not in known:
            raise SuiteError(
                f"suite {name!r}: unknown experiment id {exp_id!r}; "
                f"expected one of {known}"
            )
        args = entry.get("args", {})
        if not isinstance(args, dict):
            raise SuiteError(f"suite {name!r}: experiment args must be a mapping")
        cells.append(
            ExperimentCell(exp_id, json.dumps(args, sort_keys=True))
        )
    return tuple(cells)


def suite_from_dict(data: dict) -> SuiteSpec:
    """Validate a parsed suite mapping into a :class:`SuiteSpec`."""
    if not isinstance(data, dict):
        raise SuiteError(f"suite file must hold a mapping, got {type(data).__name__}")
    unknown = set(data) - set(_TOP_LEVEL_KEYS)
    if unknown:
        raise SuiteError(
            f"unknown suite keys {sorted(unknown)}; "
            f"expected a subset of {list(_TOP_LEVEL_KEYS)}"
        )
    name = data.get("name")
    if not name or not isinstance(name, str):
        raise SuiteError("suite file needs a non-empty string 'name'")
    try:
        grid_data = data.get("grid")
        if grid_data is None:
            grid = None
        elif "base" in grid_data or "axes" in grid_data:
            grid = ScenarioGrid.from_dict(grid_data)
        else:
            # A bare scenario mapping is a single-point grid.
            grid = ScenarioGrid(Scenario.from_dict(grid_data))
        config = SimConfig.from_dict(data.get("config", {}))
    except InvalidScenarioError as exc:
        raise SuiteError(f"suite {name!r}: {exc}") from exc
    spec = SuiteSpec(
        name=name,
        grid=grid,
        policies=_validate_policies(data.get("policies", ("auto",)), name),
        config=config,
        sweep=_validate_sweep(data.get("sweep", {}), name),
        experiments=_validate_experiments(data.get("experiments", ()), name),
    )
    if spec.grid is None and not spec.experiments:
        raise SuiteError(f"suite {name!r} names no grid and no experiments")
    return spec


def load_suite(path) -> SuiteSpec:
    """Load and validate a suite file (``.json``, or ``.toml`` on 3.11+)."""
    text_path = str(path)
    if text_path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # Python < 3.11: tomllib is stdlib-only there
            raise SuiteError(
                "TOML suite files need Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from None
        with open(text_path, "rb") as fh:
            data = tomllib.load(fh)
    else:
        with open(text_path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SuiteError(f"{text_path} is not valid JSON: {exc}") from exc
    return suite_from_dict(data)
