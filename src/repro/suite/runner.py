"""Execute a suite: content-addressed cells, resumable, delta-only.

Every cell persists its artifact under ``out_dir/cells/<digest>.json``
(written atomically — temp file + ``os.replace`` — so an interrupt never
leaves a half-written artifact that would poison a resume).  A run walks
the spec's cells in declaration order, loads artifacts that already exist,
and executes only the missing ones; deleting one artifact re-executes
exactly that cell.

Execution goes through the existing :mod:`repro.api.service` executor
seam: with ``jobs > 1`` the runner owns one
:func:`~repro.api.service.worker_pool` for the whole suite and hands it to
every :func:`~repro.api.service.simulate` call as an injected executor, so
trials fan out across processes along the service's shard seam while the
cache/resume bookkeeping stays in this process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.api.service import simulate, worker_pool
from repro.suite.digest import CELL_FORMAT, cell_digest, cell_payload
from repro.suite.spec import ExperimentCell, SimulateCell, SuiteSpec

__all__ = ["CellOutcome", "SuiteOutcome", "SuiteRunner", "execute_cell"]


class _SuitePoolExecutor:
    """The suite's warm pool, shaped like a request executor.

    Duck-types the seam :func:`repro.api.service._resolve_executor`
    expects (``backend`` / ``n_workers`` / ``acquire()``), so one
    spawn-warmed pool serves every cell instead of being rebuilt per
    cell.
    """

    backend = "process"

    def __init__(self, config, n_workers: int):
        self.n_workers = n_workers
        knobs = config.resolved()
        self._pool = worker_pool(
            n_workers, kernel=knobs.kernel, kernel_threads=knobs.kernel_threads
        )

    def acquire(self):
        return self._pool

    def close(self) -> None:
        self._pool.shutdown()


def execute_cell(cell, executor=None) -> dict:
    """Run one cell and return its JSON-compatible result block.

    Module-level on purpose: it is the single execution choke point, so
    tests (and the cache-hit acceptance check) can spy on it to prove a
    resumed run performs zero executions.
    """
    if isinstance(cell, SimulateCell):
        report = simulate(
            cell.scenario, cell.policy, cell.config, executor=executor
        )
        lo, hi = report.stats.ci95
        return {
            "policy": report.policy,
            "mean": report.mean,
            "ci95": [float(lo), float(hi)],
            "lower_bound": report.lower_bound,
            "ratio": report.ratio,
            "n_trials": report.stats.n_trials,
        }
    if isinstance(cell, ExperimentCell):
        # Deferred import: the experiments package pulls the full
        # analysis stack, which simulate-only suites never need.
        from repro.experiments import get_experiment

        result = get_experiment(cell.exp_id)(**cell.args)
        return {
            "exp_id": result.exp_id,
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "notes": list(result.notes),
        }
    raise TypeError(f"not a suite cell: {cell!r}")


@dataclass(frozen=True)
class CellOutcome:
    """One cell's run record: its address, artifact, and cache status."""

    digest: str
    label: str
    cached: bool
    artifact: dict


@dataclass
class SuiteOutcome:
    """What a suite run did: per-cell outcomes plus the delta counts."""

    suite: str
    outcomes: list[CellOutcome] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)


class SuiteRunner:
    """Drive one :class:`~repro.suite.spec.SuiteSpec` against ``out_dir``."""

    def __init__(self, spec: SuiteSpec, out_dir, *, jobs: int = 1,
                 force: bool = False):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.out_dir = str(out_dir)
        self.cells_dir = os.path.join(self.out_dir, "cells")
        self.jobs = jobs
        self.force = force

    def cell_path(self, digest: str) -> str:
        return os.path.join(self.cells_dir, f"{digest}.json")

    # ------------------------------------------------------------------
    def status(self) -> list[tuple[str, str, bool]]:
        """``(digest, label, done)`` per cell, in declaration order."""
        return [
            (digest, cell.label(), os.path.exists(self.cell_path(digest)))
            for cell, digest in self._addressed()
        ]

    def run(self, progress=None) -> SuiteOutcome:
        """Execute the delta (resume is free), then write the report.

        ``progress`` (optional callable, e.g. ``print``) receives one
        line per cell as it completes.
        """
        os.makedirs(self.cells_dir, exist_ok=True)
        outcome = SuiteOutcome(suite=self.spec.name)
        executor = None
        try:
            for cell, digest in self._addressed():
                path = self.cell_path(digest)
                if not self.force and os.path.exists(path):
                    with open(path) as fh:
                        artifact = json.load(fh)
                    record = CellOutcome(digest, cell.label(), True, artifact)
                else:
                    if (executor is None and self.jobs > 1
                            and isinstance(cell, SimulateCell)):
                        executor = _SuitePoolExecutor(cell.config, self.jobs)
                    artifact = self._materialize(cell, digest, executor)
                    self._write_atomic(path, artifact)
                    record = CellOutcome(digest, cell.label(), False, artifact)
                outcome.outcomes.append(record)
                if progress is not None:
                    state = "cached" if record.cached else (
                        f"ran in {artifact['elapsed_seconds']:.2f}s")
                    progress(f"[{digest[:12]}] {record.label}: {state}")
        finally:
            if executor is not None:
                executor.close()
        self._write_report(outcome)
        return outcome

    # ------------------------------------------------------------------
    def _addressed(self):
        return [(cell, cell_digest(cell)) for cell in self.spec.cells()]

    def _materialize(self, cell, digest: str, executor) -> dict:
        t0 = time.perf_counter()
        result = execute_cell(
            cell, executor=executor if isinstance(cell, SimulateCell) else None
        )
        payload = cell_payload(cell)
        return {
            "format": CELL_FORMAT,
            "digest": digest,
            "suite": self.spec.name,
            "kind": payload["kind"],
            "cell": payload,
            "result": result,
            "elapsed_seconds": time.perf_counter() - t0,
        }

    def _write_atomic(self, path: str, artifact: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.cells_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(artifact, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _write_report(self, outcome: SuiteOutcome) -> None:
        # Deferred import: report rendering depends on this module's types.
        from repro.suite.report import write_report

        write_report(self.out_dir, self.spec, outcome)
