"""Consolidated suite reports: one JSON + one markdown table per run."""

from __future__ import annotations

import json
import os

from repro.suite.runner import SuiteOutcome
from repro.suite.spec import SuiteSpec

__all__ = ["report_dict", "report_markdown", "write_report"]


def report_dict(spec: SuiteSpec, outcome: SuiteOutcome) -> dict:
    """JSON-compatible consolidated report (spec + per-cell summaries)."""
    return {
        "suite": spec.name,
        "spec": spec.to_dict(),
        "executed": outcome.executed,
        "cached": outcome.cached,
        "cells": [
            {
                "digest": o.digest,
                "label": o.label,
                "cached": o.cached,
                "kind": o.artifact.get("kind"),
                "result": o.artifact.get("result"),
            }
            for o in outcome.outcomes
        ],
    }


def _simulate_rows(outcome: SuiteOutcome) -> list[str]:
    lines = [
        "| scenario | policy | discipline | kernel | seed | mean | ratio | cell |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for o in outcome.outcomes:
        if o.artifact.get("kind") != "simulate":
            continue
        cell = o.artifact["cell"]
        res = o.artifact["result"]
        knobs = cell["knobs"]
        scen = cell["scenario"]
        tag = f"{o.digest[:12]}{' (cached)' if o.cached else ''}"
        lines.append(
            f"| {scen['shape']}/{scen['model']} n={scen['n_jobs']} "
            f"m={scen['n_machines']} s={scen['seed']} "
            f"| {res['policy']} | {knobs['discipline']} | {knobs['kernel']} "
            f"| {cell['config']['seed']} | {res['mean']:.3f} "
            f"| {res['ratio']:.3f} | {tag} |"
        )
    return lines if len(lines) > 2 else []


def _experiment_blocks(outcome: SuiteOutcome) -> list[str]:
    blocks = []
    for o in outcome.outcomes:
        if o.artifact.get("kind") != "experiment":
            continue
        res = o.artifact["result"]
        lines = [
            f"### {res['exp_id']} — {res['title']}",
            "",
            "| " + " | ".join(res["headers"]) + " |",
            "|" + "---|" * len(res["headers"]),
        ]
        for row in res["rows"]:
            lines.append("| " + " | ".join(str(v) for v in row) + " |")
        for note in res["notes"]:
            lines.append(f"\n*{note}*")
        blocks.append("\n".join(lines))
    return blocks


def report_markdown(spec: SuiteSpec, outcome: SuiteOutcome) -> str:
    """The consolidated report as a markdown document."""
    parts = [
        f"# Suite `{spec.name}`",
        "",
        f"{len(outcome.outcomes)} cells: {outcome.executed} executed, "
        f"{outcome.cached} cached.",
        "",
    ]
    rows = _simulate_rows(outcome)
    if rows:
        parts.extend(rows)
        parts.append("")
    parts.extend(_experiment_blocks(outcome))
    return "\n".join(parts).rstrip() + "\n"


def write_report(out_dir, spec: SuiteSpec, outcome: SuiteOutcome) -> tuple[str, str]:
    """Write ``report.json`` and ``report.md`` under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "report.json")
    md_path = os.path.join(out_dir, "report.md")
    with open(json_path, "w") as fh:
        json.dump(report_dict(spec, outcome), fh, indent=1, sort_keys=True)
    with open(md_path, "w") as fh:
        fh.write(report_markdown(spec, outcome))
    return json_path, md_path
