"""``repro.suite`` — declarative, resumable, content-addressed sweeps.

A *suite file* (JSON; TOML on Python 3.11+) declares a scenario grid ×
policies × a :class:`~repro.api.scenario.SimConfig` sweep (seeds,
disciplines, kernels, ...) plus optional registered experiments.  The
spec expands into *cells*; each cell is content-addressed by a sha256
digest over the materialized instance, the scenario recipe, the policy,
the config core, and the resolved knob snapshot
(:func:`repro.api.config.resolve_knobs`).  Artifacts persist under
``out_dir/cells/<digest>.json``, so re-running a suite computes only the
delta and resuming after an interrupt is free.

Quick start::

    from repro.suite import SuiteRunner, load_suite

    spec = load_suite("suites/demo.json")
    outcome = SuiteRunner(spec, "results/demo", jobs=4).run(progress=print)
    print(outcome.executed, outcome.cached)

or from the CLI::

    repro suite run suites/demo.json --out results/demo --jobs 4
    repro suite status suites/demo.json --out results/demo
"""

from repro.suite.digest import cell_digest, cell_payload
from repro.suite.report import report_dict, report_markdown, write_report
from repro.suite.runner import CellOutcome, SuiteOutcome, SuiteRunner, execute_cell
from repro.suite.spec import (
    ExperimentCell,
    SimulateCell,
    SuiteError,
    SuiteSpec,
    load_suite,
    suite_from_dict,
)

__all__ = [
    "SuiteError",
    "SuiteSpec",
    "SimulateCell",
    "ExperimentCell",
    "load_suite",
    "suite_from_dict",
    "cell_digest",
    "cell_payload",
    "SuiteRunner",
    "SuiteOutcome",
    "CellOutcome",
    "execute_cell",
    "report_dict",
    "report_markdown",
    "write_report",
]
