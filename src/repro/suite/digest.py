"""Content addressing for suite cells.

A cell's digest is the sha256 of a canonical-JSON payload covering
everything that determines its result:

* the materialized instance digest (:meth:`SUUInstance.digest` — q-matrix
  bytes plus precedence edges, so a generator change re-runs the cell),
* the declarative :class:`~repro.api.scenario.Scenario` recipe,
* the policy name,
* the :class:`~repro.api.scenario.SimConfig` core (trials, seed,
  semantics, horizon), and
* the *resolved* knob snapshot (:meth:`SimConfig.resolved` — explicit →
  config → environment → default), so a sweep run under
  ``REPRO_KERNEL=numba`` is addressed separately from a numpy run.

Experiment cells hash their id plus canonical args.  Anything with the
same digest is the same measurement: re-running a suite only computes the
delta, and resuming after an interrupt is free.
"""

from __future__ import annotations

import hashlib
import json

from repro.suite.spec import ExperimentCell, SimulateCell

__all__ = ["CELL_FORMAT", "canonical_json", "cell_payload", "cell_digest"]

#: Bumped whenever the digest payload layout changes (invalidates every
#: previously stored cell, which is exactly what a layout change means).
CELL_FORMAT = 1


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN smuggling."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def cell_payload(cell) -> dict:
    """The JSON-compatible payload a cell's digest is computed over."""
    if isinstance(cell, SimulateCell):
        config = cell.config
        return {
            "format": CELL_FORMAT,
            "kind": "simulate",
            "instance": cell.scenario.to_instance().digest(),
            "scenario": cell.scenario.to_dict(),
            "policy": cell.policy,
            "config": {
                "n_trials": config.n_trials,
                "seed": config.seed,
                "semantics": config.semantics,
                "max_steps": config.max_steps,
            },
            "knobs": config.resolved().as_dict(),
        }
    if isinstance(cell, ExperimentCell):
        return {
            "format": CELL_FORMAT,
            "kind": "experiment",
            "exp_id": cell.exp_id,
            "args": cell.args,
        }
    raise TypeError(f"not a suite cell: {cell!r}")


def cell_digest(cell) -> str:
    """The cell's content address (sha256 hex of its canonical payload)."""
    return hashlib.sha256(canonical_json(cell_payload(cell)).encode()).hexdigest()
