"""Fully adaptive LP policy — exploring the paper's concluding conjecture.

The conclusion states: *"we believe that a fully adaptive schedule should
be able to trim an O(log log(min{m,n})) factor from our bounds"*.  This
module implements the natural candidate: re-derive the LP assignment as
jobs complete instead of committing to oblivious rounds.

:class:`SUUIAdaptiveLPPolicy` keeps a rounded ``LP1(remaining, 1/2)``
schedule in hand and *re-solves as soon as the remaining set has shrunk
enough* (by a configurable factor, default 2) or the schedule runs out.
Compared to SUU-I-SEM it never "wastes" steps finishing a round whose jobs
have mostly completed, and it never doubles targets — adaptivity replaces
the doubling.  No approximation guarantee is known (that is exactly the
open question); the A-ADAPT ablation measures it against SEM and greedy.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.lp1 import solve_lp1
from repro.core.phased import RoundScheduleCache
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.schedule.base import IDLE, PhasedPolicy, SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = ["SUUIAdaptiveLPPolicy"]


@register_policy("adapt", aliases=("suu-i-adapt", "adaptive"))
class SUUIAdaptiveLPPolicy(PhasedPolicy):
    """Re-solve the LP whenever enough jobs have completed.

    Parameters
    ----------
    resolve_factor:
        Re-solve when ``remaining <= last_solved_count / resolve_factor``.
        ``1.0`` re-solves after every completion (most adaptive, most LP
        time); large values degenerate toward SUU-I-OBL.
    target:
        Per-schedule mass target ``L`` (default 1/2 as in round 1 of SEM).

    Attributes
    ----------
    lp_solves:
        Number of LP solves in the last execution (diagnostic).
    """

    name = "SUU-I-ADAPT"

    def __init__(
        self,
        resolve_factor: float = 2.0,
        target: float = 0.5,
        scale: int = PAPER_SCALE,
        jobs=None,
    ):
        if resolve_factor < 1.0:
            raise ValueError(f"resolve_factor must be >= 1, got {resolve_factor}")
        self.resolve_factor = float(resolve_factor)
        self.target = float(target)
        self.scale = int(scale)
        self.jobs = None if jobs is None else tuple(sorted(set(int(j) for j in jobs)))
        self.lp_solves = 0
        self._instance = None

    def _universe_mask(self, n: int) -> np.ndarray:
        if self.jobs is None:
            return np.ones(n, dtype=bool)
        mask = np.zeros(n, dtype=bool)
        mask[list(self.jobs)] = True
        return mask

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._universe = self._universe_mask(instance.n_jobs)
        self.lp_solves = 0
        self._schedule: FiniteObliviousSchedule | None = None
        self._step = 0
        self._solved_count = -1
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def _resolve(self, remaining_jobs: np.ndarray) -> None:
        relaxation = solve_lp1(
            self._instance, jobs=remaining_jobs, target=self.target
        )
        assignment = round_assignment(relaxation, scale=self.scale)
        self._schedule = FiniteObliviousSchedule.from_assignment(assignment)
        self._step = 0
        self._solved_count = remaining_jobs.size
        self.lp_solves += 1

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        remaining = np.nonzero(state.remaining & self._universe)[0]
        if remaining.size == 0:
            return self._idle
        stale = (
            self._schedule is None
            or self._step >= self._schedule.length
            or remaining.size * self.resolve_factor <= self._solved_count
        )
        if stale:
            self._resolve(remaining)
        row = self._schedule.assignment_at(self._step)
        self._step += 1
        return row

    # ------------------------------------------------------------------
    # Grouped batch dispatch (PhasedPolicy protocol)
    # ------------------------------------------------------------------
    def start_phased(self, instance, trial_rngs) -> None:
        # start() never touches its rng; trials keep a (schedule id, step,
        # solved-count) cursor each and share one memoized solve cache.
        # Re-solves hit the cache whenever another trial already adapted
        # to the same survivor set, so self.lp_solves counts *distinct*
        # LPs solved across the batch (the scalar count is per trial).
        self._instance = instance
        self._universe = self._universe_mask(instance.n_jobs)
        self._cache = RoundScheduleCache(instance, self.scale)
        B = len(list(trial_rngs))
        self._sid = [None] * B
        self._pos = [0] * B
        self._solved_counts = [-1] * B
        self._pending = [None] * B
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def phase_key(self, trial: int, state):
        remaining = np.flatnonzero(state.remaining[trial] & self._universe)
        if remaining.size == 0:
            key = ("idle",)
        else:
            sid = self._sid[trial]
            stale = (
                sid is None
                or self._pos[trial] >= self._cache.schedule(sid).length
                or remaining.size * self.resolve_factor
                <= self._solved_counts[trial]
            )
            if stale:
                sid = self._cache.schedule_id(self.target, remaining)
                self._sid[trial] = sid
                self._pos[trial] = 0
                self._solved_counts[trial] = remaining.size
                self.lp_solves = self._cache.solves
            key = ("row", sid, self._pos[trial])
        self._pending[trial] = key
        return key

    def assign_group(self, state, trials) -> np.ndarray:
        key = self._pending[trials[0]]
        if key[0] == "idle":
            return self._idle
        row = self._cache.schedule(key[1]).assignment_at(key[2])
        for k in trials:
            self._pos[k] += 1
        return row
