"""Fully adaptive LP policy — exploring the paper's concluding conjecture.

The conclusion states: *"we believe that a fully adaptive schedule should
be able to trim an O(log log(min{m,n})) factor from our bounds"*.  This
module implements the natural candidate: re-derive the LP assignment as
jobs complete instead of committing to oblivious rounds.

:class:`SUUIAdaptiveLPPolicy` keeps a rounded ``LP1(remaining, 1/2)``
schedule in hand and *re-solves as soon as the remaining set has shrunk
enough* (by a configurable factor, default 2) or the schedule runs out.
Compared to SUU-I-SEM it never "wastes" steps finishing a round whose jobs
have mostly completed, and it never doubles targets — adaptivity replaces
the doubling.  No approximation guarantee is known (that is exactly the
open question); the A-ADAPT ablation measures it against SEM and greedy.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.lp1 import solve_lp1
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.schedule.base import IDLE, Policy, SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = ["SUUIAdaptiveLPPolicy"]


@register_policy("adapt", aliases=("suu-i-adapt", "adaptive"))
class SUUIAdaptiveLPPolicy(Policy):
    """Re-solve the LP whenever enough jobs have completed.

    Parameters
    ----------
    resolve_factor:
        Re-solve when ``remaining <= last_solved_count / resolve_factor``.
        ``1.0`` re-solves after every completion (most adaptive, most LP
        time); large values degenerate toward SUU-I-OBL.
    target:
        Per-schedule mass target ``L`` (default 1/2 as in round 1 of SEM).

    Attributes
    ----------
    lp_solves:
        Number of LP solves in the last execution (diagnostic).
    """

    name = "SUU-I-ADAPT"

    def __init__(
        self,
        resolve_factor: float = 2.0,
        target: float = 0.5,
        scale: int = PAPER_SCALE,
        jobs=None,
    ):
        if resolve_factor < 1.0:
            raise ValueError(f"resolve_factor must be >= 1, got {resolve_factor}")
        self.resolve_factor = float(resolve_factor)
        self.target = float(target)
        self.scale = int(scale)
        self.jobs = None if jobs is None else tuple(sorted(set(int(j) for j in jobs)))
        self.lp_solves = 0
        self._instance = None

    def start(self, instance, rng) -> None:
        self._instance = instance
        n = instance.n_jobs
        if self.jobs is None:
            self._universe = np.ones(n, dtype=bool)
        else:
            self._universe = np.zeros(n, dtype=bool)
            self._universe[list(self.jobs)] = True
        self.lp_solves = 0
        self._schedule: FiniteObliviousSchedule | None = None
        self._step = 0
        self._solved_count = -1
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def _resolve(self, remaining_jobs: np.ndarray) -> None:
        relaxation = solve_lp1(
            self._instance, jobs=remaining_jobs, target=self.target
        )
        assignment = round_assignment(relaxation, scale=self.scale)
        self._schedule = FiniteObliviousSchedule.from_assignment(assignment)
        self._step = 0
        self._solved_count = remaining_jobs.size
        self.lp_solves += 1

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        remaining = np.nonzero(state.remaining & self._universe)[0]
        if remaining.size == 0:
            return self._idle
        stale = (
            self._schedule is None
            or self._step >= self._schedule.length
            or remaining.size * self.resolve_factor <= self._solved_count
        )
        if stale:
            self._resolve(remaining)
        row = self._schedule.assignment_at(self._step)
        self._step += 1
        return row
