"""STC-I: stochastic scheduling with exponential job lengths (Appendix C).

``R | pmtn, p_j ~ exp(lambda_j) | E[Cmax]``: job lengths are hidden
exponential draws; only the rates are known.  STC-I mirrors SUU-I-SEM's
structure — ``K = ceil(log log n) + 3`` oblivious rounds with *doubling*
length guesses ``2^(k-2) / lambda_j``, each round an (optimal)
Lawler–Labetoulle preemptive schedule for the guessed deterministic
lengths, followed by a serial fastest-machine fallback for stragglers.
Theorem 13: ``E[T_STC-I] = O(E[T_OPT] * log log n)``.

The *restart* variant (``R | restart, p_j~stoch | E[Cmax]``) replaces each
round's preemptive schedule with a non-preemptive LST assignment for
``R||Cmax`` — a job must run on one machine per attempt but may restart on
a different machine next round.

Per-trial lower bound: the realized preemptive optimum ``C*(p)`` (the LL
LP value at the realized lengths) satisfies ``E[T_OPT] >= E[C*(p)]``, which
the harness uses as the ratio denominator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.instance.generators import StochasticInstance
from repro.sim.results import MakespanStats
from repro.stochastic.lawler_labetoulle import decompose_timetable, solve_r_pmtn_cmax
from repro.stochastic.lst import solve_r_cmax_lst
from repro.stochastic.sim import execute_timetable
from repro.util.rng import ensure_rng

__all__ = [
    "stochastic_round_count",
    "STCITrial",
    "stc_i_trial",
    "serial_fastest_trial",
    "static_mean_trial",
    "estimate_stochastic",
    "realized_preemptive_optimum",
]


def stochastic_round_count(n_jobs: int) -> int:
    """``K = ceil(log2 log2 n) + 3`` with small-``n`` guards."""
    if n_jobs <= 2:
        return 3
    return int(math.ceil(math.log2(math.log2(n_jobs)))) + 3


@dataclass(frozen=True)
class STCITrial:
    """One STC-I execution.

    Attributes
    ----------
    makespan:
        Completion time of the last job.
    rounds_used:
        Number of doubling rounds started.
    fallback:
        Whether the serial fastest-machine fallback ran.
    """

    makespan: float
    rounds_used: int
    fallback: bool


def _fallback_serial(work: np.ndarray, speeds: np.ndarray) -> float:
    """Serial fastest-machine time for the remaining work."""
    alive = np.nonzero(work > 0)[0]
    if alive.size == 0:
        return 0.0
    best = speeds[:, alive].max(axis=0)
    return float((work[alive] / best).sum())


def stc_i_trial(
    instance: StochasticInstance,
    realized: np.ndarray,
    *,
    variant: str = "pmtn",
    n_rounds: int | None = None,
) -> STCITrial:
    """Run one STC-I execution against realized lengths ``realized``.

    ``variant="pmtn"`` uses Lawler–Labetoulle rounds (Theorem 13);
    ``"restart"`` uses LST ``R||Cmax`` rounds.
    """
    if variant not in ("pmtn", "restart"):
        raise ValueError(f"unknown variant {variant!r}")
    speeds = instance.speeds
    rates = instance.rates
    n = instance.n_jobs
    work = np.array(realized, dtype=np.float64)
    if work.shape != (n,):
        raise ValueError(f"realized lengths must have shape ({n},)")
    K = n_rounds if n_rounds is not None else stochastic_round_count(n)

    elapsed = 0.0
    rounds_used = 0
    for k in range(1, K + 1):
        alive = np.nonzero(work > 0)[0]
        if alive.size == 0:
            return STCITrial(makespan=elapsed, rounds_used=rounds_used, fallback=False)
        rounds_used = k
        guesses = np.zeros(n, dtype=np.float64)
        guesses[alive] = 2.0 ** (k - 2) / rates[alive]
        if variant == "pmtn":
            c_star, X = solve_r_pmtn_cmax(speeds, guesses)
            timetable = decompose_timetable(X, c_star)
        else:
            sub_speeds = speeds[:, alive]
            assignment, _ = solve_r_cmax_lst(sub_speeds, guesses[alive])
            timetable = _assignment_timetable(
                assignment, sub_speeds, guesses[alive], alive, n, speeds.shape[0]
            )
        outcome = execute_timetable(timetable, speeds, work)
        work = outcome.remaining_work
        elapsed += outcome.elapsed

    if (work > 0).any():
        elapsed += _fallback_serial(work, speeds)
        return STCITrial(makespan=elapsed, rounds_used=rounds_used, fallback=True)
    return STCITrial(makespan=elapsed, rounds_used=rounds_used, fallback=False)


def _assignment_timetable(assignment, sub_speeds, sub_lengths, alive, n, m):
    """Timetable for a one-machine-per-job assignment (sequential slots).

    Encoded as global segments: at every event time some machine moves to
    its next job, so we sweep slot boundaries and emit constant-assignment
    segments (fine for the modest round sizes STC-I solves).
    """
    from repro.stochastic.lawler_labetoulle import PreemptiveTimetable

    # Per machine: list of (global job, processing time).
    queues: list[list[tuple[int, float]]] = [[] for _ in range(m)]
    for idx, j in enumerate(alive):
        i = int(assignment[idx])
        v = sub_speeds[i, idx]
        queues[i].append((int(j), float(sub_lengths[idx] / v)))
    # Event sweep.
    boundaries = {0.0}
    starts: list[list[float]] = [[] for _ in range(m)]
    for i in range(m):
        t = 0.0
        for _, dur in queues[i]:
            starts[i].append(t)
            t += dur
            boundaries.add(t)
    times = sorted(boundaries)
    segments = []
    for a, b in zip(times[:-1], times[1:]):
        mid = 0.5 * (a + b)
        row = [-1] * m
        for i in range(m):
            for (j, dur), st in zip(queues[i], starts[i]):
                if st <= mid < st + dur:
                    row[i] = j
                    break
        segments.append((b - a, tuple(row)))
    makespan = times[-1] if times else 0.0
    return PreemptiveTimetable(segments=tuple(segments), makespan=float(makespan))


def serial_fastest_trial(
    instance: StochasticInstance, realized: np.ndarray
) -> STCITrial:
    """Baseline: run every job, in order, on its fastest machine."""
    work = np.asarray(realized, dtype=np.float64)
    return STCITrial(
        makespan=_fallback_serial(work, instance.speeds),
        rounds_used=0,
        fallback=True,
    )


def static_mean_trial(
    instance: StochasticInstance,
    realized: np.ndarray,
    *,
    max_repeats: int = 64,
) -> STCITrial:
    """Baseline: repeat the mean-length LL schedule (no doubling).

    The analogue of SUU-I-OBL: every repetition targets lengths
    ``1/lambda_j`` for the remaining jobs, so stragglers with realized
    length ``c / lambda_j`` need ``~c`` repetitions — an ``O(log n)``-style
    strategy that the doubling rounds of STC-I beat.
    """
    speeds = instance.speeds
    work = np.array(realized, dtype=np.float64)
    elapsed = 0.0
    for _ in range(max_repeats):
        alive = np.nonzero(work > 0)[0]
        if alive.size == 0:
            return STCITrial(makespan=elapsed, rounds_used=0, fallback=False)
        guesses = np.zeros_like(work)
        guesses[alive] = 1.0 / instance.rates[alive]
        c_star, X = solve_r_pmtn_cmax(speeds, guesses)
        outcome = execute_timetable(decompose_timetable(X, c_star), speeds, work)
        work = outcome.remaining_work
        elapsed += outcome.elapsed
    elapsed += _fallback_serial(work, speeds)
    return STCITrial(makespan=elapsed, rounds_used=0, fallback=True)


def realized_preemptive_optimum(
    instance: StochasticInstance, realized: np.ndarray
) -> float:
    """``C*(p)``: the preemptive optimum for the realized lengths."""
    c_star, _ = solve_r_pmtn_cmax(instance.speeds, np.asarray(realized, float))
    return c_star


def estimate_stochastic(
    instance: StochasticInstance,
    trial_fn,
    n_trials: int,
    rng=None,
) -> tuple[MakespanStats, MakespanStats]:
    """Monte Carlo: run ``trial_fn(instance, realized)`` per trial.

    Returns ``(makespans, realized_lower_bounds)`` over shared length
    draws, so ratios can be formed pathwise.
    """
    rng = ensure_rng(rng)
    samples = np.empty(n_trials, dtype=np.float64)
    bounds = np.empty(n_trials, dtype=np.float64)
    name = getattr(trial_fn, "__name__", "stochastic-policy")
    for t in range(n_trials):
        realized = instance.sample_lengths(rng)
        samples[t] = trial_fn(instance, realized).makespan
        bounds[t] = realized_preemptive_optimum(instance, realized)
    return (
        MakespanStats(samples=samples, policy_name=name),
        MakespanStats(samples=bounds, policy_name="realized-LL-optimum"),
    )
