"""SUU-I-SEM: the semioblivious ``O(log log min{m, n})``-approximation
(Theorem 4).

The schedule runs in rounds.  Round 1 executes the oblivious schedule from
the rounded ``LP1(J, 1/2)`` solution once.  Round ``k`` (``2 <= k <= K``)
re-solves ``LP1(J_k, 2^(k-2))`` on the still-uncompleted jobs ``J_k`` —
targets *double* every round — and executes the resulting schedule once.
``K = ceil(log log min{m, n}) + 3`` rounds suffice except with tiny
probability; if jobs survive all ``K`` rounds:

* ``n <= m``: run the remaining jobs one at a time, each on **all**
  machines, until done (a trivial ``O(n)``-approximation, entered with
  probability at most ``1/n``);
* ``m < n``: keep repeating the round-``K`` schedule (each pass clears a
  surviving job with probability at least ``1 - 1/m^2``).

The competitive-analysis insight behind the doubling: a job alive at the
start of round ``k`` must have hidden threshold ``theta_j > 2^(k-3)``, so
the *offline* optimum itself had to give it that much mass — each round is
therefore ``O(T_OFF)`` long on the same hidden input.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.registry import register_policy
from repro.core.lp1 import solve_lp1
from repro.core.phased import (
    RoundScheduleCache,
    SemCursor,
    sem_advance,
    sem_phase_key,
    sem_row_for_key,
)
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.schedule.base import IDLE, PhasedPolicy, SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = ["SUUISemPolicy", "paper_round_count"]


def paper_round_count(n_jobs: int, n_machines: int) -> int:
    """``K = ceil(log2 log2 min{m, n}) + 3`` with small-value guards."""
    v = min(n_jobs, n_machines)
    if v <= 2:
        return 3  # log log v <= 0
    return int(math.ceil(math.log2(math.log2(v)))) + 3


@register_policy("sem", aliases=("suu-i-sem",), default_for=("independent",))
class SUUISemPolicy(PhasedPolicy):
    """The semioblivious doubling-rounds policy of Theorem 4.

    Parameters
    ----------
    jobs:
        Optional job universe (default: all jobs).  Used when SUU-C runs
        SEM on the long jobs of a segment.
    scale:
        Lemma 2 rounding scale.
    n_rounds:
        Override for ``K`` (the ablation bench sweeps this); ``None`` uses
        the paper's value.
    fallback:
        Disable to keep doubling forever instead of switching to the
        post-``K`` fallbacks (ablation only; the paper's analysis needs the
        fallback).

    Attributes
    ----------
    rounds_used:
        Number of LP rounds started during the last execution (diagnostic,
        read by the experiment harness).  Under grouped batch dispatch the
        policy drives many trials at once and this is the *maximum* round
        any trial reached.
    """

    name = "SUU-I-SEM"

    def __init__(
        self,
        jobs=None,
        scale: int = PAPER_SCALE,
        n_rounds: int | None = None,
        fallback: bool = True,
    ):
        self.jobs = None if jobs is None else tuple(sorted(set(int(j) for j in jobs)))
        self.scale = int(scale)
        self.n_rounds_override = n_rounds
        self.fallback = bool(fallback)
        self.rounds_used = 0
        self._instance = None
        self._universe: np.ndarray | None = None
        self._K = 0
        self._round = 0
        self._schedule: FiniteObliviousSchedule | None = None
        self._step = 0
        self._mode = "rounds"  # rounds | serial | repeat_last
        self._idle: np.ndarray | None = None
        self._all_machines: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _universe_and_rounds(self, instance) -> tuple[np.ndarray, int, int]:
        """The (mask, size, round budget K) triple both entry points need."""
        n = instance.n_jobs
        if self.jobs is None:
            universe = np.ones(n, dtype=bool)
            n_universe = n
        else:
            universe = np.zeros(n, dtype=bool)
            universe[list(self.jobs)] = True
            n_universe = len(self.jobs)
        K = (
            self.n_rounds_override
            if self.n_rounds_override is not None
            else paper_round_count(n_universe, instance.n_machines)
        )
        return universe, n_universe, K

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._universe, self._n_universe, self._K = self._universe_and_rounds(
            instance
        )
        self._round = 0
        self.rounds_used = 0
        self._schedule = None
        self._step = 0
        self._mode = "rounds"
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._all_machines = np.empty(instance.n_machines, dtype=np.int64)

    def _remaining_universe(self, state: SimulationState) -> np.ndarray:
        return np.nonzero(state.remaining & self._universe)[0]

    def _begin_round(self, remaining_jobs: np.ndarray) -> None:
        """Solve the next round's LP and lay out its schedule."""
        self._round += 1
        self.rounds_used = self._round
        target = 2.0 ** (self._round - 2)  # round 1 -> 1/2, doubling after
        relaxation = solve_lp1(self._instance, jobs=remaining_jobs, target=target)
        assignment = round_assignment(relaxation, scale=self.scale)
        self._schedule = FiniteObliviousSchedule.from_assignment(assignment)
        self._step = 0

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")

        if self._mode == "serial":
            remaining = self._remaining_universe(state)
            if remaining.size == 0:
                return self._idle
            self._all_machines.fill(int(remaining[0]))
            return self._all_machines

        if self._mode == "repeat_last":
            row = self._schedule.assignment_at(self._step % self._schedule.length)
            self._step += 1
            return row

        # Round mode: advance to the next round when the current schedule
        # is exhausted (or not yet built).
        while self._schedule is None or self._step >= self._schedule.length:
            remaining = self._remaining_universe(state)
            if remaining.size == 0:
                return self._idle
            if self.fallback and self._round >= self._K:
                if self._n_universe <= self._instance.n_machines:
                    self._mode = "serial"
                    return self.assign(state)
                # m < n: repeat the Kth round's schedule forever.
                self._mode = "repeat_last"
                self._step = 0
                if self._schedule is None or self._schedule.length == 0:
                    self._begin_round(remaining)  # degenerate guard
                    self._mode = "repeat_last"
                    self._step = 0
                return self.assign(state)
            self._begin_round(remaining)
        row = self._schedule.assignment_at(self._step)
        self._step += 1
        return row

    # ------------------------------------------------------------------
    # Grouped batch dispatch (PhasedPolicy protocol)
    # ------------------------------------------------------------------
    def start_phased(self, instance, trial_rngs) -> None:
        # The scalar start() never touches its rng, so there is no
        # per-trial randomness to replay; all trials share one memoized
        # round-schedule cache and keep only a SemCursor each.
        self._instance = instance
        universe, _, K = self._universe_and_rounds(instance)
        self._universe = universe
        self._cache = RoundScheduleCache(instance, self.scale)
        self._cursors = [
            SemCursor(universe, K, self.fallback) for _ in trial_rngs
        ]
        self._pending = [None] * len(self._cursors)
        self.rounds_used = 0
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._all_machines = np.empty(instance.n_machines, dtype=np.int64)

    def begin_step(self, state) -> None:
        """Boundary pre-pass: warm the round-schedule cache for every trial
        about to start a new round this step.

        Purely cache-warming (see ``RoundScheduleCache.ensure_many``):
        distinct survivor-set misses discovered at one lock-step boundary
        solve coalesced — concurrently, and under ``lp_reuse="subset"``
        through a shared union-anchor solve — instead of one by one inside
        the serial ``phase_key`` walk.
        """
        requests = []
        for k, cursor in enumerate(self._cursors):
            if cursor.mode != "rounds":
                continue
            if cursor.sid is not None and cursor.step < self._cache.schedule(
                cursor.sid
            ).length:
                continue
            if cursor.fallback and cursor.round >= cursor.n_rounds:
                continue  # about to enter a fallback mode, not a round
            remaining = np.flatnonzero(state.remaining[k] & cursor.universe_mask)
            if remaining.size:
                requests.append((2.0 ** (cursor.round - 1), remaining))
        if requests:
            self._cache.ensure_many(requests)

    def phase_key(self, trial: int, state):
        cursor = self._cursors[trial]
        key = sem_phase_key(
            cursor,
            self._cache,
            state.remaining[trial],
            self._instance.n_machines,
        )
        if cursor.round > self.rounds_used:
            self.rounds_used = cursor.round
        self._pending[trial] = key
        return key

    def assign_group(self, state, trials) -> np.ndarray:
        key = self._pending[trials[0]]
        row = sem_row_for_key(key, self._cache, self._idle, self._all_machines)
        for k in trials:
            sem_advance(self._cursors[k], key)
        return row
