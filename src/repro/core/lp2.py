"""(LP2): the disjoint-chains linear program (Section 4).

For chains ``{C_1, ..., C_z}``::

    minimize t
    s.t.  sum_i l'_ij x_ij >= 1      for every job j          (mass)
          sum_j x_ij <= t            for every machine i      (load)
          sum_{j in C_k} d_j <= t    for every chain C_k      (chain length)
          0 <= x_ij <= d_j           for every i, j
          d_j >= 1                   for every j

with ``l' = min(l, 1)``.  ``t_LP2`` lower-bounds ``2 E[T_OPT]`` (Lemma 5 /
the U-subset argument in DESIGN.md), and the Lemma 6 rounding turns the
fractional solution into an integral assignment whose *load* and *length*
are both ``O(t_LP2)``: machine loads at most ``ceil(6 t*)`` and per-job
lengths ``d̂_j <= ceil(6 d*_j)``, so each chain's total length grows by at
most a factor 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.lp1 import LP1Relaxation, MASS_EPS, cached_capped_logmass
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.errors import InvalidInstanceError
from repro.instance.instance import SUUInstance
from repro.lp.model import LinearProgram
from repro.schedule.base import IntegralAssignment

__all__ = ["LP2Relaxation", "solve_lp2", "round_lp2"]


@dataclass(frozen=True)
class LP2Relaxation:
    """An optimal fractional solution of (LP2).

    Attributes
    ----------
    x:
        Fractional assignment, shape ``(m, n)``.
    d:
        Fractional job lengths ``d*_j`` (shape ``(n,)``), each >= 1.
    t_star:
        Optimal value (bounds both machine loads and chain lengths).
    chains:
        The chains the program was built for.
    ell_capped:
        ``l' = min(l, 1)``.
    """

    x: np.ndarray
    d: np.ndarray
    t_star: float
    chains: tuple[tuple[int, ...], ...]
    ell_capped: np.ndarray

    def as_lp1(self) -> LP1Relaxation:
        """Project onto the (LP1) shape consumed by the shared rounding."""
        jobs = tuple(sorted(j for chain in self.chains for j in chain))
        return LP1Relaxation(
            x=self.x,
            t_star=self.t_star,
            jobs=jobs,
            target=1.0,
            ell_capped=self.ell_capped,
        )


def solve_lp2(instance: SUUInstance, chains) -> LP2Relaxation:
    """Solve the (LP2) relaxation for the given chains.

    ``chains`` must partition a subset of jobs (each an ordered job list);
    jobs outside all chains are ignored (used by SUU-T, which calls this
    block by block).
    """
    n, m = instance.n_jobs, instance.n_machines
    chains = tuple(tuple(int(j) for j in chain) for chain in chains)
    covered = [j for chain in chains for j in chain]
    if len(set(covered)) != len(covered):
        raise InvalidInstanceError("chains overlap")
    if not covered:
        raise InvalidInstanceError("no jobs in any chain")
    if min(covered) < 0 or max(covered) >= n:
        raise InvalidInstanceError("chain job ids out of range")

    ell_capped = cached_capped_logmass(instance, 1.0)

    # Vectorized assembly.  Variables: t, then d_j per job in chain
    # iteration order, then x_ij per job in that order with machines
    # ascending — the numbering the per-coefficient dict builder used, so
    # solutions are byte-identical to it.  ``covered`` concatenates the
    # chains, so each chain's d variables occupy a contiguous range.
    cov = np.asarray(covered, dtype=np.int64)
    k = cov.size
    sub = ell_capped[:, cov]  # (m, k)
    usable = sub > MASS_EPS
    per_job = usable.sum(axis=0)
    if not per_job.all():
        bad = cov[int(np.argmin(per_job > 0))]
        raise InvalidInstanceError(f"job {bad} has no machine with positive log mass")
    job_pos, mach_idx = np.nonzero(usable.T)
    nnz = job_pos.size

    lp = LinearProgram()
    t_var = lp.add_variable(objective=1.0)
    d_vars = np.asarray(lp.add_variables(k, lb=1.0), dtype=np.int64)
    x_vars = np.asarray(lp.add_variables(nnz), dtype=np.int64)

    # Mass constraints (4): one ``>= 1`` row per covered job.
    lp.add_rows_csr(
        np.concatenate(([0], np.cumsum(per_job))),
        x_vars,
        sub[mach_idx, job_pos],
        np.ones(k),
        ">=",
    )
    # Machine loads (5): ``sum_j x_ij - t <= 0`` per machine with usable jobs.
    order = np.argsort(mach_idx, kind="stable")
    per_mach = np.bincount(mach_idx, minlength=m)
    used = per_mach > 0
    load_indptr = np.concatenate(([0], np.cumsum(per_mach[used] + 1)))
    load_cols = np.empty(load_indptr[-1], dtype=np.int64)
    load_vals = np.empty(load_indptr[-1], dtype=np.float64)
    t_slot = load_indptr[1:] - 1
    x_slot = np.ones(load_indptr[-1], dtype=bool)
    x_slot[t_slot] = False
    load_cols[x_slot] = x_vars[order]
    load_vals[x_slot] = 1.0
    load_cols[t_slot] = t_var
    load_vals[t_slot] = -1.0
    lp.add_rows_csr(
        load_indptr, load_cols, load_vals, np.zeros(int(used.sum())), "<="
    )
    # Chain lengths (6): ``sum_{j in C} d_j - t <= 0`` per chain.
    chain_lens = np.asarray([len(chain) for chain in chains], dtype=np.int64)
    ch_indptr = np.concatenate(([0], np.cumsum(chain_lens + 1)))
    ch_cols = np.empty(ch_indptr[-1], dtype=np.int64)
    ch_vals = np.empty(ch_indptr[-1], dtype=np.float64)
    ch_t = ch_indptr[1:] - 1
    ch_d = np.ones(ch_indptr[-1], dtype=bool)
    ch_d[ch_t] = False
    ch_cols[ch_d] = d_vars
    ch_vals[ch_d] = 1.0
    ch_cols[ch_t] = t_var
    ch_vals[ch_t] = -1.0
    lp.add_rows_csr(ch_indptr, ch_cols, ch_vals, np.zeros(len(chains)), "<=")
    # x_ij <= d_j (7): one two-entry row per x variable, in variable order.
    xd_cols = np.empty(2 * nnz, dtype=np.int64)
    xd_vals = np.empty(2 * nnz, dtype=np.float64)
    xd_cols[0::2] = x_vars
    xd_vals[0::2] = 1.0
    xd_cols[1::2] = d_vars[job_pos]
    xd_vals[1::2] = -1.0
    lp.add_rows_csr(
        2 * np.arange(nnz + 1, dtype=np.int64), xd_cols, xd_vals, np.zeros(nnz), "<="
    )

    sol = lp.solve()
    x = np.zeros((m, n), dtype=np.float64)
    # ``+ 0.0`` normalizes HiGHS's signed zeros to +0.0, matching the old
    # per-entry ``max(0.0, .)`` builder bit for bit.
    x[mach_idx, cov[job_pos]] = np.maximum(0.0, sol.x[x_vars]) + 0.0
    d = np.zeros(n, dtype=np.float64)
    d[cov] = np.maximum(1.0, sol.x[d_vars])
    return LP2Relaxation(
        x=x, d=d, t_star=float(sol.value), chains=chains, ell_capped=ell_capped
    )


def round_lp2(
    relaxation: LP2Relaxation, scale: int = PAPER_SCALE
) -> IntegralAssignment:
    """Lemma 6 rounding: Lemma 2's flow with per-job arc caps ``ceil(scale d*_j)``.

    The returned assignment has mass >= 1 per job, load <= ``ceil(scale
    t*)`` and lengths ``d̂_j <= ceil(scale d*_j)``, so every chain's length
    is at most ``(scale + 1) t*``.
    """
    caps = np.zeros(relaxation.d.shape[0], dtype=np.int64)
    for chain in relaxation.chains:
        for j in chain:
            caps[j] = int(math.ceil(scale * relaxation.d[j]))
    return round_assignment(relaxation.as_lp1(), scale=scale, per_job_caps=caps)
