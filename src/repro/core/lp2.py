"""(LP2): the disjoint-chains linear program (Section 4).

For chains ``{C_1, ..., C_z}``::

    minimize t
    s.t.  sum_i l'_ij x_ij >= 1      for every job j          (mass)
          sum_j x_ij <= t            for every machine i      (load)
          sum_{j in C_k} d_j <= t    for every chain C_k      (chain length)
          0 <= x_ij <= d_j           for every i, j
          d_j >= 1                   for every j

with ``l' = min(l, 1)``.  ``t_LP2`` lower-bounds ``2 E[T_OPT]`` (Lemma 5 /
the U-subset argument in DESIGN.md), and the Lemma 6 rounding turns the
fractional solution into an integral assignment whose *load* and *length*
are both ``O(t_LP2)``: machine loads at most ``ceil(6 t*)`` and per-job
lengths ``d̂_j <= ceil(6 d*_j)``, so each chain's total length grows by at
most a factor 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.lp1 import LP1Relaxation, MASS_EPS
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.errors import InvalidInstanceError
from repro.instance.instance import SUUInstance
from repro.lp.model import LinearProgram
from repro.schedule.base import IntegralAssignment
from repro.util.logmass import capped_logmass

__all__ = ["LP2Relaxation", "solve_lp2", "round_lp2"]


@dataclass(frozen=True)
class LP2Relaxation:
    """An optimal fractional solution of (LP2).

    Attributes
    ----------
    x:
        Fractional assignment, shape ``(m, n)``.
    d:
        Fractional job lengths ``d*_j`` (shape ``(n,)``), each >= 1.
    t_star:
        Optimal value (bounds both machine loads and chain lengths).
    chains:
        The chains the program was built for.
    ell_capped:
        ``l' = min(l, 1)``.
    """

    x: np.ndarray
    d: np.ndarray
    t_star: float
    chains: tuple[tuple[int, ...], ...]
    ell_capped: np.ndarray

    def as_lp1(self) -> LP1Relaxation:
        """Project onto the (LP1) shape consumed by the shared rounding."""
        jobs = tuple(sorted(j for chain in self.chains for j in chain))
        return LP1Relaxation(
            x=self.x,
            t_star=self.t_star,
            jobs=jobs,
            target=1.0,
            ell_capped=self.ell_capped,
        )


def solve_lp2(instance: SUUInstance, chains) -> LP2Relaxation:
    """Solve the (LP2) relaxation for the given chains.

    ``chains`` must partition a subset of jobs (each an ordered job list);
    jobs outside all chains are ignored (used by SUU-T, which calls this
    block by block).
    """
    n, m = instance.n_jobs, instance.n_machines
    chains = tuple(tuple(int(j) for j in chain) for chain in chains)
    covered = [j for chain in chains for j in chain]
    if len(set(covered)) != len(covered):
        raise InvalidInstanceError("chains overlap")
    if not covered:
        raise InvalidInstanceError("no jobs in any chain")
    if min(covered) < 0 or max(covered) >= n:
        raise InvalidInstanceError("chain job ids out of range")

    ell_capped = capped_logmass(instance.ell, 1.0)

    lp = LinearProgram()
    t_var = lp.add_variable(objective=1.0)
    d_var: dict[int, int] = {j: lp.add_variable(objective=0.0, lb=1.0) for j in covered}
    var_of: dict[tuple[int, int], int] = {}
    for j in covered:
        usable = np.nonzero(ell_capped[:, j] > MASS_EPS)[0]
        if usable.size == 0:
            raise InvalidInstanceError(f"job {j} has no machine with positive log mass")
        for i in usable:
            var_of[(int(i), j)] = lp.add_variable(objective=0.0)

    # Mass constraints (4).
    for j in covered:
        coeffs = {
            var: float(ell_capped[i, jj]) for (i, jj), var in var_of.items() if jj == j
        }
        lp.add_ge(coeffs, 1.0)
    # Machine loads (5).
    for i in range(m):
        coeffs = {var: 1.0 for (ii, _), var in var_of.items() if ii == i}
        if coeffs:
            coeffs[t_var] = -1.0
            lp.add_le(coeffs, 0.0)
    # Chain lengths (6).
    for chain in chains:
        coeffs = {d_var[j]: 1.0 for j in chain}
        coeffs[t_var] = -1.0
        lp.add_le(coeffs, 0.0)
    # x_ij <= d_j (7).
    for (i, j), var in var_of.items():
        lp.add_le({var: 1.0, d_var[j]: -1.0}, 0.0)

    sol = lp.solve()
    x = np.zeros((m, n), dtype=np.float64)
    for (i, j), var in var_of.items():
        x[i, j] = max(0.0, sol.x[var])
    d = np.zeros(n, dtype=np.float64)
    for j, var in d_var.items():
        d[j] = max(1.0, sol.x[var])
    return LP2Relaxation(
        x=x, d=d, t_star=float(sol.value), chains=chains, ell_capped=ell_capped
    )


def round_lp2(
    relaxation: LP2Relaxation, scale: int = PAPER_SCALE
) -> IntegralAssignment:
    """Lemma 6 rounding: Lemma 2's flow with per-job arc caps ``ceil(scale d*_j)``.

    The returned assignment has mass >= 1 per job, load <= ``ceil(scale
    t*)`` and lengths ``d̂_j <= ceil(scale d*_j)``, so every chain's length
    is at most ``(scale + 1) t*``.
    """
    caps = np.zeros(relaxation.d.shape[0], dtype=np.int64)
    for chain in relaxation.chains:
        for j in chain:
            caps[j] = int(math.ceil(scale * relaxation.d[j]))
    return round_assignment(relaxation.as_lp1(), scale=scale, per_job_caps=caps)
