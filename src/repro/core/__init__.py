"""The paper's algorithms: LP formulations, roundings, and policies."""

from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.layered import LayeredPolicy
from repro.core.lp1 import LP1Relaxation, solve_lp1
from repro.core.lp2 import LP2Relaxation, round_lp2, solve_lp2
from repro.core.phased import RoundScheduleCache
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_obl import SUUIOblPolicy, build_obl_schedule
from repro.core.suu_i_sem import SUUISemPolicy, paper_round_count
from repro.core.suu_t import SUUTPolicy

__all__ = [
    "SUUIAdaptiveLPPolicy",
    "LP1Relaxation",
    "solve_lp1",
    "LP2Relaxation",
    "solve_lp2",
    "round_lp2",
    "round_assignment",
    "PAPER_SCALE",
    "RoundScheduleCache",
    "SUUIOblPolicy",
    "build_obl_schedule",
    "SUUISemPolicy",
    "paper_round_count",
    "SUUCPolicy",
    "SUUTPolicy",
    "LayeredPolicy",
]
