"""Lemma 2 / Lemma 6 rounding: fractional LP solutions to integral assignments.

The rounding proceeds exactly as in the paper:

1. **Group** machines by log-mass magnitude: for each job ``j``, machines
   with ``l'_ij`` in ``[2^k, 2^(k+1))`` form group ``k``, with total
   fractional assignment ``D_jk = sum x*_ij``.  Grouping costs at most a
   factor 2 of mass.
2. **Scale and floor** the group assignments to ``floor(scale * D_jk)``
   (``scale = 6`` in the paper).  The geometric-series argument in Lemma 2
   shows the floored groups still carry mass at least ``L`` per job.
3. **Integral flow**: build the network ``s -> u_jk -> v_i -> w`` with
   source capacities ``floor(scale * D_jk)``, machine capacities
   ``ceil(scale * t*)``, and job-to-machine arcs restricted to the group's
   machines (capacity ``ceil(scale * d*_j)`` in the Lemma 6 variant,
   infinite otherwise).  Scaling the fractional solution by ``scale`` is a
   feasible fractional flow saturating the source, so by Ford–Fulkerson
   integrality Dinic returns an integral flow saturating it; the arc flows
   are the integral assignment ``{x̂_ij}``.

The result is an :class:`~repro.schedule.base.IntegralAssignment` with load
at most ``ceil(scale * t*)``, every job receiving capped mass at least
``L``, and (in the Lemma 6 variant) per-job lengths ``d̂_j <= ceil(scale *
d*_j)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.lp1 import LP1Relaxation, MASS_EPS
from repro.errors import RoundingError
from repro.flow.dinic import INF_CAPACITY, MaxFlowNetwork
from repro.schedule.base import IntegralAssignment

__all__ = ["round_assignment", "PAPER_SCALE"]

#: The scaling constant of Lemma 2.  6 is what the paper's geometric-series
#: argument needs; the ablation bench sweeps it.
PAPER_SCALE: int = 6

#: Relative feasibility tolerance when checking the rounded masses.  The
#: Lemma guarantees feasibility for exact LP optima; the tolerance only
#: absorbs solver round-off.
_FEAS_RTOL: float = 1e-6


def round_assignment(
    relaxation: LP1Relaxation,
    scale: int = PAPER_SCALE,
    per_job_caps: np.ndarray | None = None,
    *,
    check: bool = True,
) -> IntegralAssignment:
    """Round a fractional (LP1)/(LP2) solution to an integral assignment.

    Parameters
    ----------
    relaxation:
        The fractional solution (for (LP2), pass its x/t/l' projected into
        an :class:`~repro.core.lp1.LP1Relaxation`; see
        :func:`repro.core.lp2.solve_lp2`).
    scale:
        The scaling constant (paper: 6).  Values below 6 void the Lemma 2
        guarantee; the rounding then raises :class:`RoundingError` whenever
        the produced assignment misses the target (used by the ablation).
    per_job_caps:
        Lemma 6 variant: cap the flow from job ``j`` to any single machine
        at ``per_job_caps[j]`` (``ceil(scale * d*_j)`` in the paper).
    check:
        Verify feasibility of the rounded solution (mass target and load
        bound) and raise :class:`RoundingError` on miss.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    x_star = relaxation.x
    ell = relaxation.ell_capped
    m, n = x_star.shape
    L = relaxation.target
    jobs = relaxation.jobs
    if per_job_caps is not None:
        per_job_caps = np.asarray(per_job_caps)
        if per_job_caps.shape != (n,):
            raise ValueError(
                f"per_job_caps must have shape ({n},), got {per_job_caps.shape}"
            )

    if not jobs:
        return IntegralAssignment(
            x=np.zeros((m, n), dtype=np.int64), jobs=(), target=L
        )

    # --- Steps 1-2: group machines per job, scale and floor. -------------
    # groups[(j, k)] = (capacity floor(scale * D_jk), [machines in group k])
    group_cap: dict[tuple[int, int], int] = {}
    group_machines: dict[tuple[int, int], list[int]] = {}
    for j in jobs:
        mass_col = ell[:, j]
        usable = np.nonzero(mass_col > MASS_EPS)[0]
        d_total: dict[int, float] = {}
        for i in usable:
            k = int(math.floor(math.log2(mass_col[i])))
            group_machines.setdefault((j, k), []).append(int(i))
            if x_star[i, j] > 0.0:
                d_total[k] = d_total.get(k, 0.0) + float(x_star[i, j])
        for k, d in d_total.items():
            cap = int(math.floor(scale * d))
            if cap > 0:
                group_cap[(j, k)] = cap

    # Capacity ceil(scale * t*) as in the paper; taking the max with the
    # fractional solution's actual load keeps the scaled flow feasible even
    # when the solver reports t* a hair below the true machine loads.
    t_eff = max(relaxation.t_star, float(x_star.sum(axis=1).max()))
    machine_cap = max(int(math.ceil(scale * t_eff)), 1)

    # --- Step 3: integral flow. ------------------------------------------
    # Nodes: 0 = source, 1 = sink, then one per group, then one per machine.
    net = MaxFlowNetwork(2)
    source, sink = 0, 1
    group_ids = sorted(group_cap)
    group_node = {gk: net.add_node() for gk in group_ids}
    machine_node = [net.add_node() for _ in range(m)]
    for i in range(m):
        net.add_edge(machine_node[i], sink, machine_cap)
    demand = 0
    arc_edges: list[tuple[int, int, int]] = []  # (edge-id, machine, job)
    for gk in group_ids:
        j, k = gk
        cap = group_cap[gk]
        demand += cap
        net.add_edge(source, group_node[gk], cap)
        arc_cap = INF_CAPACITY
        if per_job_caps is not None:
            arc_cap = int(per_job_caps[j])
        for i in group_machines[gk]:
            eid = net.add_edge(group_node[gk], machine_node[i], arc_cap)
            arc_edges.append((eid, i, j))

    flow = net.max_flow(source, sink)
    if flow != demand:
        raise RoundingError(
            f"integral flow {flow} fell short of demand {demand}; the "
            f"scaled fractional solution should saturate the source "
            f"(scale={scale}, t*={relaxation.t_star:.6g})"
        )

    x_hat = np.zeros((m, n), dtype=np.int64)
    for eid, i, j in arc_edges:
        x_hat[i, j] += net.flow_on(eid)

    result = IntegralAssignment(x=x_hat, jobs=jobs, target=L)

    if check:
        mass = result.mass_per_job(ell)
        short = [j for j in jobs if mass[j] < L * (1.0 - _FEAS_RTOL)]
        if short:
            raise RoundingError(
                f"rounded assignment misses target L={L} on jobs {short[:5]} "
                f"(scale={scale}; scale >= 6 is required by Lemma 2)"
            )
        if result.load > machine_cap:
            raise RoundingError(
                f"rounded load {result.load} exceeds machine capacity "
                f"{machine_cap}"
            )
    return result
