"""SUU-I-OBL: the oblivious ``O(log n)``-approximation (Theorem 3).

Solve (LP1) at target ``L = 1/2`` over all jobs, round (Lemma 2), lay the
integral assignment out as a finite oblivious schedule of length
``O(E[T_OPT])``, and repeat that schedule until every job completes.  Each
pass gives every job log mass at least ``1/2``, hence success probability
at least ``1 - 2**-0.5 ~ 0.29``; Chernoff plus a union bound give
completion within ``O(log n)`` passes with high probability.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.lp1 import solve_lp1
from repro.core.rounding import PAPER_SCALE, round_assignment
from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    SimulationState,
    VectorizedPolicy,
)
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = ["SUUIOblPolicy", "build_obl_schedule"]


def build_obl_schedule(
    instance, jobs=None, target: float = 0.5, scale: int = PAPER_SCALE
) -> FiniteObliviousSchedule:
    """The single-pass oblivious schedule of SUU-I-OBL.

    Exposed separately because SUU-I-SEM's rounds and the exact
    oblivious-repeat sampler both reuse it.
    """
    relaxation = solve_lp1(instance, jobs=jobs, target=target)
    assignment = round_assignment(relaxation, scale=scale)
    return FiniteObliviousSchedule.from_assignment(assignment)


@register_policy("obl", aliases=("suu-i-obl",))
class SUUIOblPolicy(VectorizedPolicy):
    """Repeat the rounded LP1(J, 1/2) schedule until all jobs complete.

    Parameters
    ----------
    target:
        Per-pass log-mass target ``L`` (paper: 1/2).
    scale:
        Lemma 2 rounding scale (paper: 6).
    jobs:
        Optional job subset (used when embedded in other algorithms);
        machines idle once every covered job has completed.
    """

    name = "SUU-I-OBL"

    def __init__(self, target: float = 0.5, scale: int = PAPER_SCALE, jobs=None):
        self.target = float(target)
        self.scale = int(scale)
        self.jobs = None if jobs is None else tuple(sorted(set(int(j) for j in jobs)))
        self._schedule: FiniteObliviousSchedule | None = None
        self._step = 0
        self._idle: np.ndarray | None = None

    def start(self, instance, rng) -> None:
        self._schedule = build_obl_schedule(
            instance, jobs=self.jobs, target=self.target, scale=self.scale
        )
        self._step = 0
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._schedule is None:
            raise RuntimeError("policy used before start()")
        if self._schedule.length == 0:
            return self._idle
        row = self._schedule.assignment_at(self._step % self._schedule.length)
        self._step += 1
        return row

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        # The LP solve + rounding in start() is trial-independent, so a
        # batch run pays for it once instead of once per trial; the
        # assignment itself is oblivious (a function of the timestep only).
        if self._schedule is None:
            raise RuntimeError("policy used before start()")
        if self._schedule.length == 0:
            return np.broadcast_to(self._idle, (state.n_trials, self._idle.size))
        row = self._schedule.assignment_at(state.t % self._schedule.length)
        return np.broadcast_to(row, (state.n_trials, row.size))
