"""(LP1): the independent-jobs linear program (Section 3).

For a job subset ``J'`` and log-mass target ``L``::

    minimize t
    s.t.  sum_i l'_ij x_ij >= L     for every j in J'   (mass)
          sum_j x_ij <= t           for every machine i (load)
          x_ij >= 0

with ``l'_ij = min(l_ij, L)`` (the capping that makes the rounding's
grouping argument work; it changes nothing for integral solutions).  The
paper's (LP1) additionally requires integrality; we solve the relaxation
here and round it in :mod:`repro.core.rounding` (Lemma 2).

``t_LP1(J, 1/2) / 2`` is a valid lower bound on ``E[T_OPT]`` (Lemma 1's
proof applies verbatim to the relaxation, since the optimal schedule's
realized allocation is feasible for it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidInstanceError
from repro.instance.instance import SUUInstance
from repro.lp.model import LinearProgram
from repro.util.logmass import capped_logmass

__all__ = ["LP1Relaxation", "solve_lp1", "cached_capped_logmass"]

#: Entries of the capped log-mass matrix below this are treated as zero
#: (the machine contributes nothing usable to the job).
MASS_EPS: float = 2.0**-60

#: Capped log-mass matrices memoized by (instance digest, target).  Survivor
#: -set solves re-cap the same (m, n) matrix thousands of times per run on
#: chain-heavy instances; the cap depends only on the instance and L, never
#: on the job subset.  Entries are frozen read-only so sharing is safe.
_CAPPED_CACHE: dict[tuple[str, float], np.ndarray] = {}
_CAPPED_CACHE_MAX = 128


def cached_capped_logmass(instance: SUUInstance, target: float) -> np.ndarray:
    """``min(instance.ell, target)`` memoized per (instance digest, target).

    Returns a read-only array shared across calls; callers must not write
    to it (LP builders and the rounding only read).
    """
    key = (instance.digest(), float(target))
    cached = _CAPPED_CACHE.get(key)
    if cached is None:
        cached = capped_logmass(instance.ell, float(target))
        cached.setflags(write=False)
        while len(_CAPPED_CACHE) >= _CAPPED_CACHE_MAX:
            _CAPPED_CACHE.pop(next(iter(_CAPPED_CACHE)))
        _CAPPED_CACHE[key] = cached
    return cached


@dataclass(frozen=True)
class LP1Relaxation:
    """An optimal fractional solution of (LP1).

    Attributes
    ----------
    x:
        Fractional assignment, shape ``(m, n)``; columns of jobs outside
        ``jobs`` are zero.
    t_star:
        The optimal relaxation value ``t*`` (a load bound).
    jobs:
        The job subset ``J'``.
    target:
        The mass target ``L``.
    ell_capped:
        The capped matrix ``l' = min(l, L)`` used in the mass constraints.
    """

    x: np.ndarray
    t_star: float
    jobs: tuple[int, ...]
    target: float
    ell_capped: np.ndarray

    def mass_per_job(self) -> np.ndarray:
        """Capped mass each job receives: ``sum_i l'_ij x_ij``."""
        return (self.x * self.ell_capped).sum(axis=0)


def solve_lp1(
    instance: SUUInstance, jobs=None, target: float = 0.5
) -> LP1Relaxation:
    """Solve the (LP1) relaxation for ``jobs`` (default: all) at ``target``.

    Raises
    ------
    InvalidInstanceError
        If some requested job has no machine with positive log mass (such a
        job can never meet any positive target).
    """
    if target <= 0:
        raise ValueError(f"target L must be positive, got {target}")
    n, m = instance.n_jobs, instance.n_machines
    if jobs is None:
        job_list = list(range(n))
    else:
        job_list = sorted({int(j) for j in jobs})
        if job_list and not (0 <= job_list[0] and job_list[-1] < n):
            raise ValueError(f"job ids out of range for {n} jobs")
    ell_capped = cached_capped_logmass(instance, target)

    if not job_list:
        return LP1Relaxation(
            x=np.zeros((m, n)),
            t_star=0.0,
            jobs=(),
            target=float(target),
            ell_capped=ell_capped,
        )

    # Vectorized assembly.  Variables: t first, then x_ij per job in
    # ``job_list`` order, machines ascending within each job — the same
    # numbering the per-coefficient dict builder produced, so solutions
    # are byte-identical to it.
    job_arr = np.asarray(job_list, dtype=np.int64)
    sub = ell_capped[:, job_arr]  # (m, k)
    usable = sub > MASS_EPS
    per_job = usable.sum(axis=0)
    if not per_job.all():
        bad = job_arr[int(np.argmin(per_job > 0))]
        raise InvalidInstanceError(
            f"job {bad} has no machine with positive log mass"
        )
    # Job-major enumeration of usable (machine, job) pairs.
    job_pos, mach_idx = np.nonzero(usable.T)
    nnz = job_pos.size

    lp = LinearProgram()
    t_var = lp.add_variable(objective=1.0)
    x_vars = np.asarray(lp.add_variables(nnz), dtype=np.int64)

    # Mass constraints: one ``>= L`` row per job, entries contiguous by job.
    lp.add_rows_csr(
        np.concatenate(([0], np.cumsum(per_job))),
        x_vars,
        sub[mach_idx, job_pos],
        np.full(job_arr.size, float(target)),
        ">=",
    )
    # Machine loads: ``sum_j x_ij - t <= 0`` per machine with any usable job.
    order = np.argsort(mach_idx, kind="stable")
    per_mach = np.bincount(mach_idx, minlength=m)
    used = per_mach > 0
    load_indptr = np.concatenate(([0], np.cumsum(per_mach[used] + 1)))
    load_cols = np.empty(load_indptr[-1], dtype=np.int64)
    load_vals = np.empty(load_indptr[-1], dtype=np.float64)
    t_slot = load_indptr[1:] - 1
    x_slot = np.ones(load_indptr[-1], dtype=bool)
    x_slot[t_slot] = False
    load_cols[x_slot] = x_vars[order]
    load_vals[x_slot] = 1.0
    load_cols[t_slot] = t_var
    load_vals[t_slot] = -1.0
    lp.add_rows_csr(
        load_indptr, load_cols, load_vals, np.zeros(int(used.sum())), "<="
    )

    sol = lp.solve()
    x = np.zeros((m, n), dtype=np.float64)
    # ``+ 0.0`` normalizes HiGHS's signed zeros to +0.0, matching the old
    # per-entry ``max(0.0, .)`` builder bit for bit.
    x[mach_idx, job_arr[job_pos]] = np.maximum(0.0, sol.x[x_vars]) + 0.0
    return LP1Relaxation(
        x=x,
        t_star=float(sol.value),
        jobs=tuple(job_list),
        target=float(target),
        ell_capped=ell_capped,
    )
