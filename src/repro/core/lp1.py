"""(LP1): the independent-jobs linear program (Section 3).

For a job subset ``J'`` and log-mass target ``L``::

    minimize t
    s.t.  sum_i l'_ij x_ij >= L     for every j in J'   (mass)
          sum_j x_ij <= t           for every machine i (load)
          x_ij >= 0

with ``l'_ij = min(l_ij, L)`` (the capping that makes the rounding's
grouping argument work; it changes nothing for integral solutions).  The
paper's (LP1) additionally requires integrality; we solve the relaxation
here and round it in :mod:`repro.core.rounding` (Lemma 2).

``t_LP1(J, 1/2) / 2`` is a valid lower bound on ``E[T_OPT]`` (Lemma 1's
proof applies verbatim to the relaxation, since the optimal schedule's
realized allocation is feasible for it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidInstanceError
from repro.instance.instance import SUUInstance
from repro.lp.model import LinearProgram
from repro.util.logmass import capped_logmass

__all__ = ["LP1Relaxation", "solve_lp1"]

#: Entries of the capped log-mass matrix below this are treated as zero
#: (the machine contributes nothing usable to the job).
MASS_EPS: float = 2.0**-60


@dataclass(frozen=True)
class LP1Relaxation:
    """An optimal fractional solution of (LP1).

    Attributes
    ----------
    x:
        Fractional assignment, shape ``(m, n)``; columns of jobs outside
        ``jobs`` are zero.
    t_star:
        The optimal relaxation value ``t*`` (a load bound).
    jobs:
        The job subset ``J'``.
    target:
        The mass target ``L``.
    ell_capped:
        The capped matrix ``l' = min(l, L)`` used in the mass constraints.
    """

    x: np.ndarray
    t_star: float
    jobs: tuple[int, ...]
    target: float
    ell_capped: np.ndarray

    def mass_per_job(self) -> np.ndarray:
        """Capped mass each job receives: ``sum_i l'_ij x_ij``."""
        return (self.x * self.ell_capped).sum(axis=0)


def solve_lp1(
    instance: SUUInstance, jobs=None, target: float = 0.5
) -> LP1Relaxation:
    """Solve the (LP1) relaxation for ``jobs`` (default: all) at ``target``.

    Raises
    ------
    InvalidInstanceError
        If some requested job has no machine with positive log mass (such a
        job can never meet any positive target).
    """
    if target <= 0:
        raise ValueError(f"target L must be positive, got {target}")
    n, m = instance.n_jobs, instance.n_machines
    if jobs is None:
        job_list = list(range(n))
    else:
        job_list = sorted({int(j) for j in jobs})
        if job_list and not (0 <= job_list[0] and job_list[-1] < n):
            raise ValueError(f"job ids out of range for {n} jobs")
    ell_capped = capped_logmass(instance.ell, target)

    if not job_list:
        return LP1Relaxation(
            x=np.zeros((m, n)),
            t_star=0.0,
            jobs=(),
            target=float(target),
            ell_capped=ell_capped,
        )

    lp = LinearProgram()
    t_var = lp.add_variable(objective=1.0)
    var_of: dict[tuple[int, int], int] = {}
    for j in job_list:
        usable = np.nonzero(ell_capped[:, j] > MASS_EPS)[0]
        if usable.size == 0:
            raise InvalidInstanceError(
                f"job {j} has no machine with positive log mass"
            )
        for i in usable:
            var_of[(int(i), j)] = lp.add_variable(objective=0.0)

    for j in job_list:
        coeffs = {
            var: float(ell_capped[i, jj])
            for (i, jj), var in var_of.items()
            if jj == j
        }
        lp.add_ge(coeffs, float(target))
    for i in range(m):
        coeffs = {var: 1.0 for (ii, _), var in var_of.items() if ii == i}
        if coeffs:
            coeffs[t_var] = -1.0
            lp.add_le(coeffs, 0.0)

    sol = lp.solve()
    x = np.zeros((m, n), dtype=np.float64)
    for (i, j), var in var_of.items():
        x[i, j] = max(0.0, sol.x[var])
    return LP1Relaxation(
        x=x,
        t_star=float(sol.value),
        jobs=tuple(job_list),
        target=float(target),
        ell_capped=ell_capped,
    )
