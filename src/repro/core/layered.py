"""Level-by-level scheduling for layered (and general) DAGs.

The paper motivates SUU with MapReduce, whose dependency graph is a
complete bipartite DAG — "equivalent to two phases of independent jobs".
This module generalizes that observation: partition any DAG by longest-path
depth and run SUU-I-SEM on one level at a time.  Every edge goes from a
strictly lower to a higher level, so sequential level execution is always
precedence-safe.  For a DAG of depth ``D`` this gives an
``O(D log log min{m, n})`` guarantee against the per-level optima — not a
paper theorem (general DAGs are open there), but the natural extension the
introduction gestures at, and the right tool for MapReduce-shaped
workloads.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.phased import (
    RoundScheduleCache,
    SemCursor,
    sem_advance,
    sem_phase_key,
    sem_row_for_key,
)
from repro.core.rounding import PAPER_SCALE
from repro.core.suu_i_sem import SUUISemPolicy, paper_round_count
from repro.errors import ReproError
from repro.schedule.base import IDLE, PhasedPolicy, SimulationState

__all__ = ["LayeredPolicy"]


@register_policy("layered", default_for=("general",))
class LayeredPolicy(PhasedPolicy):
    """Sequential SUU-I-SEM over longest-path levels of any DAG.

    Attributes
    ----------
    stats:
        ``n_levels`` and per-level SEM round counts for the last *scalar*
        execution (grouped batch dispatch drives many trials at once and
        does not populate it).
    """

    name = "SUU-LAYERED"

    def __init__(self, scale: int = PAPER_SCALE):
        self.scale = int(scale)
        self.stats: dict = {}
        self._instance = None

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._rng = rng
        levels = instance.graph.levels()
        self._level_jobs = [
            np.nonzero(levels == lvl)[0] for lvl in range(int(levels.max()) + 1)
        ]
        self._level_idx = -1
        self._sub: SUUISemPolicy | None = None
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self.stats = {"n_levels": len(self._level_jobs), "rounds_per_level": []}

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        while True:
            if self._sub is not None and bool(
                state.remaining[self._level_jobs[self._level_idx]].any()
            ):
                return self._sub.assign(state)
            if self._sub is not None:
                self.stats["rounds_per_level"].append(self._sub.rounds_used)
            nxt = self._level_idx + 1
            if nxt >= len(self._level_jobs):
                if state.remaining.any():
                    raise ReproError("layered policy ran out of levels early")
                return self._idle
            self._level_idx = nxt
            self._sub = SUUISemPolicy(
                jobs=self._level_jobs[nxt].tolist(), scale=self.scale
            )
            self._sub.start(self._instance, self._rng.spawn(1)[0])

    # ------------------------------------------------------------------
    # Grouped batch dispatch (PhasedPolicy protocol)
    # ------------------------------------------------------------------
    def start_phased(self, instance, trial_rngs) -> None:
        self._instance = instance
        levels = instance.graph.levels()
        self._level_jobs = [
            np.nonzero(levels == lvl)[0] for lvl in range(int(levels.max()) + 1)
        ]
        # One boolean universe mask per level, shared by every trial's
        # cursor for that level; one solve cache across all levels (keys
        # embed the level's job set, so levels can never collide).
        n = instance.n_jobs
        self._level_masks = []
        for jobs in self._level_jobs:
            mask = np.zeros(n, dtype=bool)
            mask[jobs] = True
            self._level_masks.append(mask)
        self._cache = RoundScheduleCache(instance, self.scale)
        self._policy_rngs = list(trial_rngs)
        B = len(self._policy_rngs)
        self._trial_level = [-1] * B
        self._trial_cursor: list[SemCursor | None] = [None] * B
        self._pending = [None] * B
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._all_machines = np.empty(instance.n_machines, dtype=np.int64)

    def _enter_level(self, trial: int, level: int) -> SemCursor:
        """Fresh per-level SEM cursor, replaying the scalar rng spawn."""
        # The scalar path hands each level's sub-policy a spawned child;
        # SEM ignores it, but the spawn is replayed so the trial's policy
        # generator stays stream-for-stream identical to a scalar run.
        self._policy_rngs[trial].spawn(1)
        self._trial_level[trial] = level
        cursor = SemCursor(
            self._level_masks[level],
            paper_round_count(
                self._level_jobs[level].size, self._instance.n_machines
            ),
            fallback=True,
        )
        self._trial_cursor[trial] = cursor
        return cursor

    def phase_key(self, trial: int, state):
        remaining_row = state.remaining[trial]
        level, cursor = self._trial_level[trial], self._trial_cursor[trial]
        while cursor is None or not remaining_row[self._level_jobs[level]].any():
            level += 1
            if level >= len(self._level_jobs):
                if remaining_row.any():
                    raise ReproError("layered policy ran out of levels early")
                self._pending[trial] = ("idle",)
                return self._pending[trial]
            cursor = self._enter_level(trial, level)
        key = sem_phase_key(
            cursor, self._cache, remaining_row, self._instance.n_machines
        )
        self._pending[trial] = key
        return key

    def assign_group(self, state, trials) -> np.ndarray:
        key = self._pending[trials[0]]
        row = sem_row_for_key(key, self._cache, self._idle, self._all_machines)
        for k in trials:
            cursor = self._trial_cursor[k]
            if cursor is not None:
                sem_advance(cursor, key)
        return row
