"""Level-by-level scheduling for layered (and general) DAGs.

The paper motivates SUU with MapReduce, whose dependency graph is a
complete bipartite DAG — "equivalent to two phases of independent jobs".
This module generalizes that observation: partition any DAG by longest-path
depth and run SUU-I-SEM on one level at a time.  Every edge goes from a
strictly lower to a higher level, so sequential level execution is always
precedence-safe.  For a DAG of depth ``D`` this gives an
``O(D log log min{m, n})`` guarantee against the per-level optima — not a
paper theorem (general DAGs are open there), but the natural extension the
introduction gestures at, and the right tool for MapReduce-shaped
workloads.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.rounding import PAPER_SCALE
from repro.core.suu_i_sem import SUUISemPolicy
from repro.errors import ReproError
from repro.schedule.base import IDLE, Policy, SimulationState

__all__ = ["LayeredPolicy"]


@register_policy("layered", default_for=("general",))
class LayeredPolicy(Policy):
    """Sequential SUU-I-SEM over longest-path levels of any DAG.

    Attributes
    ----------
    stats:
        ``n_levels`` and per-level SEM round counts for the last execution.
    """

    name = "SUU-LAYERED"

    def __init__(self, scale: int = PAPER_SCALE):
        self.scale = int(scale)
        self.stats: dict = {}
        self._instance = None

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._rng = rng
        levels = instance.graph.levels()
        self._level_jobs = [
            np.nonzero(levels == lvl)[0] for lvl in range(int(levels.max()) + 1)
        ]
        self._level_idx = -1
        self._sub: SUUISemPolicy | None = None
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self.stats = {"n_levels": len(self._level_jobs), "rounds_per_level": []}

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        while True:
            if self._sub is not None and bool(
                state.remaining[self._level_jobs[self._level_idx]].any()
            ):
                return self._sub.assign(state)
            if self._sub is not None:
                self.stats["rounds_per_level"].append(self._sub.rounds_used)
            nxt = self._level_idx + 1
            if nxt >= len(self._level_jobs):
                if state.remaining.any():
                    raise ReproError("layered policy ran out of levels early")
                return self._idle
            self._level_idx = nxt
            self._sub = SUUISemPolicy(
                jobs=self._level_jobs[nxt].tolist(), scale=self.scale
            )
            self._sub.start(self._instance, self._rng.spawn(1)[0])
