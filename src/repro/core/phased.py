"""Shared phase bookkeeping for grouped batch dispatch of adaptive policies.

The LP-round family (``sem``, ``adapt``, ``layered``, and SUU-C's segment
runs) shares one execution skeleton: solve ``LP1(remaining, target)``,
round it, lay the result out as a :class:`~repro.schedule.oblivious.
FiniteObliviousSchedule`, and walk that schedule row by row until it is
exhausted or the covered jobs complete.  Under grouped dispatch
(:class:`~repro.schedule.base.PhasedPolicy`) that skeleton splits into two
shareable pieces:

* :class:`RoundScheduleCache` — the *expensive* piece, shared across all
  lock-stepped trials of one batch.  Round schedules are memoized by
  ``(target, remaining-set)``; the LP solve / rounding / layout pipeline is
  deterministic (no RNG anywhere in it), so every trial entering a round
  with the same survivor set replays one solve.  Each distinct schedule
  gets a small-integer id, which is what phase keys embed: two trials with
  the same ``(schedule id, step)`` are provably about to receive the same
  assignment row.
* :class:`SemCursor` — the *cheap* per-trial piece: a faithful replica of
  :class:`~repro.core.suu_i_sem.SUUISemPolicy`'s control state (mode,
  round index, schedule id, step cursor).  :func:`sem_phase_key` advances
  a cursor through exactly the scalar policy's control flow (doubling
  rounds, the serial and repeat-last fallbacks) and returns the trial's
  phase key; :func:`sem_row_for_key` maps a key to its assignment row;
  :func:`sem_advance` bumps the step cursor after the row executes.

Bit-identity rests on the determinism of the solve pipeline: a memoized
schedule is byte-for-byte the schedule the scalar policy would have built
for the same (target, survivor set), so cursor-driven trials reproduce the
scalar assignment sequence exactly.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from repro.core.lp1 import solve_lp1
from repro.core.rounding import round_assignment
from repro.schedule.base import SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = [
    "ProcessSolveCache",
    "shared_solve_cache",
    "install_solve_cache",
    "clear_solve_cache",
    "solve_cache_stats",
    "RoundScheduleCache",
    "ReplicaGroupedDispatch",
    "SemCursor",
    "sem_phase_key",
    "sem_row_for_key",
    "sem_advance",
]

#: Phase key of a trial whose covered jobs have all completed (idle row).
IDLE_KEY = ("idle",)


class ProcessSolveCache:
    """Process-wide memo for deterministic solve pipelines.

    :class:`RoundScheduleCache` (and SUU-C's chain-plan preparation) are
    deterministic functions of ``(instance, configuration)``; within one
    batch they are already memoized, but every batch — and, under the
    process backend, every worker *chunk* — used to start cold and
    re-solve the shared round-1 LP.  This cache outlives batches: entries
    are keyed by ``(kind, instance digest, *configuration)``, so a grid
    sweep's cells (and all chunks a worker handles) share one solve per
    distinct key.

    Sharing never changes results: the pipelines behind every entry are
    RNG-free, so a cached value is byte-for-byte what a fresh solve would
    produce — v1 bit-identity is preserved.  Two eviction axes keep
    long-lived workers (grid sweeps, the request server's warm pools)
    from growing unboundedly:

    * **LRU entry eviction** — a lookup refreshes its entry, so the
      ``max_entries`` bound drops the least-recently-*used* schedule, not
      merely the oldest-inserted one (round-1 LPs shared by every batch
      stay resident no matter how many one-off survivor sets stream by).
    * **Per-instance-digest scoping** — every key carries its instance
      digest at position 1; the cache groups entries by digest and, past
      ``max_instances`` distinct instances, drops the least-recently-used
      instance's entries wholesale.  A server that has answered requests
      for thousands of distinct instances keeps only the recent working
      set, and :meth:`evict_instance` lets callers drop one instance
      eagerly.

    The cache is per *process*.  Worker pools install (size) it through
    their initializer (:func:`install_solve_cache`); in-process use hits
    the module-level instance directly.  ``REPRO_SOLVE_CACHE=0`` disables
    it entirely.
    """

    def __init__(self, max_entries: int = 512, max_instances: int = 32):
        self.max_entries = int(max_entries)
        self.max_instances = int(max_instances)
        self._entries: OrderedDict = OrderedDict()
        #: digest -> set of live keys, LRU-ordered by last touch.
        self._digests: OrderedDict = OrderedDict()
        self.solves = 0  # misses that ran a real solve pipeline
        self.hits = 0

    @property
    def enabled(self) -> bool:
        """False when disabled via ``REPRO_SOLVE_CACHE=0`` or size 0."""
        return self.max_entries > 0 and os.environ.get(
            "REPRO_SOLVE_CACHE", "1"
        ) != "0"

    @staticmethod
    def _digest_of(key):
        # Every caller keys entries as (kind, instance digest, *config).
        return key[1] if isinstance(key, tuple) and len(key) > 1 else None

    def _touch(self, key) -> None:
        """Refresh LRU position of ``key`` and of its instance digest."""
        self._entries.move_to_end(key)
        digest = self._digest_of(key)
        if digest in self._digests:
            self._digests.move_to_end(digest)

    def _forget(self, key) -> None:
        """Remove ``key``'s digest bookkeeping (entry already popped)."""
        digest = self._digest_of(key)
        keys = self._digests.get(digest)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._digests[digest]

    def lookup(self, key, compute):
        """``compute()`` memoized under ``key`` (straight call if disabled)."""
        if not self.enabled:
            self.solves += 1
            return compute()
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            self._touch(key)
            return value
        value = compute()
        self.solves += 1
        self._entries[key] = value
        digest = self._digest_of(key)
        if digest is not None:
            self._digests.setdefault(digest, set()).add(key)
            self._digests.move_to_end(digest)
            while len(self._digests) > max(1, self.max_instances):
                self.evict_instance(next(iter(self._digests)))
        while len(self._entries) > self.max_entries:
            old_key, _ = self._entries.popitem(last=False)
            self._forget(old_key)
        return value

    def evict_instance(self, digest) -> int:
        """Drop every entry scoped to ``digest``; returns how many."""
        keys = self._digests.pop(digest, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        return len(keys)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._digests.clear()
        self.solves = 0
        self.hits = 0


_SHARED_SOLVE_CACHE = ProcessSolveCache()


def shared_solve_cache() -> ProcessSolveCache:
    """This process's cross-batch solve cache."""
    return _SHARED_SOLVE_CACHE


def install_solve_cache(max_entries: int = 512, max_instances: int | None = None) -> None:
    """Size the process-wide solve cache (worker-pool initializer target).

    Module-level so ``ProcessPoolExecutor(initializer=...)`` can ship it
    to ``spawn``-ed workers; each worker then keeps one warm cache across
    every chunk, grid cell, and server request it handles.
    ``max_instances`` bounds how many distinct instance digests stay
    resident (``None`` keeps the current bound).
    """
    _SHARED_SOLVE_CACHE.max_entries = int(max_entries)
    if max_instances is not None:
        _SHARED_SOLVE_CACHE.max_instances = int(max_instances)


def clear_solve_cache() -> None:
    """Reset the process-wide solve cache (test isolation)."""
    _SHARED_SOLVE_CACHE.clear()


def solve_cache_stats() -> dict:
    """Counters of the process-wide cache: entries / instances / solves / hits.

    Module-level (and picklable-return) so worker pools can sample a
    worker's cache through ``pool.submit(solve_cache_stats)`` — how the
    request server's ``/healthz`` surfaces warm-worker reuse.
    """
    return {
        "entries": len(_SHARED_SOLVE_CACHE._entries),
        "instances": len(_SHARED_SOLVE_CACHE._digests),
        "solves": _SHARED_SOLVE_CACHE.solves,
        "hits": _SHARED_SOLVE_CACHE.hits,
    }


class RoundScheduleCache:
    """Memoized LP1-round schedules, shared across lock-stepped trials.

    One cache serves one batch execution of one policy (phase keys embed
    its schedule ids, which are only meaningful within it).  Local misses
    consult the cross-batch :func:`shared_solve_cache` before solving, so
    grid sweeps and process-backend worker chunks pay the shared round-1
    LP once per (instance, target, survivor set) per process rather than
    once per batch.

    Attributes
    ----------
    solves:
        Number of *local* cache misses — lookups this batch had not seen
        before (some may be served by the process-wide cache without an
        actual LP solve; see :func:`solve_cache_stats` for that split).
        The scalar loop would have paid one solve per (trial, round); the
        difference is the dominant part of the grouped-dispatch speedup.
    hits:
        Number of lookups served from this batch's own table.
    """

    def __init__(self, instance, scale: int):
        self.instance = instance
        self.scale = int(scale)
        self.schedules: list[FiniteObliviousSchedule] = []
        self._memo: dict = {}
        self.solves = 0
        self.hits = 0

    def _solve(self, target: float, jobs: np.ndarray) -> FiniteObliviousSchedule:
        relaxation = solve_lp1(self.instance, jobs=jobs, target=target)
        assignment = round_assignment(relaxation, scale=self.scale)
        return FiniteObliviousSchedule.from_assignment(assignment)

    def schedule_id(self, target: float, jobs: np.ndarray) -> int:
        """Schedule id for ``LP1(jobs, target)`` rounded at ``self.scale``.

        ``jobs`` is the sorted array of still-remaining covered jobs (what
        the scalar policies pass to ``solve_lp1``).
        """
        jobs = np.ascontiguousarray(jobs, dtype=np.int64)
        key = (float(target), jobs.tobytes())
        sid = self._memo.get(key)
        if sid is None:
            schedule = shared_solve_cache().lookup(
                ("lp1-round", self.instance.digest(), self.scale) + key,
                lambda: self._solve(target, jobs),
            )
            sid = len(self.schedules)
            self.schedules.append(schedule)
            self._memo[key] = sid
            self.solves += 1
        else:
            self.hits += 1
        return sid

    def schedule(self, sid: int) -> FiniteObliviousSchedule:
        """The schedule registered under ``sid``."""
        return self.schedules[sid]


class ReplicaGroupedDispatch:
    """``phase_key``/``assign_group`` via per-trial scalar replicas.

    The degenerate end of the phased protocol, for policies whose
    assignment rows depend on per-trial randomness (SUU-C's chain delays):
    every trial keeps a full scalar policy replica, phase keys are the
    trial indices, and the batch win comes from the shared ``start_phased``
    preparation plus the vectorized engine — not from row sharing.

    A policy mixes this in and calls :meth:`_init_replica_dispatch` with
    its started replicas at the end of ``start_phased``.
    """

    phase_grouping = "replica"

    def _init_replica_dispatch(self, replicas) -> None:
        self._replicas = list(replicas)
        self._pending_rows = [None] * len(self._replicas)

    def phase_key(self, trial: int, state):
        view = SimulationState(
            t=state.t,
            remaining=state.remaining[trial],
            eligible=state.eligible[trial],
            mass_accrued=state.mass_accrued[trial],
        )
        self._pending_rows[trial] = self._replicas[trial].assign(view)
        return trial

    def assign_group(self, state, trials) -> np.ndarray:
        return self._pending_rows[trials[0]]


class SemCursor:
    """Per-trial replica of SUU-I-SEM's round state.

    Mirrors the mutable fields of a scalar
    :class:`~repro.core.suu_i_sem.SUUISemPolicy` execution — mode
    (``rounds`` / ``serial`` / ``repeat``), round counter, and the cursor
    into the current round's schedule — with the schedule itself replaced
    by an id into a shared :class:`RoundScheduleCache`.

    Parameters
    ----------
    universe_mask:
        Boolean mask over all jobs: the cursor's job universe (SEM's
        ``jobs`` argument; all jobs when None there).
    n_rounds:
        The round budget ``K`` after which the fallback modes engage.
    fallback:
        Mirror of the scalar policy's ``fallback`` flag.
    """

    __slots__ = ("universe_mask", "universe_size", "n_rounds", "fallback",
                 "mode", "round", "sid", "step")

    def __init__(self, universe_mask: np.ndarray, n_rounds: int, fallback: bool):
        self.universe_mask = universe_mask
        self.universe_size = int(universe_mask.sum())
        self.n_rounds = int(n_rounds)
        self.fallback = bool(fallback)
        self.mode = "rounds"  # rounds | serial | repeat
        self.round = 0
        self.sid: int | None = None
        self.step = 0


def _begin_round(cursor: SemCursor, cache: RoundScheduleCache,
                 remaining_jobs: np.ndarray) -> None:
    """Advance to the next doubling round (scalar ``_begin_round``)."""
    cursor.round += 1
    target = 2.0 ** (cursor.round - 2)  # round 1 -> 1/2, doubling after
    cursor.sid = cache.schedule_id(target, remaining_jobs)
    cursor.step = 0


def sem_phase_key(cursor: SemCursor, cache: RoundScheduleCache,
                  remaining_row: np.ndarray, n_machines: int):
    """The trial's phase key, advancing round/mode state exactly like the
    scalar policy's ``assign`` would.

    ``remaining_row`` is the trial's boolean remaining mask (one row of the
    batch state).  May solve a new round's LP through ``cache`` (memoized);
    must be called once per live trial per step, like the protocol says.
    """
    if cursor.mode == "serial":
        remaining = np.flatnonzero(remaining_row & cursor.universe_mask)
        if remaining.size == 0:
            return IDLE_KEY
        return ("serial", int(remaining[0]))

    if cursor.mode == "repeat":
        length = cache.schedule(cursor.sid).length
        return ("row", cursor.sid, cursor.step % length)

    # Round mode: advance to the next round when the current schedule is
    # exhausted (or not yet built).
    while cursor.sid is None or cursor.step >= cache.schedule(cursor.sid).length:
        remaining = np.flatnonzero(remaining_row & cursor.universe_mask)
        if remaining.size == 0:
            return IDLE_KEY
        if cursor.fallback and cursor.round >= cursor.n_rounds:
            if cursor.universe_size <= n_machines:
                cursor.mode = "serial"
                return sem_phase_key(cursor, cache, remaining_row, n_machines)
            # m < n: repeat the Kth round's schedule forever.
            cursor.mode = "repeat"
            cursor.step = 0
            if cursor.sid is None or cache.schedule(cursor.sid).length == 0:
                _begin_round(cursor, cache, remaining)  # degenerate guard
                cursor.step = 0
            return sem_phase_key(cursor, cache, remaining_row, n_machines)
        _begin_round(cursor, cache, remaining)
    return ("row", cursor.sid, cursor.step)


def sem_row_for_key(key, cache: RoundScheduleCache, idle_row: np.ndarray,
                    scratch_row: np.ndarray) -> np.ndarray:
    """The shared ``(m,)`` assignment row for a phase key.

    ``idle_row`` is a reusable all-IDLE row; ``scratch_row`` a reusable
    buffer for serial-mode rows (all machines on one job).
    """
    tag = key[0]
    if tag == "idle":
        return idle_row
    if tag == "serial":
        scratch_row.fill(key[1])
        return scratch_row
    return cache.schedule(key[1]).assignment_at(key[2])


def sem_advance(cursor: SemCursor, key) -> None:
    """Post-dispatch cursor bump (the scalar ``self._step += 1``)."""
    if key[0] == "row":
        cursor.step += 1
